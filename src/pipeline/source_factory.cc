#include "pipeline/source_factory.h"

#include <cstring>

namespace randrecon {
namespace pipeline {

const char kColumnStoreExtension[] = ".rrcs";

namespace {

bool HasExtension(const std::string& path, const std::string& extension) {
  return path.size() > extension.size() &&
         path.compare(path.size() - extension.size(), extension.size(),
                      extension) == 0;
}

}  // namespace

bool HasColumnStoreExtension(const std::string& path) {
  return HasExtension(path, kColumnStoreExtension);
}

bool HasShardManifestExtension(const std::string& path) {
  return HasExtension(path, data::kShardManifestExtension);
}

Result<OpenedRecordSource> OpenRecordSource(
    const std::string& path, const RecordSourceOptions& options) {
  RR_ASSIGN_OR_RETURN(const data::RecordFileFormat format,
                      data::DetectRecordFileFormat(path));
  OpenedRecordSource opened;
  opened.format = format;
  switch (format) {
    case data::RecordFileFormat::kColumnStore: {
      RR_ASSIGN_OR_RETURN(ColumnStoreRecordSource source,
                          ColumnStoreRecordSource::Open(path, options.store));
      opened.attribute_names = source.attribute_names();
      opened.num_records = source.num_records();
      opened.source =
          std::make_unique<ColumnStoreRecordSource>(std::move(source));
      break;
    }
    case data::RecordFileFormat::kShardManifest: {
      RR_ASSIGN_OR_RETURN(ShardedRecordSource source,
                          ShardedRecordSource::Open(path, options.store));
      opened.attribute_names = source.attribute_names();
      opened.num_records = source.num_records();
      opened.source = std::make_unique<ShardedRecordSource>(std::move(source));
      break;
    }
    case data::RecordFileFormat::kCsv: {
      RR_ASSIGN_OR_RETURN(CsvRecordSource source, CsvRecordSource::Open(path));
      opened.attribute_names = source.attribute_names();
      opened.source = std::make_unique<CsvRecordSource>(std::move(source));
      break;
    }
  }
  return opened;
}

Result<OpenedRecordSource> OpenRecordSource(const std::string& path) {
  return OpenRecordSource(path, RecordSourceOptions{});
}

Result<std::unique_ptr<ChunkSink>> CreateRecordSink(
    const std::string& path, const std::vector<std::string>& attribute_names,
    RecordSinkOptions options) {
  if (HasShardManifestExtension(path)) {
    data::ShardedStoreOptions sharded_options;
    if (options.shard_rows > 0) sharded_options.shard_rows = options.shard_rows;
    sharded_options.block_rows = options.block_rows;
    RR_ASSIGN_OR_RETURN(
        ShardedChunkSink sink,
        ShardedChunkSink::Create(path, attribute_names, sharded_options));
    // The unique_ptr upcast is spelled out: Result's converting
    // constructor admits only one user-defined conversion.
    std::unique_ptr<ChunkSink> erased =
        std::make_unique<ShardedChunkSink>(std::move(sink));
    return erased;
  }
  if (HasColumnStoreExtension(path)) {
    data::ColumnStoreOptions store_options;
    store_options.block_rows = options.block_rows;
    RR_ASSIGN_OR_RETURN(
        ColumnStoreChunkSink sink,
        ColumnStoreChunkSink::Create(path, attribute_names, store_options));
    std::unique_ptr<ChunkSink> erased =
        std::make_unique<ColumnStoreChunkSink>(std::move(sink));
    return erased;
  }
  RR_ASSIGN_OR_RETURN(
      CsvChunkSink sink,
      CsvChunkSink::Create(path, attribute_names, options.csv_precision));
  std::unique_ptr<ChunkSink> erased =
      std::make_unique<CsvChunkSink>(std::move(sink));
  return erased;
}

Status VerifyStreamsBitwiseEqual(const std::string& a_path,
                                 const std::string& b_path,
                                 size_t chunk_rows) {
  if (chunk_rows == 0) {
    return Status::InvalidArgument(
        "VerifyStreamsBitwiseEqual: chunk_rows must be >= 1 — zero-row "
        "chunks would compare no records and vacuously report equality");
  }
  RR_ASSIGN_OR_RETURN(OpenedRecordSource a, OpenRecordSource(a_path));
  RR_ASSIGN_OR_RETURN(OpenedRecordSource b, OpenRecordSource(b_path));
  if (a.attribute_names != b.attribute_names) {
    return Status::InvalidArgument("attribute names differ between '" +
                                   a_path + "' and '" + b_path + "'");
  }
  const size_t m = a.attribute_names.size();
  linalg::Matrix a_buffer(chunk_rows, m);
  linalg::Matrix b_buffer(chunk_rows, m);
  size_t row = 0;
  for (;;) {
    RR_ASSIGN_OR_RETURN(const size_t a_rows, a.source->NextChunk(&a_buffer));
    RR_ASSIGN_OR_RETURN(const size_t b_rows, b.source->NextChunk(&b_buffer));
    if (a_rows != b_rows) {
      return Status::InvalidArgument(
          "'" + a_path + "' and '" + b_path +
          "' diverge in record count at record " + std::to_string(row));
    }
    if (a_rows == 0) return Status::OK();
    if (std::memcmp(a_buffer.data(), b_buffer.data(),
                    a_rows * m * sizeof(double)) != 0) {
      return Status::InvalidArgument(
          "'" + a_path + "' and '" + b_path + "' differ bitwise in rows [" +
          std::to_string(row) + ", " + std::to_string(row + a_rows) + ")");
    }
    row += a_rows;
  }
}

}  // namespace pipeline
}  // namespace randrecon
