#include "pipeline/chunk_sink.h"

#include "common/check.h"
#include "common/string_util.h"

namespace randrecon {
namespace pipeline {

Status CollectChunkSink::Consume(size_t row_offset, const linalg::Matrix& chunk,
                                 size_t num_rows) {
  RR_CHECK_EQ(chunk.cols(), num_attributes_) << "CollectChunkSink: width";
  RR_CHECK_EQ(row_offset, num_records_)
      << "CollectChunkSink: chunks arrived out of order";
  RR_CHECK_LE(num_rows, chunk.rows()) << "CollectChunkSink: overrun";
  values_.insert(values_.end(), chunk.data(),
                 chunk.data() + num_rows * num_attributes_);
  num_records_ += num_rows;
  return Status::OK();
}

linalg::Matrix CollectChunkSink::ToMatrix() const {
  return linalg::Matrix::FromRowMajor(num_records_, num_attributes_, values_);
}

Result<CsvChunkSink> CsvChunkSink::Create(
    const std::string& path, const std::vector<std::string>& attribute_names,
    int precision) {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::IoError("CsvChunkSink: cannot open '" + path +
                           "' for writing");
  }
  file << JoinStrings(attribute_names, ",") << "\n";
  if (file.fail()) {
    return Status::IoError("CsvChunkSink: header write to '" + path +
                           "' failed");
  }
  return CsvChunkSink(std::move(file), path, precision);
}

Status CsvChunkSink::Consume(size_t row_offset, const linalg::Matrix& chunk,
                             size_t num_rows) {
  RR_CHECK_LE(num_rows, chunk.rows()) << "CsvChunkSink: overrun";
  RR_CHECK_EQ(row_offset, rows_written_)
      << "CsvChunkSink: chunks arrived out of order";
  for (size_t i = 0; i < num_rows; ++i) {
    const double* row = chunk.row_data(i);
    for (size_t j = 0; j < chunk.cols(); ++j) {
      if (j > 0) file_ << ",";
      file_ << FormatDouble(row[j], precision_);
    }
    file_ << "\n";
  }
  if (file_.fail()) {
    return Status::IoError("CsvChunkSink: write to '" + path_ + "' failed");
  }
  rows_written_ += num_rows;
  return Status::OK();
}

Status CsvChunkSink::Close() {
  if (!file_.is_open()) return Status::OK();
  file_.close();
  if (file_.fail()) {
    return Status::IoError("CsvChunkSink: closing '" + path_ + "' failed");
  }
  return Status::OK();
}

Result<ColumnStoreChunkSink> ColumnStoreChunkSink::Create(
    const std::string& path, const std::vector<std::string>& attribute_names,
    data::ColumnStoreOptions options) {
  RR_ASSIGN_OR_RETURN(
      data::ColumnStoreWriter writer,
      data::ColumnStoreWriter::Create(path, attribute_names, options));
  return ColumnStoreChunkSink(std::move(writer));
}

Status ColumnStoreChunkSink::Consume(size_t row_offset,
                                     const linalg::Matrix& chunk,
                                     size_t num_rows) {
  // An out-of-order chunk would be appended at the wrong record index and
  // the store would still seal as valid — permuted records with no
  // diagnostic. Same contract as CollectChunkSink.
  RR_CHECK_EQ(row_offset, writer_.rows_written())
      << "ColumnStoreChunkSink: chunks arrived out of order";
  return writer_.Append(chunk, num_rows);
}

Result<ShardedChunkSink> ShardedChunkSink::Create(
    const std::string& manifest_path,
    const std::vector<std::string>& attribute_names,
    data::ShardedStoreOptions options) {
  RR_ASSIGN_OR_RETURN(
      data::ShardedStoreWriter writer,
      data::ShardedStoreWriter::Create(manifest_path, attribute_names,
                                       options));
  return ShardedChunkSink(std::move(writer));
}

Status ShardedChunkSink::Consume(size_t row_offset,
                                 const linalg::Matrix& chunk,
                                 size_t num_rows) {
  RR_CHECK_EQ(row_offset, writer_.rows_written())
      << "ShardedChunkSink: chunks arrived out of order";
  return writer_.Append(chunk, num_rows);
}

}  // namespace pipeline
}  // namespace randrecon
