// ChunkSink: the output side of the out-of-core attack pipeline.
//
// The projection pass emits reconstructed records chunk by chunk, in
// stream order; a sink decides what happens to them — discard (metrics
// only), collect in memory (tests, small runs), or append to a CSV file
// (bounded-memory end to end).

#ifndef RANDRECON_PIPELINE_CHUNK_SINK_H_
#define RANDRECON_PIPELINE_CHUNK_SINK_H_

#include <fstream>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/column_store.h"
#include "data/shard_store.h"
#include "linalg/matrix.h"

namespace randrecon {
namespace pipeline {

/// Receives reconstructed chunks in stream order.
class ChunkSink {
 public:
  virtual ~ChunkSink() = default;

  /// `chunk`'s leading `num_rows` rows are reconstructed records starting
  /// at global record index `row_offset`.
  virtual Status Consume(size_t row_offset, const linalg::Matrix& chunk,
                         size_t num_rows) = 0;

  /// Flushes and seals whatever the sink is backed by; call once after
  /// the last Consume. The default is a no-op for sinks with nothing to
  /// flush (null, collect).
  virtual Status Close() { return Status::OK(); }
};

/// Discards every chunk (the caller only wants the report's metrics).
class NullChunkSink final : public ChunkSink {
 public:
  Status Consume(size_t, const linalg::Matrix&, size_t) override {
    return Status::OK();
  }
};

/// Materializes the reconstructed stream — for tests and small runs
/// where comparing against an in-memory attack is the point.
class CollectChunkSink final : public ChunkSink {
 public:
  explicit CollectChunkSink(size_t num_attributes)
      : num_attributes_(num_attributes) {}

  Status Consume(size_t row_offset, const linalg::Matrix& chunk,
                 size_t num_rows) override;

  /// Everything consumed so far as one n x m matrix.
  linalg::Matrix ToMatrix() const;

  size_t num_records() const { return num_records_; }

 private:
  size_t num_attributes_;
  size_t num_records_ = 0;
  std::vector<double> values_;
};

/// Appends reconstructed records to a CSV file (header written eagerly),
/// keeping the whole pipeline at bounded memory.
class CsvChunkSink final : public ChunkSink {
 public:
  /// Opens `path` and writes a header of `attribute_names`. IoError if
  /// the file can't be created.
  static Result<CsvChunkSink> Create(
      const std::string& path, const std::vector<std::string>& attribute_names,
      int precision = 10);

  Status Consume(size_t row_offset, const linalg::Matrix& chunk,
                 size_t num_rows) override;

  /// Flushes and closes; IoError on a failed write. Called by the
  /// destructor if omitted (ignoring the status).
  Status Close() override;

 private:
  CsvChunkSink(std::ofstream file, std::string path, int precision)
      : file_(std::move(file)), path_(std::move(path)), precision_(precision) {}

  std::ofstream file_;
  std::string path_;
  int precision_;
  size_t rows_written_ = 0;
};

/// Appends reconstructed records to a binary column store
/// (data::ColumnStoreWriter) — the native-format counterpart of
/// CsvChunkSink: bitwise-exact f64 values (CSV rounds at `precision`),
/// and the output is itself attackable through ColumnStoreRecordSource
/// without a parse.
class ColumnStoreChunkSink final : public ChunkSink {
 public:
  /// Fails like data::ColumnStoreWriter::Create (unwritable path, empty
  /// or duplicate names, block_rows == 0).
  static Result<ColumnStoreChunkSink> Create(
      const std::string& path, const std::vector<std::string>& attribute_names,
      data::ColumnStoreOptions options = {});

  Status Consume(size_t row_offset, const linalg::Matrix& chunk,
                 size_t num_rows) override;

  /// Seals the store (record count + header checksum) and closes it.
  /// Called by the destructor if omitted (ignoring the status), but an
  /// unclosed store from a crashed process is rejected by readers.
  Status Close() override { return writer_.Close(); }

 private:
  explicit ColumnStoreChunkSink(data::ColumnStoreWriter writer)
      : writer_(std::move(writer)) {}

  data::ColumnStoreWriter writer_;
};

/// Appends reconstructed records to a SHARDED column store
/// (data::ShardedStoreWriter): a manifest + N `.rrcs` shards rolled at a
/// target row count and sealed in parallel. The output of an unbounded
/// streaming job is no longer capped at one file on one disk, and is
/// immediately decomposable job-per-shard by PipelineRunner.
class ShardedChunkSink final : public ChunkSink {
 public:
  /// Fails like data::ShardedStoreWriter::Create (unwritable directory,
  /// bad names, zero shard_rows/block_rows).
  static Result<ShardedChunkSink> Create(
      const std::string& manifest_path,
      const std::vector<std::string>& attribute_names,
      data::ShardedStoreOptions options = {});

  Status Consume(size_t row_offset, const linalg::Matrix& chunk,
                 size_t num_rows) override;

  /// Seals every shard and writes the manifest LAST — an unclosed or
  /// failed write leaves no manifest, so readers never see a partial
  /// store as complete. Called by the destructor if omitted (ignoring
  /// the status).
  Status Close() override { return writer_.Close(); }

  /// Every file the writer has created (shards + manifest) — what a
  /// failed conversion must remove.
  std::vector<std::string> output_paths() const {
    return writer_.output_paths();
  }

 private:
  explicit ShardedChunkSink(data::ShardedStoreWriter writer)
      : writer_(std::move(writer)) {}

  data::ShardedStoreWriter writer_;
};

}  // namespace pipeline
}  // namespace randrecon

#endif  // RANDRECON_PIPELINE_CHUNK_SINK_H_
