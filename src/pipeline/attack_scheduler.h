// AttackScheduler: the long-running daemon half of the attack service —
// cadence-driven reconstruction over a LIVE rolling store, publishing a
// monotonically versioned series of run reports.
//
// An IngestService (pipeline/ingest.h) keeps appending perturbed records
// into a rolling sharded store, republishing its manifest after every
// rotation. The scheduler closes the loop: on a configurable cadence
// (and/or once the published manifest has grown by `min_new_rows`), it
// pins a RollingStoreSnapshotReader snapshot of the latest published
// manifest, re-runs the streaming SF / PCA-DR attack over it through the
// existing PipelineRunner (inheriting retry, deadline and degraded-shard
// semantics), and publishes report version N — write-temp → atomic
// rename, with a `latest.json` pointer and bounded retention — into a
// report directory that IS the series' durable state.
//
// Contracts this daemon keeps:
//
//   * Scheduling never perturbs numerics. A cycle's attack output is
//     bitwise identical to an offline sweep_attack run over the same
//     pinned snapshot manifest: the snapshot source serves the exact
//     record order and block geometry ShardedRecordSource serves, and
//     the job is built with the same noise model and attack options.
//     Telemetry observes; it never branches the math.
//   * Every cycle is attributed. An attacked cycle ends ok, degraded
//     (whole-stream attack failed non-transiently, the per-shard
//     degraded fallback covered the healthy shards and NAMED the rest)
//     or failed; a due-but-not-attacked cycle is skipped with a cause
//     (no readable manifest / snapshot unchanged since the last
//     report). scheduler.* counters keep the identity
//     cycles == cycles_ok + cycles_degraded + cycles_failed exact, the
//     same discipline as ingest shed attribution.
//   * Deterministic time. Cadence evaluation, overrun detection and the
//     cycle-latency histogram all read trace::NowNanos(), so a
//     FakeClockGuard drives every scheduling decision in tests with
//     zero sleeps. (The background daemon thread's POLL between Ticks
//     is real time — fake-clock tests call Tick() directly.)
//   * Crash-safe series. Reports publish via write-temp → rename; the
//     version counter is recovered by scanning the report directory, so
//     a process killed at the publish seam (`sched.publish` failpoint)
//     resumes with no gap and no duplicate version. `latest.json` is a
//     derived pointer, repaired on Create if a crash left it stale.
//
// Each report names its snapshot: the manifest's own trailing RRH64
// hash (the content identity of the ENTIRE published snapshot), its row
// span, and the signed row delta since the previous report (retention
// can shrink a snapshot, so the delta may be negative).
// tools/check_report.py --series validates the whole directory: strict
// version increase, exact row-delta chaining, the cycle-accounting
// identity, and the latest.json pointer.

#ifndef RANDRECON_PIPELINE_ATTACK_SCHEDULER_H_
#define RANDRECON_PIPELINE_ATTACK_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "data/column_store.h"
#include "pipeline/retry.h"
#include "pipeline/runner.h"
#include "pipeline/streaming_attack.h"

namespace randrecon {
namespace pipeline {

/// Scheduler knobs. At least one trigger (`cadence_nanos`,
/// `min_new_rows`) must be set for Tick()/Start() to ever fire;
/// RunCycleNow() works regardless.
struct AttackSchedulerOptions {
  /// Attack the store every this-many nanoseconds of trace::NowNanos()
  /// time (0 = no cadence trigger). The first Tick after Create is
  /// immediately due; later Ticks fire when `now >= next_due`, and
  /// every whole cadence slot that passed unobserved beyond the one
  /// being served is counted under scheduler.overruns.
  uint64_t cadence_nanos = 0;
  /// Also fire once the PUBLISHED manifest holds at least this many
  /// rows more than the last report attacked (0 = no rows trigger).
  /// Evaluated against a cheap manifest parse — no snapshot is pinned
  /// until the cycle actually runs.
  uint64_t min_new_rows = 0;
  /// Re-attack a snapshot whose manifest hash equals the last report's
  /// (default: skip it, counted under scheduler.skipped_unchanged).
  bool attack_unchanged = false;
  /// Noise width of the public model handed to the attack —
  /// NoiseModel::IndependentGaussian(num_attributes, sigma), exactly
  /// what sweep_attack hands its whole-manifest jobs.
  double sigma = 0.5;
  /// Attack + chunking configuration (shared with sweep_attack for the
  /// bitwise-equality contract).
  StreamingAttackOptions attack;
  /// Retry schedule for the whole-stream snapshot job. Snapshot opens
  /// that race a manifest republish surface as retryable Unavailable
  /// (data/rolling_store.h), so retries make live-store cycles robust.
  RetryPolicy retry;
  /// PipelineRunner worker budget (0 = auto).
  int num_workers = 0;
  /// When the whole-stream job fails non-transiently, fall back to a
  /// degraded per-shard sweep (MakePerShardJobsDegraded): healthy
  /// shards are attacked, broken ones named in the report.
  bool degraded_fallback = true;
  /// Directory the report series lives in (required; created by Create
  /// if missing). Holds report-NNNNNN.json files and latest.json.
  std::string report_dir;
  /// Keep at most this many newest reports (0 = unlimited). Retired
  /// report files are deleted only after the newer report published.
  size_t retain_reports = 0;
  /// Background daemon poll between trigger evaluations (real time —
  /// the one clock the fake cannot drive, since the daemon thread must
  /// actually wake up). Tick() callers pace themselves.
  uint64_t poll_nanos = 20ull * 1000 * 1000;
  /// Trace every cycle into the process-global capture
  /// (trace::StartTracing/StopTracing) and retain the finished span
  /// tree in the /tracez ring (trace::PushRecentCapture). Claims the
  /// one process-global capture for the cycle's duration — leave OFF
  /// when the embedding tool runs its own StartTracing bracket.
  /// Observation only: the attack math never reads trace state, so
  /// cycle output stays bitwise identical either way.
  bool trace_cycles = false;
  /// Shard-open options for the pinned snapshot (eager verification,
  /// block parallelism).
  data::ColumnStoreReadOptions store_options;
};

/// How one Tick()/RunCycleNow() ended.
enum class CycleOutcome {
  /// No trigger fired — nothing was evaluated beyond the triggers.
  kNotDue,
  /// Due, but the manifest is missing/unreadable (status has the
  /// cause). Normal during warm-up: a rolling writer publishes its
  /// first manifest only after the first rotation.
  kSkippedNoManifest,
  /// Due, but the published manifest hash equals the last report's and
  /// attack_unchanged is false.
  kSkippedUnchanged,
  /// Attacked and published report `version`.
  kOk,
  /// Whole-stream attack failed; the degraded per-shard fallback
  /// covered >= 1 shard and report `version` was published naming the
  /// exclusions. `status` keeps the whole-stream failure.
  kDegraded,
  /// Attacked but nothing was published (attack failed everywhere, or
  /// the report write itself failed) — `status` has the cause. The
  /// version counter is NOT consumed.
  kFailed,
};

/// Stable lowercase name ("ok", "skipped_unchanged", ...) — what the
/// report's outcome field and logs print.
const char* CycleOutcomeName(CycleOutcome outcome);

/// Everything one cycle did — the C++-side mirror of the published
/// report, so tests compare attack output bitwise without re-parsing
/// JSON.
struct SchedulerCycleResult {
  CycleOutcome outcome = CycleOutcome::kNotDue;
  /// OK, or the cause of a skip/failure (kDegraded keeps the
  /// whole-stream failure here even though a report was published).
  Status status;
  /// Published report version (valid for kOk/kDegraded).
  uint64_t version = 0;
  /// Path of the published report file (valid for kOk/kDegraded).
  std::string report_path;
  /// Identity of the snapshot the cycle attacked: the manifest's
  /// trailing RRH64 hash, its row count and shard count — from the
  /// PINNED snapshot (not the trigger-time parse, which a republish
  /// may have outdated).
  uint64_t manifest_hash = 0;
  uint64_t snapshot_rows = 0;
  size_t snapshot_shards = 0;
  /// snapshot_rows minus the previous report's — signed, because
  /// retention can shrink the published window between reports.
  int64_t rows_since_last_report = 0;
  /// The whole-stream attack's numbers (valid for kOk) — bitwise equal
  /// to an offline sweep over the same snapshot manifest.
  StreamingAttackReport report;
  /// Every pipeline job this cycle ran, in run order: the whole-stream
  /// job, then (when degraded) the per-shard fallback jobs.
  std::vector<PipelineJobResult> jobs;
  /// Shards the degraded fallback excluded, with reasons.
  std::vector<ShardExclusion> excluded;
};

/// The daemon. Thread-safe: Tick()/RunCycleNow() serialize on an
/// internal mutex (the background thread is just another caller), and
/// concurrent IngestService writers need no coordination beyond the
/// store's own published-manifest protocol.
class AttackScheduler {
 public:
  /// Validates options (report_dir required, sigma > 0), creates
  /// report_dir if missing, scans it to recover the version counter
  /// (next version = max existing + 1) and the previous report's
  /// snapshot identity (so row-delta chaining stays exact across
  /// restarts), and repairs a stale latest.json. Touches the store not
  /// at all — the first cycle does.
  static Result<std::unique_ptr<AttackScheduler>> Create(
      std::string manifest_path, AttackSchedulerOptions options);

  AttackScheduler(const AttackScheduler&) = delete;
  AttackScheduler& operator=(const AttackScheduler&) = delete;

  /// Stop()s the daemon thread if running.
  ~AttackScheduler();

  /// Evaluates the triggers at trace::NowNanos() and runs at most one
  /// cycle. Returns kNotDue when nothing fired.
  SchedulerCycleResult Tick();

  /// Runs one cycle unconditionally (the cadence anchor is untouched).
  SchedulerCycleResult RunCycleNow();

  /// Spawns the background daemon thread: Tick(), then wait
  /// poll_nanos (or a Stop notification), forever. FailedPrecondition
  /// if already running.
  Status Start();

  /// Stops and joins the daemon thread. Idempotent; safe without
  /// Start.
  void Stop();

  /// "report-NNNNNN.json" — the series file naming scheme.
  static std::string ReportFileName(uint64_t version);

  const std::string& manifest_path() const { return manifest_path_; }
  const std::string& report_dir() const { return options_.report_dir; }

  /// Momentary accounting (exact while no cycle is in flight). The
  /// cycle identity cycles() == cycles_ok + cycles_degraded +
  /// cycles_failed always holds.
  uint64_t cycles() const;
  uint64_t cycles_ok() const;
  uint64_t cycles_degraded() const;
  uint64_t cycles_failed() const;
  uint64_t skipped_no_manifest() const;
  uint64_t skipped_unchanged() const;
  uint64_t overruns() const;
  uint64_t reports_published() const;
  /// 0 until the first publish (of this instance OR recovered from the
  /// report directory).
  uint64_t last_published_version() const;
  uint64_t next_version() const;

  /// Momentary daemon state as a JSON object — the scheduler section of
  /// the stats server's /statusz. Returns a CACHED rendering refreshed
  /// at every cycle commit point, so a scrape never blocks behind a
  /// cycle holding the scheduler mutex (cycles take attack-sized time).
  std::string StatusJson() const;

 private:
  AttackScheduler(std::string manifest_path, AttackSchedulerOptions options);

  /// One cycle, mutex_ held: parse → skip checks → pin + attack →
  /// publish → retention.
  SchedulerCycleResult RunCycleLocked();

  /// RunCycleLocked bracketed by the trace_cycles capture (no-op wrap
  /// when the option is off).
  SchedulerCycleResult RunCycleTracedLocked();

  /// Re-renders the /statusz JSON from the series/counter fields
  /// (mutex_ held) into the status cache.
  void UpdateStatusLocked();

  /// Builds and publishes report `next_version_` for an attacked
  /// cycle; advances the series state on success.
  Status PublishLocked(SchedulerCycleResult* result);

  /// Rewrites latest.json to point at `version` (write-temp → rename).
  Status WriteLatestPointer(uint64_t version);

  /// Deletes the oldest report files beyond retain_reports.
  void RetireReportsLocked();

  /// Daemon thread body.
  void DaemonLoop();

  const std::string manifest_path_;
  const AttackSchedulerOptions options_;

  /// Serializes cycles (Tick, RunCycleNow, accessors).
  mutable std::mutex mutex_;
  uint64_t next_due_ = 0;  ///< Cadence deadline (trace::NowNanos()).
  uint64_t next_version_ = 1;
  uint64_t last_published_version_ = 0;
  uint64_t last_manifest_hash_ = 0;
  uint64_t last_report_rows_ = 0;
  bool have_last_report_ = false;
  /// Versions whose report files exist (initial scan + publishes minus
  /// retirements) — the retention working set.
  std::set<uint64_t> existing_versions_;
  uint64_t cycles_ = 0;
  uint64_t cycles_ok_ = 0;
  uint64_t cycles_degraded_ = 0;
  uint64_t cycles_failed_ = 0;
  uint64_t skipped_no_manifest_ = 0;
  uint64_t skipped_unchanged_ = 0;
  uint64_t overruns_ = 0;
  uint64_t reports_published_ = 0;

  /// The cached /statusz rendering (see StatusJson). Guarded by
  /// status_mutex_, which is only ever held for a copy or a swap —
  /// never across IO or an attack.
  mutable std::mutex status_mutex_;
  std::string status_json_ = "{}";

  /// Daemon thread state.
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  std::thread thread_;
};

}  // namespace pipeline
}  // namespace randrecon

#endif  // RANDRECON_PIPELINE_ATTACK_SCHEDULER_H_
