#include "pipeline/attack_scheduler.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <utility>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/run_report.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "data/rolling_store.h"
#include "pipeline/record_source.h"

namespace randrecon {
namespace pipeline {

namespace {

// The publish seams. `sched.publish` fires before the report is even
// rendered to its temp file — killing the process here (crash action)
// is the "died between deciding to publish and publishing" window the
// crash-safety test exercises: on restart the directory scan must hand
// out the SAME version again (no gap, no duplicate). `sched.latest`
// fires before the latest.json rewrite — the pointer going stale is
// non-fatal by contract, repaired on the next publish or Create.
Failpoint fp_sched_publish("sched.publish");
Failpoint fp_sched_latest("sched.latest");

// Per-process scheduler telemetry. The identity
//   scheduler.cycles == cycles_ok + cycles_degraded + cycles_failed
// is kept exact by incrementing outcome counters in the same locked
// region that increments cycles. These are registry-global (shared by
// every scheduler in the process, reset only by a reporting TOOL);
// the per-report series numbers come from the instance counters.
metrics::Counter m_cycles("scheduler.cycles");
metrics::Counter m_cycles_ok("scheduler.cycles_ok");
metrics::Counter m_cycles_degraded("scheduler.cycles_degraded");
metrics::Counter m_cycles_failed("scheduler.cycles_failed");
metrics::Counter m_skipped_no_manifest("scheduler.skipped_no_manifest");
metrics::Counter m_skipped_unchanged("scheduler.skipped_unchanged");
metrics::Counter m_overruns("scheduler.overruns");
metrics::Counter m_reports_published("scheduler.reports_published");
metrics::Counter m_reports_retired("scheduler.reports_retired");
metrics::Gauge g_last_version("scheduler.last_version");
metrics::Gauge g_last_snapshot_rows("scheduler.last_snapshot_rows");
metrics::Histogram h_cycle_nanos("scheduler.cycle_nanos");

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty() || dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

std::string RenderDouble(double value) {
  char buffer[40];
  // %.17g round-trips every finite double; JSON has no inf/nan.
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  std::string rendered = buffer;
  if (rendered.find_first_of("nN") != std::string::npos) rendered = "null";
  return rendered;
}

/// True iff `name` is "report-<digits>.json" with version > 0.
bool ParseReportVersion(const std::string& name, uint64_t* version) {
  static const char kPrefix[] = "report-";
  static const char kSuffix[] = ".json";
  const size_t prefix_len = sizeof(kPrefix) - 1;
  const size_t suffix_len = sizeof(kSuffix) - 1;
  if (name.size() <= prefix_len + suffix_len) return false;
  if (name.compare(0, prefix_len, kPrefix) != 0) return false;
  if (name.compare(name.size() - suffix_len, suffix_len, kSuffix) != 0) {
    return false;
  }
  const std::string digits =
      name.substr(prefix_len, name.size() - prefix_len - suffix_len);
  for (const char c : digits) {
    if (c < '0' || c > '9') return false;
  }
  *version = std::strtoull(digits.c_str(), nullptr, 10);
  return *version > 0;
}

/// Recovers the previous report's snapshot identity from its own JSON
/// (the report_series block this scheduler wrote), so row-delta
/// chaining stays exact across restarts. Substring scanning is safe
/// here because the format is ours: the keys appear exactly once, in
/// the report_series section.
bool RecoverSeriesState(const std::string& path, uint64_t* rows,
                        uint64_t* hash) {
  std::ifstream file(path, std::ios::binary);
  if (!file.is_open()) return false;
  std::string text((std::istreambuf_iterator<char>(file)),
                   std::istreambuf_iterator<char>());
  const size_t series = text.find("\"report_series\":{");
  if (series == std::string::npos) return false;
  static const char kRowsKey[] = "\"snapshot_rows\":";
  static const char kHashKey[] = "\"manifest_hash\":\"";
  const size_t rows_at = text.find(kRowsKey, series);
  const size_t hash_at = text.find(kHashKey, series);
  if (rows_at == std::string::npos || hash_at == std::string::npos) {
    return false;
  }
  *rows = std::strtoull(text.c_str() + rows_at + sizeof(kRowsKey) - 1,
                        nullptr, 10);
  // The rendered digest is "0x%016llx"; base 16 consumes the prefix.
  *hash = std::strtoull(text.c_str() + hash_at + sizeof(kHashKey) - 1,
                        nullptr, 16);
  return true;
}

}  // namespace

const char* CycleOutcomeName(CycleOutcome outcome) {
  switch (outcome) {
    case CycleOutcome::kNotDue:
      return "not_due";
    case CycleOutcome::kSkippedNoManifest:
      return "skipped_no_manifest";
    case CycleOutcome::kSkippedUnchanged:
      return "skipped_unchanged";
    case CycleOutcome::kOk:
      return "ok";
    case CycleOutcome::kDegraded:
      return "degraded";
    case CycleOutcome::kFailed:
      return "failed";
  }
  return "unknown";
}

std::string AttackScheduler::ReportFileName(uint64_t version) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "report-%06llu.json",
                static_cast<unsigned long long>(version));
  return buffer;
}

AttackScheduler::AttackScheduler(std::string manifest_path,
                                 AttackSchedulerOptions options)
    : manifest_path_(std::move(manifest_path)), options_(std::move(options)) {}

AttackScheduler::~AttackScheduler() { Stop(); }

Result<std::unique_ptr<AttackScheduler>> AttackScheduler::Create(
    std::string manifest_path, AttackSchedulerOptions options) {
  if (options.report_dir.empty()) {
    return Status::InvalidArgument(
        "AttackScheduler: report_dir is required — the report directory IS "
        "the series' durable state");
  }
  if (!(options.sigma > 0.0)) {
    return Status::InvalidArgument("AttackScheduler: sigma must be > 0, got " +
                                   RenderDouble(options.sigma));
  }
  if (::mkdir(options.report_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError("AttackScheduler: cannot create report dir '" +
                           options.report_dir + "': " + std::strerror(errno));
  }
  std::unique_ptr<AttackScheduler> scheduler(
      new AttackScheduler(std::move(manifest_path), std::move(options)));

  // Recover the version counter from the directory itself — the only
  // source a crash cannot desynchronize from the published files.
  DIR* dir = ::opendir(scheduler->options_.report_dir.c_str());
  if (dir == nullptr) {
    return Status::IoError("AttackScheduler: cannot scan report dir '" +
                           scheduler->options_.report_dir +
                           "': " + std::strerror(errno));
  }
  while (struct dirent* entry = ::readdir(dir)) {
    uint64_t version = 0;
    if (ParseReportVersion(entry->d_name, &version)) {
      scheduler->existing_versions_.insert(version);
    }
  }
  ::closedir(dir);

  if (!scheduler->existing_versions_.empty()) {
    const uint64_t max_version = *scheduler->existing_versions_.rbegin();
    scheduler->next_version_ = max_version + 1;
    const std::string latest_report =
        JoinPath(scheduler->options_.report_dir, ReportFileName(max_version));
    uint64_t rows = 0;
    uint64_t hash = 0;
    if (RecoverSeriesState(latest_report, &rows, &hash)) {
      scheduler->last_published_version_ = max_version;
      scheduler->last_report_rows_ = rows;
      scheduler->last_manifest_hash_ = hash;
      scheduler->have_last_report_ = true;
    } else {
      // Unreadable predecessor: versions still advance past it (no
      // duplicates), but the row-delta chain deliberately restarts —
      // prev_version 0 tells the validator not to cross-check.
      RR_LOG(kWarning) << "AttackScheduler: cannot recover series state from '"
                       << latest_report
                       << "' — row-delta chaining restarts at the next report";
    }
    // A crash between the report rename and the pointer rewrite leaves
    // latest.json one version behind; publishing is already done, so
    // repair is just rewriting the derived pointer.
    const Status repaired = scheduler->WriteLatestPointer(max_version);
    if (!repaired.ok()) {
      RR_LOG(kWarning) << "AttackScheduler: " << repaired.message()
                       << " — latest.json stays stale until the next publish";
    }
  }

  // The first Tick after Create is immediately due (fake clock at t=0
  // included: next_due == now fires).
  scheduler->next_due_ = trace::NowNanos();
  scheduler->UpdateStatusLocked();  // No concurrency yet: Create owns it.
  return scheduler;
}

SchedulerCycleResult AttackScheduler::Tick() {
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t now = trace::NowNanos();
  bool due = false;
  if (options_.cadence_nanos > 0 && now >= next_due_) {
    // Every whole cadence slot that passed beyond the one being served
    // was missed — a cycle that overruns its cadence shows up here, with
    // the anchor advanced so the schedule never tries to "catch up" by
    // firing back-to-back.
    const uint64_t missed = (now - next_due_) / options_.cadence_nanos;
    if (missed > 0) {
      overruns_ += missed;
      m_overruns.Add(missed);
    }
    next_due_ += (missed + 1) * options_.cadence_nanos;
    due = true;
  }
  if (!due && options_.min_new_rows > 0) {
    // Cheap trigger probe: parse the manifest, pin nothing. Signed
    // delta — retention can shrink the published window, which never
    // fires the growth trigger.
    Result<data::ShardManifest> parsed =
        data::ReadShardManifest(manifest_path_);
    if (parsed.ok()) {
      const int64_t delta =
          static_cast<int64_t>(parsed.value().num_records) -
          static_cast<int64_t>(last_report_rows_);
      if (!have_last_report_ ||
          delta >= static_cast<int64_t>(options_.min_new_rows)) {
        due = true;
      }
    }
  }
  if (!due) {
    UpdateStatusLocked();  // Overruns may have advanced.
    return SchedulerCycleResult{};
  }
  SchedulerCycleResult result = RunCycleTracedLocked();
  UpdateStatusLocked();
  return result;
}

SchedulerCycleResult AttackScheduler::RunCycleNow() {
  std::lock_guard<std::mutex> lock(mutex_);
  SchedulerCycleResult result = RunCycleTracedLocked();
  UpdateStatusLocked();
  return result;
}

SchedulerCycleResult AttackScheduler::RunCycleTracedLocked() {
  if (!options_.trace_cycles) return RunCycleLocked();
  trace::StartTracing();
  SchedulerCycleResult result = RunCycleLocked();
  trace::PushRecentCapture(
      std::string("scheduler.cycle ") + CycleOutcomeName(result.outcome),
      trace::StopTracing());
  return result;
}

SchedulerCycleResult AttackScheduler::RunCycleLocked() {
  Stopwatch watch;
  SchedulerCycleResult result;

  Result<data::ShardManifest> parsed = data::ReadShardManifest(manifest_path_);
  if (!parsed.ok()) {
    result.outcome = CycleOutcome::kSkippedNoManifest;
    result.status = parsed.status();
    ++skipped_no_manifest_;
    m_skipped_no_manifest.Add(1);
    return result;
  }
  const data::ShardManifest& manifest = parsed.value();
  if (!options_.attack_unchanged && have_last_report_ &&
      manifest.manifest_hash == last_manifest_hash_) {
    result.outcome = CycleOutcome::kSkippedUnchanged;
    ++skipped_unchanged_;
    m_skipped_unchanged.Add(1);
    return result;
  }

  // The snapshot identity the report names MUST be the pinned one: a
  // writer can republish between the trigger parse above and the pin
  // inside the job, and the bitwise contract is against what was
  // actually attacked. The trigger-time parse is only the fallback for
  // cycles whose factory never got to pin.
  struct PinnedIdentity {
    std::mutex mutex;
    bool have = false;
    uint64_t manifest_hash = 0;
    uint64_t rows = 0;
    size_t shards = 0;
  };
  auto pinned = std::make_shared<PinnedIdentity>();
  result.manifest_hash = manifest.manifest_hash;
  result.snapshot_rows = manifest.num_records;
  result.snapshot_shards = manifest.shards.size();

  PipelineJob job;
  job.name = manifest_path_;
  job.attack = options_.attack;
  job.noise = perturb::NoiseModel::IndependentGaussian(
      std::max<size_t>(1, manifest.column_names.size()), options_.sigma);
  job.retry = options_.retry;
  const std::string manifest_path = manifest_path_;
  const data::ColumnStoreReadOptions store_options = options_.store_options;
  job.disguised = [manifest_path, store_options,
                   pinned]() -> Result<std::unique_ptr<RecordSource>> {
    RR_ASSIGN_OR_RETURN(
        data::RollingStoreSnapshotReader snapshot,
        data::RollingStoreSnapshotReader::Open(manifest_path, store_options));
    {
      std::lock_guard<std::mutex> lock(pinned->mutex);
      pinned->have = true;
      pinned->manifest_hash = snapshot.manifest().manifest_hash;
      pinned->rows = snapshot.manifest().num_records;
      pinned->shards = snapshot.manifest().shards.size();
    }
    return std::unique_ptr<RecordSource>(
        new SnapshotRecordSource(std::move(snapshot)));
  };

  PipelineRunnerOptions runner_options;
  runner_options.num_workers = options_.num_workers;
  std::vector<PipelineJobResult> whole_results =
      RunPipelineJobs({job}, runner_options);
  PipelineJobResult& whole = whole_results.front();
  {
    std::lock_guard<std::mutex> lock(pinned->mutex);
    if (pinned->have) {
      result.manifest_hash = pinned->manifest_hash;
      result.snapshot_rows = pinned->rows;
      result.snapshot_shards = pinned->shards;
    }
  }

  bool publishable = false;
  if (whole.status.ok()) {
    result.outcome = CycleOutcome::kOk;
    result.report = whole.report;
    result.jobs.push_back(std::move(whole));
    publishable = true;
  } else {
    result.status = whole.status;
    result.jobs.push_back(std::move(whole));
    if (options_.degraded_fallback) {
      // The whole-stream job failed past its retries — cover what can
      // be covered and NAME the rest, the sweep driver's discipline.
      Result<PerShardJobSet> job_set = MakePerShardJobsDegraded(
          manifest_path_, job, options_.store_options);
      if (job_set.ok()) {
        result.excluded = std::move(job_set.value().excluded);
        if (!job_set.value().jobs.empty()) {
          std::vector<PipelineJobResult> shard_results =
              RunPipelineJobs(job_set.value().jobs, runner_options);
          size_t ok_shards = 0;
          for (PipelineJobResult& shard_result : shard_results) {
            if (shard_result.status.ok()) ++ok_shards;
            result.jobs.push_back(std::move(shard_result));
          }
          if (ok_shards > 0) {
            result.outcome = CycleOutcome::kDegraded;
            publishable = true;
          }
        }
      }
    }
  }

  if (publishable) {
    result.rows_since_last_report =
        static_cast<int64_t>(result.snapshot_rows) -
        static_cast<int64_t>(last_report_rows_);
    const Status published = PublishLocked(&result);
    if (!published.ok()) {
      // The attack succeeded but nothing durable exists — that is a
      // failed cycle, and the version was not consumed.
      result.outcome = CycleOutcome::kFailed;
      result.status = published;
      result.version = 0;
      result.report_path.clear();
    }
  } else {
    result.outcome = CycleOutcome::kFailed;
  }

  ++cycles_;
  m_cycles.Add(1);
  switch (result.outcome) {
    case CycleOutcome::kOk:
      ++cycles_ok_;
      m_cycles_ok.Add(1);
      break;
    case CycleOutcome::kDegraded:
      ++cycles_degraded_;
      m_cycles_degraded.Add(1);
      break;
    default:
      ++cycles_failed_;
      m_cycles_failed.Add(1);
      break;
  }
  h_cycle_nanos.Record(watch.ElapsedNanos());
  return result;
}

Status AttackScheduler::PublishLocked(SchedulerCycleResult* result) {
  const uint64_t version = next_version_;
  const bool degraded = result->outcome == CycleOutcome::kDegraded;
  const std::string path =
      JoinPath(options_.report_dir, ReportFileName(version));

  size_t jobs_failed = 0;
  for (const PipelineJobResult& job : result->jobs) {
    if (!job.status.ok()) ++jobs_failed;
  }

  report::RunReportBuilder builder("attack_scheduler");
  builder.AddConfig("manifest", manifest_path_);
  builder.AddConfig("report_dir", options_.report_dir);
  builder.AddConfig("attack",
                    options_.attack.attack == StreamingAttack::kPcaDr ? "pca"
                                                                      : "sf");
  builder.AddConfigDouble("sigma", options_.sigma);
  builder.AddConfigInt("chunk_rows",
                       static_cast<int64_t>(options_.attack.chunk_rows));
  builder.AddConfigInt("cadence_nanos",
                       static_cast<int64_t>(options_.cadence_nanos));
  builder.AddConfigInt("min_new_rows",
                       static_cast<int64_t>(options_.min_new_rows));
  builder.AddConfigInt("retain_reports",
                       static_cast<int64_t>(options_.retain_reports));
  builder.AddConfigInt("version", static_cast<int64_t>(version));
  builder.AddConfigBool("degraded", degraded);
  builder.AddConfigInt("jobs_total", static_cast<int64_t>(result->jobs.size()));
  builder.AddConfigInt("jobs_failed", static_cast<int64_t>(jobs_failed));

  // Same per-job shape sweep_attack reports, so check_report.py shares
  // the parsing (and the bitwise gate compares the %.17g strings).
  std::string jobs_json = "[";
  for (size_t i = 0; i < result->jobs.size(); ++i) {
    const PipelineJobResult& job = result->jobs[i];
    if (i > 0) jobs_json.append(",");
    jobs_json.append(
        "{\"name\":\"" + report::JsonEscape(job.name) + "\",\"ok\":" +
        (job.status.ok() ? "true" : "false") + ",\"status\":\"" +
        report::JsonEscape(job.status.ToString()) +
        "\",\"records\":" + std::to_string(job.report.num_records) +
        ",\"attributes\":" + std::to_string(job.report.num_attributes) +
        ",\"components\":" + std::to_string(job.report.num_components) +
        ",\"rmse_vs_disguised\":" + RenderDouble(job.report.rmse_vs_disguised) +
        ",\"attempts\":" + std::to_string(job.attempts) +
        ",\"elapsed_seconds\":" + RenderDouble(job.elapsed_seconds) + "}");
  }
  jobs_json.append("]");
  builder.AddRawSection("jobs", jobs_json);

  std::string exclusions_json = "[";
  for (size_t i = 0; i < result->excluded.size(); ++i) {
    const ShardExclusion& entry = result->excluded[i];
    if (i > 0) exclusions_json.append(",");
    exclusions_json.append(
        "{\"manifest\":\"" + report::JsonEscape(manifest_path_) +
        "\",\"shard_index\":" + std::to_string(entry.shard_index) +
        ",\"shard_path\":\"" + report::JsonEscape(entry.shard_path) +
        "\",\"row_begin\":" + std::to_string(entry.row_begin) +
        ",\"row_count\":" + std::to_string(entry.row_count) + ",\"reason\":\"" +
        report::JsonEscape(entry.reason) + "\"}");
  }
  exclusions_json.append("]");
  builder.AddRawSection("exclusions", exclusions_json);

  // The series block: the report's identity in the chain. Counters are
  // the PER-INSTANCE values AS OF this cycle committing — computed
  // speculatively here, committed by the caller iff this publish
  // succeeds, so the numbers a published report carries are always the
  // ones that became true.
  const uint64_t series_cycles = cycles_ + 1;
  const uint64_t series_ok = cycles_ok_ + (degraded ? 0 : 1);
  const uint64_t series_degraded = cycles_degraded_ + (degraded ? 1 : 0);
  std::string series_json =
      "{\"version\":" + std::to_string(version) + ",\"manifest\":\"" +
      report::JsonEscape(manifest_path_) + "\",\"manifest_hash\":\"" +
      data::ManifestHashHex(result->manifest_hash) +
      "\",\"snapshot_rows\":" + std::to_string(result->snapshot_rows) +
      ",\"snapshot_shards\":" + std::to_string(result->snapshot_shards) +
      ",\"rows_since_last_report\":" +
      std::to_string(result->rows_since_last_report) +
      ",\"prev_version\":" + std::to_string(last_published_version_) +
      ",\"prev_rows\":" + std::to_string(last_report_rows_) +
      ",\"outcome\":\"" + CycleOutcomeName(result->outcome) +
      "\",\"cycles\":" + std::to_string(series_cycles) +
      ",\"cycles_ok\":" + std::to_string(series_ok) +
      ",\"cycles_degraded\":" + std::to_string(series_degraded) +
      ",\"cycles_failed\":" + std::to_string(cycles_failed_) +
      ",\"skipped_no_manifest\":" + std::to_string(skipped_no_manifest_) +
      ",\"skipped_unchanged\":" + std::to_string(skipped_unchanged_) +
      ",\"overruns\":" + std::to_string(overruns_) +
      ",\"reports_published\":" + std::to_string(reports_published_ + 1) + "}";
  builder.AddRawSection("report_series", series_json);

  const Status written = [&]() -> Status {
    RR_FAILPOINT(fp_sched_publish);
    return builder.WriteFile(path);
  }();
  RR_RETURN_NOT_OK(written);

  // Commit: the file exists, so the series state may advance.
  result->version = version;
  result->report_path = path;
  existing_versions_.insert(version);
  next_version_ = version + 1;
  last_published_version_ = version;
  last_manifest_hash_ = result->manifest_hash;
  last_report_rows_ = result->snapshot_rows;
  have_last_report_ = true;
  ++reports_published_;
  m_reports_published.Add(1);
  g_last_version.Set(static_cast<int64_t>(version));
  g_last_snapshot_rows.Set(static_cast<int64_t>(result->snapshot_rows));

  const Status latest = WriteLatestPointer(version);
  if (!latest.ok()) {
    // Repeats every publish while the condition persists; rate-limited
    // so a long outage cannot melt stderr (the report series itself is
    // unaffected — latest.json is a derived pointer).
    RR_LOG_EVERY_N(kWarning, 16)
        << "AttackScheduler: " << latest.message()
        << " — latest.json stays stale until the next publish";
  }
  RetireReportsLocked();
  return Status::OK();
}

Status AttackScheduler::WriteLatestPointer(uint64_t version) {
  const std::string path = JoinPath(options_.report_dir, "latest.json");
  const std::string temp_path = path + ".tmp";
  RR_FAILPOINT(fp_sched_latest);
  {
    std::ofstream file(temp_path, std::ios::binary | std::ios::trunc);
    if (!file.is_open()) {
      return Status::IoError("cannot create latest pointer temp '" +
                             temp_path + "'");
    }
    file << "{\"version\":" << version << ",\"path\":\""
         << ReportFileName(version) << "\"}\n";
    file.flush();
    if (!file.good()) {
      std::remove(temp_path.c_str());
      return Status::IoError("cannot write latest pointer '" + temp_path +
                             "'");
    }
  }
  if (std::rename(temp_path.c_str(), path.c_str()) != 0) {
    std::remove(temp_path.c_str());
    return Status::IoError("cannot rename latest pointer '" + temp_path +
                           "' to '" + path + "'");
  }
  return Status::OK();
}

void AttackScheduler::RetireReportsLocked() {
  if (options_.retain_reports == 0) return;
  while (existing_versions_.size() > options_.retain_reports) {
    const uint64_t oldest = *existing_versions_.begin();
    existing_versions_.erase(existing_versions_.begin());
    const std::string path =
        JoinPath(options_.report_dir, ReportFileName(oldest));
    if (std::remove(path.c_str()) == 0) {
      m_reports_retired.Add(1);
    } else {
      RR_LOG_EVERY_N(kWarning, 16)
          << "AttackScheduler: cannot retire report '" << path
          << "': " << std::strerror(errno);
    }
  }
}

Status AttackScheduler::Start() {
  if (thread_.joinable()) {
    return Status::FailedPrecondition(
        "AttackScheduler: daemon already running");
  }
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { DaemonLoop(); });
  return Status::OK();
}

void AttackScheduler::Stop() {
  if (!thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  thread_.join();
  thread_ = std::thread();
}

void AttackScheduler::DaemonLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(stop_mutex_);
      if (stop_requested_) return;
    }
    Tick();
    std::unique_lock<std::mutex> lock(stop_mutex_);
    stop_cv_.wait_for(lock, std::chrono::nanoseconds(options_.poll_nanos),
                      [this] { return stop_requested_; });
    if (stop_requested_) return;
  }
}

uint64_t AttackScheduler::cycles() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cycles_;
}

uint64_t AttackScheduler::cycles_ok() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cycles_ok_;
}

uint64_t AttackScheduler::cycles_degraded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cycles_degraded_;
}

uint64_t AttackScheduler::cycles_failed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cycles_failed_;
}

uint64_t AttackScheduler::skipped_no_manifest() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return skipped_no_manifest_;
}

uint64_t AttackScheduler::skipped_unchanged() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return skipped_unchanged_;
}

uint64_t AttackScheduler::overruns() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return overruns_;
}

uint64_t AttackScheduler::reports_published() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return reports_published_;
}

uint64_t AttackScheduler::last_published_version() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_published_version_;
}

uint64_t AttackScheduler::next_version() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_version_;
}

void AttackScheduler::UpdateStatusLocked() {
  std::string json = "{";
  json.append("\"manifest\":\"" + report::JsonEscape(manifest_path_) + "\"");
  json.append(",\"report_dir\":\"" +
              report::JsonEscape(options_.report_dir) + "\"");
  json.append(",\"cycles\":" + std::to_string(cycles_));
  json.append(",\"cycles_ok\":" + std::to_string(cycles_ok_));
  json.append(",\"cycles_degraded\":" + std::to_string(cycles_degraded_));
  json.append(",\"cycles_failed\":" + std::to_string(cycles_failed_));
  json.append(",\"skipped_no_manifest\":" +
              std::to_string(skipped_no_manifest_));
  json.append(",\"skipped_unchanged\":" + std::to_string(skipped_unchanged_));
  json.append(",\"overruns\":" + std::to_string(overruns_));
  json.append(",\"reports_published\":" + std::to_string(reports_published_));
  json.append(",\"next_version\":" + std::to_string(next_version_));
  json.append(",\"last_published_version\":" +
              std::to_string(last_published_version_));
  json.append(",\"last_report_rows\":" + std::to_string(last_report_rows_));
  json.append(",\"last_manifest_hash\":\"" +
              (have_last_report_ ? data::ManifestHashHex(last_manifest_hash_)
                                 : std::string("")) +
              "\"");
  json.append(",\"have_last_report\":");
  json.append(have_last_report_ ? "true" : "false");
  json.append("}");
  std::lock_guard<std::mutex> lock(status_mutex_);
  status_json_ = std::move(json);
}

std::string AttackScheduler::StatusJson() const {
  std::lock_guard<std::mutex> lock(status_mutex_);
  return status_json_;
}

}  // namespace pipeline
}  // namespace randrecon
