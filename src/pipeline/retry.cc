#include "pipeline/retry.h"

#include <algorithm>
#include <cmath>

#include "data/column_store.h"
#include "stats/philox.h"

namespace randrecon {
namespace pipeline {

namespace {

/// Stream tag separating retry jitter from every other Philox consumer
/// (record noise, MVN synthesis) under the same seed.
constexpr uint64_t kRetryJitterStreamTag = 0x5245545259;  // "RETRY"

}  // namespace

uint64_t RetryJobKey(const std::string& job_name) {
  // RRH64 is already the repo's canonical stable 64-bit hash (and is
  // specified in docs/FORMAT.md, so job keys survive rebuilds and
  // platforms alike).
  return data::ColumnStoreHash(job_name.data(), job_name.size());
}

double RetryBackoffSeconds(const RetryPolicy& policy, uint64_t job_key,
                           int attempt) {
  if (attempt < 2) return 0.0;
  const double multiplier = std::max(policy.backoff_multiplier, 1.0);
  double base = policy.initial_backoff_seconds *
                std::pow(multiplier, static_cast<double>(attempt - 2));
  base = std::min(base, policy.max_backoff_seconds);
  base = std::max(base, 0.0);
  const double jitter =
      std::min(std::max(policy.jitter_fraction, 0.0), 1.0);
  if (jitter == 0.0) return base;
  // Element `attempt` of the job's substream of the RETRY stream: a
  // counter-based draw, so (seed, job, attempt) -> jitter is stateless
  // and replayable.
  const stats::Philox stream =
      stats::Philox(policy.jitter_seed, kRetryJitterStreamTag)
          .Substream(job_key);
  double u = 0.0;
  stats::UniformSliceAt(stream, static_cast<uint64_t>(attempt), &u, 1);
  return base * (1.0 - jitter + 2.0 * jitter * u);
}

}  // namespace pipeline
}  // namespace randrecon
