// RecordSource: the input side of the out-of-core attack pipeline.
//
// A source serves an ordered stream of n records (m attributes each) in
// caller-sized chunks, and can be rewound. Rewindability is the load-
// bearing contract: the covariance attacks need two passes over Y (means
// + centered scatter, then projection), and every pass must observe the
// byte-identical record sequence — RAPPOR-style report logs, CSV exports
// and seeded synthetic populations all satisfy it naturally.
//
// Adapters provided here:
//   * MatrixRecordSource      — an in-memory record matrix, chunked.
//   * CsvRecordSource         — a CSV file/string via data::CsvChunkReader,
//                               never holding the table in full.
//   * ColumnStoreRecordSource — a memory-mapped binary column store via
//                               data::ColumnStoreReader (docs/FORMAT.md);
//                               the native backend, ~10-100x CSV ingest.
//   * MvnRecordSource         — a seeded synthetic N(µ, Σ) population of
//                               fixed size, regenerated per pass.
//   * PerturbingRecordSource  — decorator turning any source X into the
//                               attacker-visible stream Y = X + R.
//
// source_factory.h opens a path as whichever file-backed source its
// leading bytes identify.
//
// Every adapter's stream is invariant to the chunk size it is read with
// (draws and parses are strictly record-ordered), which the pipeline's
// determinism contract builds on.

#ifndef RANDRECON_PIPELINE_RECORD_SOURCE_H_
#define RANDRECON_PIPELINE_RECORD_SOURCE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/column_store.h"
#include "data/csv.h"
#include "data/rolling_store.h"
#include "data/shard_store.h"
#include "linalg/matrix.h"
#include "perturb/schemes.h"
#include "stats/mvn.h"
#include "stats/rng.h"

namespace randrecon {
namespace pipeline {

/// How a synthetic source (and the perturbing decorator's noise) draws
/// its randomness. Both modes are rewindable and chunk-size invariant;
/// they produce DIFFERENT record values for the same seed.
enum class GeneratorMode {
  /// mt19937 stats::Rng, strictly record-ordered scalar draws — the
  /// small/test path, generation is inherently sequential.
  kSequentialRng,
  /// stats::Philox counter substrate: records come from fixed
  /// stats::kBatchBlockRows blocks with counter-derived per-block
  /// substreams, generated in parallel (ParallelFor over blocks) with
  /// vectorized fills. Bitwise identical for every chunk size and
  /// thread count, and additionally O(1)-seekable.
  kCounterBatch,
};

/// Zero-copy columnar block access — the capability mmap'd store-backed
/// sources expose so columnar consumers (pass-1 moment accumulation) can
/// skip the columnar→row-major gather entirely. Blocks partition the
/// stream in record order; NextBlockColumns serves every attribute of
/// one block as a contiguous slice straight out of the mapping. The
/// block cursor is independent of the row-major NextChunk cursor.
class ColumnarBlockStream {
 public:
  virtual ~ColumnarBlockStream() = default;

  /// Rewinds the block cursor to the first block.
  virtual Status ResetBlocks() = 0;

  /// Fills `columns` (resized to m) with one pointer per attribute into
  /// the next block and returns its record count; 0 means exhausted.
  /// Pointers stay valid until the owning source is destroyed. Fails
  /// like the backing reader (e.g. a block checksum mismatch naming the
  /// block).
  virtual Result<size_t> NextBlockColumns(
      std::vector<const double*>* columns) = 0;
};

/// An ordered, rewindable stream of records.
class RecordSource {
 public:
  virtual ~RecordSource() = default;

  /// Record width m.
  virtual size_t num_attributes() const = 0;

  /// Rewinds to the first record. The re-streamed sequence must be
  /// byte-identical to the previous pass.
  virtual Status Reset() = 0;

  /// Fills the leading rows of `buffer` (shape: chunk_rows x m) with the
  /// next records and returns how many were written; 0 means the stream
  /// is exhausted.
  virtual Result<size_t> NextChunk(linalg::Matrix* buffer) = 0;

  /// The columnar fast-path capability, or null for sources that only
  /// serve row-major chunks. The returned stream serves the SAME records
  /// in the same order as NextChunk.
  virtual ColumnarBlockStream* columnar_blocks() { return nullptr; }
};

/// Streams an in-memory record matrix. Owns its copy when constructed by
/// value; the pointer constructor borrows (the matrix must outlive the
/// source) so multi-job runners don't duplicate big datasets.
class MatrixRecordSource final : public RecordSource {
 public:
  explicit MatrixRecordSource(linalg::Matrix records)
      : owned_(std::move(records)), records_(&owned_) {}
  explicit MatrixRecordSource(const linalg::Matrix* records)
      : records_(records) {}

  // records_ points into the object itself when owning, so moves must
  // rebind it; copies are disallowed (copy the matrix explicitly if you
  // really want a duplicate stream).
  MatrixRecordSource(MatrixRecordSource&& other) noexcept
      : owned_(std::move(other.owned_)),
        records_(other.records_ == &other.owned_ ? &owned_ : other.records_),
        next_row_(other.next_row_) {}
  MatrixRecordSource& operator=(MatrixRecordSource&& other) noexcept {
    const bool owning = other.records_ == &other.owned_;
    owned_ = std::move(other.owned_);
    records_ = owning ? &owned_ : other.records_;
    next_row_ = other.next_row_;
    return *this;
  }
  MatrixRecordSource(const MatrixRecordSource&) = delete;
  MatrixRecordSource& operator=(const MatrixRecordSource&) = delete;

  size_t num_attributes() const override { return records_->cols(); }
  Status Reset() override {
    next_row_ = 0;
    return Status::OK();
  }
  Result<size_t> NextChunk(linalg::Matrix* buffer) override;

 private:
  linalg::Matrix owned_;
  const linalg::Matrix* records_;
  size_t next_row_ = 0;
};

/// Streams a CSV file (or in-memory CSV text) chunk by chunk.
class CsvRecordSource final : public RecordSource {
 public:
  static Result<CsvRecordSource> Open(const std::string& path);
  static Result<CsvRecordSource> FromString(std::string text);

  const std::vector<std::string>& attribute_names() const {
    return reader_.attribute_names();
  }
  size_t num_attributes() const override { return reader_.num_attributes(); }
  Status Reset() override { return reader_.Reset(); }
  Result<size_t> NextChunk(linalg::Matrix* buffer) override {
    return reader_.ReadChunk(buffer);
  }

 private:
  explicit CsvRecordSource(data::CsvChunkReader reader)
      : reader_(std::move(reader)) {}

  data::CsvChunkReader reader_;
};

/// Streams a memory-mapped column-store file (data::ColumnStoreReader):
/// record n's bytes are at a closed-form offset, so chunking is a strided
/// gather out of the page cache and Reset() is free. Block checksums are
/// verified on first touch; a corrupt block surfaces as the reader's
/// InvalidArgument naming the block, never a crash. Also serves the
/// columnar fast path (zero-copy BlockColumn slices).
class ColumnStoreRecordSource final : public RecordSource,
                                      public ColumnarBlockStream {
 public:
  /// Fails like data::ColumnStoreReader::Open (bad magic/version,
  /// checksum or size mismatch, unreadable file). `options` enables
  /// eager whole-file verification and block-parallel reads.
  static Result<ColumnStoreRecordSource> Open(
      const std::string& path, data::ColumnStoreReadOptions options = {});

  const std::vector<std::string>& attribute_names() const {
    return reader_.attribute_names();
  }
  size_t num_records() const { return reader_.num_records(); }
  size_t num_attributes() const override { return reader_.num_attributes(); }
  Status Reset() override {
    next_row_ = 0;
    return Status::OK();
  }
  Result<size_t> NextChunk(linalg::Matrix* buffer) override;

  ColumnarBlockStream* columnar_blocks() override { return this; }
  Status ResetBlocks() override {
    next_block_ = 0;
    return Status::OK();
  }
  Result<size_t> NextBlockColumns(
      std::vector<const double*>* columns) override;

 private:
  explicit ColumnStoreRecordSource(data::ColumnStoreReader reader)
      : reader_(std::move(reader)) {}

  data::ColumnStoreReader reader_;
  size_t next_row_ = 0;
  size_t next_block_ = 0;
};

/// Streams a sharded store (manifest + N `.rrcs` shards,
/// data::ShardedStoreReader) as ONE logical record stream — shard
/// boundaries are invisible to consumers, so the attack over a manifest
/// is bitwise identical to the attack over the equivalent single file.
/// Shards open lazily; every shard-level failure (missing/truncated/
/// swapped/resealed shard, schema mismatch) surfaces as a Status naming
/// the shard. Serves the columnar fast path across shards (each shard's
/// blocks in order).
class ShardedRecordSource final : public RecordSource,
                                  public ColumnarBlockStream {
 public:
  /// Fails like data::ReadShardManifest; shard files are not touched
  /// until their rows are. `store_options` applies to every shard open.
  static Result<ShardedRecordSource> Open(
      const std::string& manifest_path,
      data::ColumnStoreReadOptions store_options = {});

  const std::vector<std::string>& attribute_names() const {
    return reader_.attribute_names();
  }
  size_t num_records() const { return reader_.num_records(); }
  size_t num_shards() const { return reader_.num_shards(); }
  size_t num_attributes() const override { return reader_.num_attributes(); }
  Status Reset() override {
    next_row_ = 0;
    return Status::OK();
  }
  Result<size_t> NextChunk(linalg::Matrix* buffer) override;

  ColumnarBlockStream* columnar_blocks() override { return this; }
  Status ResetBlocks() override {
    block_shard_ = 0;
    block_in_shard_ = 0;
    return Status::OK();
  }
  Result<size_t> NextBlockColumns(
      std::vector<const double*>* columns) override;

 private:
  explicit ShardedRecordSource(data::ShardedStoreReader reader)
      : reader_(std::move(reader)) {}

  data::ShardedStoreReader reader_;
  size_t next_row_ = 0;
  size_t block_shard_ = 0;
  size_t block_in_shard_ = 0;
};

/// Streams a PINNED rolling-store snapshot
/// (data::RollingStoreSnapshotReader) — the attack scheduler's input.
/// Serves the exact record order and block geometry ShardedRecordSource
/// serves over the same manifest, so an attack through this source is
/// bitwise identical to one through ShardedRecordSource::Open on the
/// same published snapshot — but because every shard is pinned up
/// front, a concurrent writer's rotations and retention can never fail
/// a read mid-attack. Construct from RollingStoreSnapshotReader::Open
/// (or ::Pin); takes ownership of the snapshot.
class SnapshotRecordSource final : public RecordSource,
                                   public ColumnarBlockStream {
 public:
  explicit SnapshotRecordSource(data::RollingStoreSnapshotReader snapshot)
      : snapshot_(std::move(snapshot)) {}

  const std::vector<std::string>& attribute_names() const {
    return snapshot_.attribute_names();
  }
  size_t num_records() const { return snapshot_.num_records(); }
  size_t num_shards() const { return snapshot_.num_shards(); }
  const data::ShardManifest& manifest() const { return snapshot_.manifest(); }
  size_t num_attributes() const override {
    return snapshot_.num_attributes();
  }
  Status Reset() override {
    next_row_ = 0;
    return Status::OK();
  }
  Result<size_t> NextChunk(linalg::Matrix* buffer) override;

  ColumnarBlockStream* columnar_blocks() override { return this; }
  Status ResetBlocks() override {
    block_shard_ = 0;
    block_in_shard_ = 0;
    return Status::OK();
  }
  Result<size_t> NextBlockColumns(
      std::vector<const double*>* columns) override;

 private:
  data::RollingStoreSnapshotReader snapshot_;
  size_t next_row_ = 0;
  size_t block_shard_ = 0;
  size_t block_in_shard_ = 0;
};

/// Streams `num_records` i.i.d. draws from N(mean, covariance) — the
/// §7.1 population served as a stream instead of a matrix. Reset()
/// restarts the pseudo-random draw sequence from the seed, so every pass
/// regenerates identical records without storing any of them.
///
/// In kCounterBatch mode (the default) records are generated in fixed
/// stats::kBatchBlockRows blocks: full blocks inside a chunk go straight
/// into the caller's buffer in parallel, edge blocks are generated whole
/// into a one-block cache and sliced (consecutive small chunks reuse the
/// cache). Record i is a pure function of (seed, i), so the stream is
/// bitwise identical for every chunk size and thread count — and also
/// across Reset(), which costs nothing.
class MvnRecordSource final : public RecordSource {
 public:
  /// Fails like MultivariateNormalSampler::Create (asymmetric /
  /// indefinite covariance, mean length mismatch).
  static Result<MvnRecordSource> Create(
      const linalg::Vector& mean, const linalg::Matrix& covariance,
      size_t num_records, uint64_t seed,
      GeneratorMode mode = GeneratorMode::kCounterBatch);

  size_t num_attributes() const override { return sampler_.dimension(); }
  Status Reset() override {
    rng_ = stats::Rng(seed_);
    served_ = 0;
    return Status::OK();
  }
  Result<size_t> NextChunk(linalg::Matrix* buffer) override;

  /// Worker budget for the parallel block generation (kCounterBatch).
  void set_parallel_options(const ParallelOptions& options) {
    parallel_ = options;
  }

 private:
  MvnRecordSource(stats::MultivariateNormalSampler sampler, size_t num_records,
                  uint64_t seed, GeneratorMode mode)
      : sampler_(std::move(sampler)),
        num_records_(num_records),
        seed_(seed),
        mode_(mode),
        rng_(seed),
        base_(seed, kMvnStreamTag) {}

  Result<size_t> NextChunkBatch(linalg::Matrix* buffer, size_t rows);

  /// Stream-id tag separating this source's substrate streams from other
  /// consumers of the same seed (e.g. the perturbing decorator).
  static constexpr uint64_t kMvnStreamTag = 0x4D564E;  // "MVN"

  stats::MultivariateNormalSampler sampler_;
  size_t num_records_;
  uint64_t seed_;
  GeneratorMode mode_;
  stats::Rng rng_;
  stats::Philox base_;
  ParallelOptions parallel_;
  size_t served_ = 0;
  // One-block cache for chunk boundaries that straddle a block.
  linalg::Matrix block_cache_;
  uint64_t cached_block_ = ~uint64_t{0};
};

/// Decorator: serves the inner stream disguised as Y = X + R, drawing R
/// from `scheme` with its own seeded noise stream. Reset() rewinds both
/// the inner source and the noise stream, so repeated passes observe the
/// same disguised records — the attacker's view of a randomized report
/// stream. `scheme` is borrowed and must outlive the source.
///
/// In kCounterBatch mode (default) the noise of record i is a pure
/// function of (seed, i) via the scheme's AddNoiseAt batch entry point
/// (vectorized fills, parallel over fixed blocks). Schemes without batch
/// support (scheme->SupportsBatchNoise() == false) fall back to the
/// sequential Rng mode automatically.
class PerturbingRecordSource final : public RecordSource {
 public:
  PerturbingRecordSource(std::unique_ptr<RecordSource> inner,
                         const perturb::RandomizationScheme* scheme,
                         uint64_t seed,
                         GeneratorMode mode = GeneratorMode::kCounterBatch);

  size_t num_attributes() const override { return inner_->num_attributes(); }
  Status Reset() override {
    rng_ = stats::Rng(seed_);
    served_ = 0;
    return inner_->Reset();
  }
  Result<size_t> NextChunk(linalg::Matrix* buffer) override;

  /// The generation mode actually in effect (after any fallback).
  GeneratorMode mode() const { return mode_; }

  /// Worker budget for the parallel noise generation (kCounterBatch).
  void set_parallel_options(const ParallelOptions& options) {
    parallel_ = options;
  }

 private:
  /// Stream-id tag separating the noise streams from the inner source's.
  static constexpr uint64_t kNoiseStreamTag = 0x4E4F495345;  // "NOISE"

  std::unique_ptr<RecordSource> inner_;
  const perturb::RandomizationScheme* scheme_;
  uint64_t seed_;
  GeneratorMode mode_;
  stats::Rng rng_;
  stats::Philox base_;
  ParallelOptions parallel_;
  size_t served_ = 0;
};

}  // namespace pipeline
}  // namespace randrecon

#endif  // RANDRECON_PIPELINE_RECORD_SOURCE_H_
