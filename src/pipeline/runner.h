// PipelineRunner: a batch scheduler for streaming attack jobs — the
// multi-tenant "attack service" shape. Many (dataset × noise × attack)
// jobs are sharded across the process thread pool; each job streams its
// own sources in bounded memory, failures are isolated per job, and the
// result order matches the submission order regardless of scheduling.

#ifndef RANDRECON_PIPELINE_RUNNER_H_
#define RANDRECON_PIPELINE_RUNNER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "data/shard_store.h"
#include "perturb/noise_model.h"
#include "pipeline/streaming_attack.h"

namespace randrecon {
namespace pipeline {

/// Builds a fresh source per run, so concurrent jobs never share stream
/// cursors. Return a Status to report an unavailable input (missing CSV,
/// bad covariance, ...) — the job fails, the batch continues.
using SourceFactory =
    std::function<Result<std::unique_ptr<RecordSource>>()>;

/// One unit of batch work: attack one disguised stream with one noise
/// model and one attack configuration.
struct PipelineJob {
  /// Display identifier echoed into the result.
  std::string name;
  /// The disguised stream Y (required).
  SourceFactory disguised;
  /// Optional aligned ground-truth stream for rmse_vs_reference.
  SourceFactory reference;
  /// The public noise knowledge handed to the attack.
  perturb::NoiseModel noise = perturb::NoiseModel::IndependentGaussian(1, 1.0);
  /// Attack + chunking configuration.
  StreamingAttackOptions attack;
  /// Where reconstructed chunks go; null means NullChunkSink. Sinks are
  /// per-job (never shared), so no cross-job synchronization is needed.
  std::shared_ptr<ChunkSink> sink;
};

/// Outcome of one job.
struct PipelineJobResult {
  std::string name;
  /// OK iff the job ran to completion; the factory/pipeline error
  /// otherwise.
  Status status;
  /// Valid iff status.ok().
  StreamingAttackReport report;
  double elapsed_seconds = 0.0;
};

/// Scheduler knobs.
struct PipelineRunnerOptions {
  /// Jobs run concurrently on up to this many workers (0 = auto, i.e.
  /// RANDRECON_THREADS / hardware concurrency). Each job's own kernels
  /// run inline when the batch occupies the pool, so the worker count
  /// never changes any job's numbers — only the wall clock.
  int num_workers = 0;
};

/// Runs every job (failures isolated per job; a malformed job fails, it
/// never aborts the batch) and returns results in submission order.
std::vector<PipelineJobResult> RunPipelineJobs(
    const std::vector<PipelineJob>& jobs,
    const PipelineRunnerOptions& options = {});

/// Job-per-shard decomposition of a sharded store: expands `prototype`
/// into one job per shard of the manifest at `manifest_path`. Job k is
/// named "<prototype.name>/shard-<k>" and attacks shard k's records as
/// an independent stream (its own moments, eigenbasis, reconstruction) —
/// the natural unit when shards are separate report logs, and the
/// natural work item for RunPipelineJobs' dynamic scheduling. The
/// prototype's noise and attack options are copied to every shard job;
/// its disguised/reference factories and sink describe a whole-stream
/// job and are deliberately NOT inherited (a per-shard reference or sink
/// needs per-shard alignment the caller must wire explicitly).
///
/// Determinism: each shard job's numbers are a pure function of that
/// shard's bytes (contract 6 — the scheduler never changes numbers), and
/// attacking the WHOLE manifest as one stream remains bitwise identical
/// to the equivalent single-file attack (contract 7) — decomposition is
/// a scheduling choice, never a numerics choice.
///
/// Fails like data::ReadShardManifest (missing/corrupt manifest, bad
/// spans); a missing or corrupt shard FILE fails only its own job, at
/// run time, preserving batch isolation.
Result<std::vector<PipelineJob>> MakePerShardJobs(
    const std::string& manifest_path, const PipelineJob& prototype);

/// As above over an already-parsed manifest — for callers (like the
/// sweep driver) that have read it anyway; never re-reads the file.
/// `directory` is the prefix shard relative paths join onto
/// (data::ManifestDirectory of the manifest's path).
std::vector<PipelineJob> MakePerShardJobs(const data::ShardManifest& manifest,
                                          const std::string& directory,
                                          const PipelineJob& prototype);

}  // namespace pipeline
}  // namespace randrecon

#endif  // RANDRECON_PIPELINE_RUNNER_H_
