// PipelineRunner: a batch scheduler for streaming attack jobs — the
// multi-tenant "attack service" shape. Many (dataset × noise × attack)
// jobs are sharded across the process thread pool; each job streams its
// own sources in bounded memory, failures are isolated per job, and the
// result order matches the submission order regardless of scheduling.

#ifndef RANDRECON_PIPELINE_RUNNER_H_
#define RANDRECON_PIPELINE_RUNNER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "data/shard_store.h"
#include "perturb/noise_model.h"
#include "pipeline/retry.h"
#include "pipeline/streaming_attack.h"

namespace randrecon {
namespace pipeline {

/// Builds a fresh source per run, so concurrent jobs never share stream
/// cursors. Return a Status to report an unavailable input (missing CSV,
/// bad covariance, ...) — the job fails, the batch continues.
using SourceFactory =
    std::function<Result<std::unique_ptr<RecordSource>>()>;

/// One unit of batch work: attack one disguised stream with one noise
/// model and one attack configuration.
struct PipelineJob {
  /// Display identifier echoed into the result.
  std::string name;
  /// The disguised stream Y (required).
  SourceFactory disguised;
  /// Optional aligned ground-truth stream for rmse_vs_reference.
  SourceFactory reference;
  /// The public noise knowledge handed to the attack.
  perturb::NoiseModel noise = perturb::NoiseModel::IndependentGaussian(1, 1.0);
  /// Attack + chunking configuration.
  StreamingAttackOptions attack;
  /// Where reconstructed chunks go; null means NullChunkSink. Sinks are
  /// per-job (never shared), so no cross-job synchronization is needed.
  std::shared_ptr<ChunkSink> sink;
  /// Retry schedule for transient failures (pipeline/retry.h). The
  /// default (max_attempts = 1) retries nothing. Only retryable errors
  /// (Status::IsRetryable: kUnavailable, kIoError) are retried; a
  /// deterministic failure stops at its first occurrence. CAVEAT: a
  /// retry re-builds the sources (fresh factory call) and re-streams the
  /// WHOLE pipeline into `sink` — a sink that accumulates across runs
  /// would see the failed attempt's partial chunks followed by the
  /// successful attempt's full stream. Enable retries only with a null
  /// sink or one whose Consume is restart-tolerant.
  RetryPolicy retry;
};

/// Outcome of one job.
struct PipelineJobResult {
  std::string name;
  /// OK iff the job ran to completion; the factory/pipeline error
  /// otherwise. When the retry policy's deadline cut retries short this
  /// is kDeadlineExceeded, wrapping the last underlying error.
  Status status;
  /// Valid iff status.ok().
  StreamingAttackReport report;
  /// Runs attempted (1 when the first try settled it; up to
  /// retry.max_attempts).
  int attempts = 0;
  /// Whole-job wall clock, every attempt and backoff included.
  double elapsed_seconds = 0.0;
};

/// Scheduler knobs.
struct PipelineRunnerOptions {
  /// Jobs run concurrently on up to this many workers (0 = auto, i.e.
  /// RANDRECON_THREADS / hardware concurrency). Each job's own kernels
  /// run inline when the batch occupies the pool, so the worker count
  /// never changes any job's numbers — only the wall clock.
  int num_workers = 0;
};

/// Runs every job (failures isolated per job; a malformed job fails, it
/// never aborts the batch) and returns results in submission order.
std::vector<PipelineJobResult> RunPipelineJobs(
    const std::vector<PipelineJob>& jobs,
    const PipelineRunnerOptions& options = {});

/// Job-per-shard decomposition of a sharded store: expands `prototype`
/// into one job per shard of the manifest at `manifest_path`. Job k is
/// named "<prototype.name>/shard-<k>" and attacks shard k's records as
/// an independent stream (its own moments, eigenbasis, reconstruction) —
/// the natural unit when shards are separate report logs, and the
/// natural work item for RunPipelineJobs' dynamic scheduling. The
/// prototype's noise and attack options are copied to every shard job;
/// its disguised/reference factories and sink describe a whole-stream
/// job and are deliberately NOT inherited (a per-shard reference or sink
/// needs per-shard alignment the caller must wire explicitly).
///
/// Determinism: each shard job's numbers are a pure function of that
/// shard's bytes (contract 6 — the scheduler never changes numbers), and
/// attacking the WHOLE manifest as one stream remains bitwise identical
/// to the equivalent single-file attack (contract 7) — decomposition is
/// a scheduling choice, never a numerics choice.
///
/// Fails like data::ReadShardManifest (missing/corrupt manifest, bad
/// spans); a missing or corrupt shard FILE fails only its own job, at
/// run time, preserving batch isolation.
Result<std::vector<PipelineJob>> MakePerShardJobs(
    const std::string& manifest_path, const PipelineJob& prototype);

/// As above over an already-parsed manifest — for callers (like the
/// sweep driver) that have read it anyway; never re-reads the file.
/// `directory` is the prefix shard relative paths join onto
/// (data::ManifestDirectory of the manifest's path).
std::vector<PipelineJob> MakePerShardJobs(const data::ShardManifest& manifest,
                                          const std::string& directory,
                                          const PipelineJob& prototype);

/// One shard a degraded sweep left out, with enough identity (index,
/// path, row span) for the caller's report to say exactly which records
/// the batch did NOT cover.
struct ShardExclusion {
  size_t shard_index = 0;
  std::string shard_path;
  uint64_t row_begin = 0;
  uint64_t row_count = 0;
  /// Why the shard was excluded — the probe failure, verbatim (missing
  /// file, checksum mismatch, seal-digest drift, quarantined by
  /// recovery, ...).
  std::string reason;
};

/// MakePerShardJobsDegraded's output: runnable jobs over the healthy
/// shards plus an explicit account of everything excluded. A degraded
/// sweep NEVER silently narrows — callers must surface DegradedSummary()
/// (or the structured `excluded` list) alongside any aggregate they
/// compute from the jobs.
struct PerShardJobSet {
  std::vector<PipelineJob> jobs;
  /// jobs[i] attacks shard shard_of_job[i] of the manifest.
  std::vector<size_t> shard_of_job;
  std::vector<ShardExclusion> excluded;
  /// Manifest-wide totals, for "covered X of Y" reporting.
  size_t total_shards = 0;
  uint64_t total_rows = 0;
  /// Records the exclusions cover (sum of excluded row_counts).
  uint64_t excluded_rows = 0;
  bool degraded() const { return !excluded.empty(); }
  /// "" when nothing was excluded; otherwise a one-paragraph account
  /// naming every excluded shard, its row span and its reason.
  std::string DegradedSummary() const;
};

/// Degraded-mode job-per-shard decomposition: like MakePerShardJobs, but
/// each shard is probed up front (file opens, schema, row count and seal
/// digest match the manifest) and shards that fail the probe are skipped
/// with a ShardExclusion instead of producing a job doomed to fail — the
/// batch covers every healthy shard of a store that recovery (or rot)
/// has left partially usable. `probe_options` tunes the probe's reads
/// (eager whole-shard verification is NOT forced; the per-block
/// checksums still guard the jobs' own reads). Fails only like
/// data::ReadShardManifest — with no readable manifest there is no job
/// set to build.
Result<PerShardJobSet> MakePerShardJobsDegraded(
    const std::string& manifest_path, const PipelineJob& prototype,
    data::ColumnStoreReadOptions probe_options = {});

}  // namespace pipeline
}  // namespace randrecon

#endif  // RANDRECON_PIPELINE_RUNNER_H_
