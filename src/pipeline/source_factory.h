// Auto-detecting factories for file-backed pipeline endpoints.
//
// The attack CLIs accept "a file of records" without caring whether it is
// a CSV export, a binary column store, or a sharded-store manifest:
// OpenRecordSource sniffs the leading magic bytes
// (data::DetectRecordFileFormat — content, not extension) and returns
// whichever RecordSource matches, plus the attribute names every format
// carries. CreateRecordSink picks the output format by extension (the
// one place intent can't be sniffed): ".rrcs" writes a column store,
// ".rrcm" a sharded store (manifest + shards), anything else CSV.

#ifndef RANDRECON_PIPELINE_SOURCE_FACTORY_H_
#define RANDRECON_PIPELINE_SOURCE_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/column_store.h"
#include "data/shard_store.h"
#include "pipeline/chunk_sink.h"
#include "pipeline/record_source.h"

namespace randrecon {
namespace pipeline {

/// The conventional column-store file extension ("<name>.rrcs"). The
/// manifest extension is data::kShardManifestExtension (".rrcm").
extern const char kColumnStoreExtension[];

/// A file opened as a record stream, with the metadata every backend
/// provides. `num_records` is known up front for the column-store and
/// sharded backends (CSV discovers its length by streaming); 0 means
/// unknown.
struct OpenedRecordSource {
  std::unique_ptr<RecordSource> source;
  std::vector<std::string> attribute_names;
  data::RecordFileFormat format = data::RecordFileFormat::kCsv;
  size_t num_records = 0;
};

/// Per-backend open knobs (each applies only where meaningful).
struct RecordSourceOptions {
  /// Column-store and sharded backends: eager whole-file verification
  /// and block-parallel reads (data::ColumnStoreReadOptions). Ignored
  /// for CSV.
  data::ColumnStoreReadOptions store;
};

/// Opens `path` as whichever source its leading bytes identify: a
/// ColumnStoreRecordSource, a ShardedRecordSource (manifest magic), or a
/// CsvRecordSource. Fails like the matching Open (unreadable file,
/// malformed header/manifest, ...).
Result<OpenedRecordSource> OpenRecordSource(const std::string& path,
                                            const RecordSourceOptions& options);
Result<OpenedRecordSource> OpenRecordSource(const std::string& path);

/// Per-format knobs for CreateRecordSink (each applies only when the
/// extension selects that backend).
struct RecordSinkOptions {
  size_t block_rows = data::kDefaultColumnStoreBlockRows;
  /// Sharded sink: records per shard before rolling; 0 means the
  /// data::ShardedStoreOptions default.
  size_t shard_rows = 0;
  /// 17 round-trips every finite double exactly; 10 is the compact
  /// WriteCsv default.
  int csv_precision = 10;
};

/// Creates a CsvChunkSink, ColumnStoreChunkSink or ShardedChunkSink for
/// `path` by extension (".rrcs" -> column store, ".rrcm" -> sharded
/// store). Call Close() on the returned sink after the last Consume to
/// seal/flush the file(s).
Result<std::unique_ptr<ChunkSink>> CreateRecordSink(
    const std::string& path, const std::vector<std::string>& attribute_names,
    RecordSinkOptions options = {});

/// True iff `path` carries kColumnStoreExtension — the rule
/// CreateRecordSink dispatches on (exposed so tools stay in sync).
bool HasColumnStoreExtension(const std::string& path);

/// True iff `path` carries data::kShardManifestExtension (".rrcm").
bool HasShardManifestExtension(const std::string& path);

/// Opens both paths (formats sniffed independently) and streams them in
/// lockstep: OK iff they carry identical attribute names and
/// bitwise-identical f64 records in the same order. InvalidArgument
/// naming the diverging rows otherwise; open/read errors propagate, and
/// chunk_rows == 0 is InvalidArgument (it would compare nothing).
/// convert_csv --verify and the micro_io fidelity gate both run this —
/// for every backend pair, including sharded manifests.
Status VerifyStreamsBitwiseEqual(const std::string& a_path,
                                 const std::string& b_path,
                                 size_t chunk_rows = 4096);

}  // namespace pipeline
}  // namespace randrecon

#endif  // RANDRECON_PIPELINE_SOURCE_FACTORY_H_
