// Retry policy for pipeline jobs: capped exponential backoff with
// deterministic, Philox-derived jitter.
//
// A batch of per-shard jobs over flaky storage fails for two very
// different reasons: transient faults (a loaded filesystem, an armed
// `unavailable` failpoint, an NFS hiccup) that a later attempt may
// clear, and deterministic ones (schema mismatch, checksum corruption,
// a bug) that every attempt reproduces. Status::IsRetryable() draws
// that line (common/status.h); this header supplies the schedule for
// the retryable side.
//
// The jitter is the part worth being careful about. Random jitter
// decorrelates retry storms, but the usual implementation (seed from
// the clock) makes every failing run unreproducible. Here the jitter
// for (job, attempt) is a pure function of (jitter_seed, job key,
// attempt) through the same counter-based Philox generator the
// synthesis pipeline uses for record noise: re-running a failed batch
// replays byte-identical backoff schedules, while distinct jobs still
// spread their retries apart because each job keys its own substream.

#ifndef RANDRECON_PIPELINE_RETRY_H_
#define RANDRECON_PIPELINE_RETRY_H_

#include <cstdint>
#include <string>

namespace randrecon {
namespace pipeline {

/// Per-job retry schedule. The zero-argument default (max_attempts = 1)
/// means "no retries" — existing callers keep their exact semantics.
struct RetryPolicy {
  /// Total attempts including the first (>= 1). 1 disables retries.
  int max_attempts = 1;
  /// Backoff before attempt 2; later waits multiply. Seconds.
  double initial_backoff_seconds = 0.01;
  /// Growth factor per retry (>= 1).
  double backoff_multiplier = 2.0;
  /// Backoff cap (applied before jitter). Seconds.
  double max_backoff_seconds = 2.0;
  /// Each wait is scaled by a factor drawn uniformly from
  /// [1 - jitter_fraction, 1 + jitter_fraction]. 0 disables jitter.
  double jitter_fraction = 0.25;
  /// Wall-clock budget for the whole job, all attempts and backoffs
  /// included. 0 means no deadline. A job that still fails retryably
  /// when the deadline has passed (or whose next backoff would cross
  /// it) stops with kDeadlineExceeded wrapping the last error.
  double deadline_seconds = 0.0;
  /// Seed for the jitter stream. The same (seed, job name, attempt)
  /// always yields the same jitter — deterministic replays.
  uint64_t jitter_seed = 0;
};

/// The Philox substream key for a job: a stable 64-bit hash of its
/// name. Two jobs with different names jitter independently; the same
/// name replays the same schedule.
uint64_t RetryJobKey(const std::string& job_name);

/// The backoff (seconds) to sleep before attempt `attempt` (2-based:
/// attempt 2 is the first retry) of the job keyed `job_key`. Pure
/// function of its arguments — see the header comment.
double RetryBackoffSeconds(const RetryPolicy& policy, uint64_t job_key,
                           int attempt);

}  // namespace pipeline
}  // namespace randrecon

#endif  // RANDRECON_PIPELINE_RETRY_H_
