#ifndef RANDRECON_NET_STATS_SERVER_H_
#define RANDRECON_NET_STATS_SERVER_H_

/// \file
/// The live introspection plane: a minimal, dependency-free HTTP/1.1
/// server exposing the telemetry the run reports only show post-mortem.
/// This is deliberately the repo's FIRST network surface, split into a
/// reusable listener/connection layer (TcpListener: bind + poll-accept
/// + self-pipe shutdown) and the stats protocol on top, so the
/// ROADMAP's distributed-execution RecordSource can reuse the transport
/// without inheriting the HTTP routing.
///
/// Endpoints (all GET, Connection: close, one response per connection):
///   /healthz   "ok" — liveness probe.
///   /varz      metrics::SnapshotJson() verbatim.
///   /metricsz  Prometheus text exposition v0.0.4 rendered from the
///              same registry (log-bucket histograms as cumulative
///              `le` buckets — see PrometheusText below).
///   /statusz   JSON: build info, uptime, armed failpoints, plus any
///              daemon-registered sections (ingest/scheduler state).
///   /tracez    JSON: the trace::RecentCaptures() ring (most recent
///              finished span trees, newest first).
///
/// Determinism contract 10 (docs/OBSERVABILITY.md): serving observes,
/// it never perturbs. Handlers only read — registry snapshots, status
/// closures, the trace ring — so an attack cycle under active scrape
/// load is bitwise identical to an unscraped one (pinned by
/// tests/net/scrape_under_load_test.cc, run under TSan in CI).
///
/// Threading: Start() spawns one serving thread that accepts and
/// handles connections serially — scrape traffic is humans and
/// collectors, not load — and Stop() (or the destructor) wakes it via
/// the self-pipe and joins. Handlers must therefore be cheap and
/// non-blocking; status closures that need a daemon's mutex must hold
/// it briefly (the daemons keep a dedicated status mutex for exactly
/// this).

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"

namespace randrecon {
namespace net {

/// The reusable transport: a bound, listening TCP socket with a
/// poll()-based Accept that a Wake() from any thread unblocks (self-pipe
/// trick — no racy cross-thread close). Loopback-only by design: this
/// is an introspection port, not a public service.
class TcpListener {
 public:
  /// Binds and listens on 127.0.0.1:`port`; port 0 picks an ephemeral
  /// port (read it back with port()).
  static Result<std::unique_ptr<TcpListener>> Listen(uint16_t port);
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// The bound port (the ephemeral one when Listen got 0).
  int port() const { return port_; }

  /// Blocks until a connection arrives (returns its fd — caller closes)
  /// or Wake() is called (returns Unavailable). IoError on accept
  /// failure.
  Result<int> Accept();

  /// Unblocks the current (and every future) Accept. Idempotent,
  /// callable from any thread.
  void Wake();

  /// Releases the listening socket: the port is free again and new
  /// connects are refused instead of parking in the kernel backlog.
  /// Only safe once no thread is blocked in Accept (Wake + join
  /// first). Idempotent; the destructor calls it.
  void Close();

 private:
  TcpListener() = default;

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  int port_ = 0;
};

/// Renders `snapshot` in Prometheus text exposition format v0.0.4.
/// Dotted metric names become underscored with a "randrecon_" prefix
/// ("ingest.rows_shed" -> "randrecon_ingest_rows_shed"); histograms
/// emit cumulative buckets at the log-bucket upper bounds
/// (le="0","1","3","7",... then le="+Inf"), `_sum`, and `_count`. The
/// bucket array itself supplies the +Inf/_count total, so the rendered
/// histogram is internally consistent even when a concurrent Record
/// tore the scalar count (see Histogram::ConsistentSnapshot).
std::string PrometheusText(const metrics::MetricsSnapshot& snapshot);

/// The stats protocol over a TcpListener.
class StatsServer {
 public:
  struct Options {
    /// Port to bind (0 = ephemeral).
    uint16_t port = 0;
  };

  /// Binds, then spawns the serving thread. The returned server is live:
  /// curl http://127.0.0.1:<port()>/healthz answers immediately.
  static Result<std::unique_ptr<StatsServer>> Start(Options options);

  /// Stops and joins the serving thread (idempotent; destructor calls
  /// it).
  ~StatsServer();
  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  int port() const { return listener_->port(); }

  /// Registers a /statusz section: the closure's returned JSON value is
  /// embedded under "sections".`key` on every scrape. Closures must be
  /// registered before traffic is expected to see them (registration is
  /// not synchronized against in-flight scrapes) and must be safe to
  /// call from the serving thread at any time.
  void AddStatusSection(const std::string& key,
                        std::function<std::string()> render_json);

  void Stop();

 private:
  StatsServer() = default;

  void Serve();
  void HandleConnection(int fd);
  /// Routes one request target to (status line suffix, content type,
  /// body).
  void Route(const std::string& target, int* status, std::string* reason,
             std::string* content_type, std::string* body);
  std::string StatuszJson();
  std::string TracezJson();

  std::unique_ptr<TcpListener> listener_;
  std::thread thread_;
  std::mutex stop_mutex_;  ///< Serializes Stop() (join is not reentrant).
  std::atomic<bool> stopping_{false};
  uint64_t start_nanos_ = 0;
  // Registration happens during daemon startup, before scraping; the
  // mutex makes late registration merely unsynchronized-visible, not UB.
  std::mutex sections_mutex_;
  std::vector<std::pair<std::string, std::function<std::string()>>>
      sections_;
};

}  // namespace net
}  // namespace randrecon

#endif  // RANDRECON_NET_STATS_SERVER_H_
