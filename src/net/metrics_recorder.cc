#include "net/metrics_recorder.h"

#include <dirent.h>
#include <sys/stat.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "data/file_io.h"

namespace randrecon {
namespace net {
namespace {

// Publication seams, mirroring report.write/report.rename: the CI fault
// matrix and the recorder tests prove a fault at either step leaves the
// previously published series intact and no stray temp behind.
Failpoint fp_recorder_write("recorder.write");      ///< Before the temp write.
Failpoint fp_recorder_publish("recorder.publish");  ///< Before the rename.

// The recorder's own instruments. Incremented strictly AFTER a sample's
// snapshot is captured — the reconciliation contract in the header
// depends on the final sample not observing its own bookkeeping.
metrics::Counter m_samples("recorder.samples");
metrics::Counter m_publish_failures("recorder.publish_failures");
metrics::Counter m_files_published("recorder.files_published");

/// "metrics-000007.jsonl" -> 7. False for anything else. The width is
/// unbounded: FilePath pads to 6 digits but emits more past 999999, and
/// those files must still anchor the index-continuation scan.
bool ParseSeriesIndex(const char* name, uint64_t* index) {
  unsigned long long parsed = 0;
  int consumed = 0;
  if (std::sscanf(name, "metrics-%llu.jsonl%n", &parsed, &consumed) != 1) {
    return false;
  }
  if (name[consumed] != '\0') return false;
  *index = parsed;
  return true;
}

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty() || dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

}  // namespace

MetricsRecorder::MetricsRecorder(Options options)
    : options_(std::move(options)) {}

Result<std::unique_ptr<MetricsRecorder>> MetricsRecorder::Create(
    Options options) {
  if (options.series_dir.empty()) {
    return Status::InvalidArgument("MetricsRecorder: series_dir is required");
  }
  if (options.interval_nanos == 0) {
    return Status::InvalidArgument(
        "MetricsRecorder: interval_nanos must be > 0");
  }
  if (options.samples_per_file == 0) {
    return Status::InvalidArgument(
        "MetricsRecorder: samples_per_file must be > 0");
  }
  if (::mkdir(options.series_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError("MetricsRecorder: cannot create series dir '" +
                           options.series_dir + "': " + std::strerror(errno));
  }
  std::unique_ptr<MetricsRecorder> recorder(
      new MetricsRecorder(std::move(options)));
  // Continue the file-index sequence after any previous run — published
  // history is never appended to or overwritten.
  DIR* dir = ::opendir(recorder->options_.series_dir.c_str());
  if (dir == nullptr) {
    return Status::IoError("MetricsRecorder: cannot scan series dir '" +
                           recorder->options_.series_dir +
                           "': " + std::strerror(errno));
  }
  uint64_t max_index = 0;
  while (struct dirent* entry = ::readdir(dir)) {
    uint64_t index = 0;
    if (ParseSeriesIndex(entry->d_name, &index) && index > max_index) {
      max_index = index;
    }
  }
  ::closedir(dir);
  recorder->file_index_ = max_index + 1;
  recorder->oldest_index_ = recorder->file_index_;
  recorder->next_due_nanos_ =
      trace::NowNanos() + recorder->options_.interval_nanos;
  return recorder;
}

MetricsRecorder::~MetricsRecorder() { Stop(); }

std::string MetricsRecorder::FilePath(uint64_t index) const {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "metrics-%06llu.jsonl",
                static_cast<unsigned long long>(index));
  return JoinPath(options_.series_dir, buffer);
}

bool MetricsRecorder::Tick() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) return false;
  const uint64_t now = trace::NowNanos();
  if (now < next_due_nanos_) return false;
  // Re-arm relative to NOW, not the missed slots: after a clock jump
  // (fake-clock tests advance in big steps) the series records one
  // sample of current state, not a backfill of identical ones.
  next_due_nanos_ = now + options_.interval_nanos;
  const Status sampled = SampleNowLocked();
  if (!sampled.ok()) {
    RR_LOG_EVERY_N(kWarning, 16)
        << "MetricsRecorder: sample publish failed: " << sampled.ToString();
  }
  return true;
}

Status MetricsRecorder::SampleNow() {
  std::lock_guard<std::mutex> lock(mutex_);
  return SampleNowLocked();
}

Status MetricsRecorder::SampleNowLocked() {
  // Snapshot FIRST; bump bookkeeping after the publish. See the
  // reconciliation contract in the header.
  const uint64_t now = trace::NowNanos();
  const std::string metrics_json = metrics::SnapshotJson();
  ++seq_;
  std::string line = "{\"seq\":" + std::to_string(seq_) +
                     ",\"t_nanos\":" + std::to_string(now) + ",";
  line.append(metrics_json.substr(1));  // Splice {"counters":... members.
  line.append("\n");
  current_lines_.append(line);
  ++current_samples_;
  const Status published = PublishLocked();
  if (!published.ok()) {
    m_publish_failures.Add(1);
    return published;
  }
  published_current_ = true;
  m_samples.Add(1);
  if (current_samples_ >= options_.samples_per_file) {
    // Rotate: the published file is final; the next sample opens the
    // next index.
    ++file_index_;
    current_lines_.clear();
    current_samples_ = 0;
    published_current_ = false;
    m_files_published.Add(1);
    RetireLocked();
  }
  return Status::OK();
}

Status MetricsRecorder::PublishLocked() {
  const std::string path = FilePath(file_index_);
  const std::string temp_path = data::TempPathFor(path);
  RR_FAILPOINT(fp_recorder_write);
  {
    std::ofstream file(temp_path, std::ios::binary | std::ios::trunc);
    if (!file.is_open()) {
      return Status::IoError("MetricsRecorder: cannot create temp '" +
                             temp_path + "'");
    }
    file << current_lines_;
    file.flush();
    if (!file.good()) {
      std::remove(temp_path.c_str());
      return Status::IoError("MetricsRecorder: cannot write temp '" +
                             temp_path + "'");
    }
  }
  const Status published = [&]() -> Status {
    RR_RETURN_NOT_OK(data::FsyncFile(temp_path));
    RR_FAILPOINT(fp_recorder_publish);
    RR_RETURN_NOT_OK(data::AtomicRename(temp_path, path));
    return data::FsyncParentDirectory(path);
  }();
  if (!published.ok()) {
    std::remove(temp_path.c_str());  // A failed publish leaves no temp.
    return published;
  }
  return Status::OK();
}

void MetricsRecorder::RetireLocked() {
  if (options_.retain_files == 0) return;
  // file_index_ already points at the NEXT (unwritten) file; published
  // files are [oldest_index_, file_index_ - 1].
  while (file_index_ - oldest_index_ > options_.retain_files) {
    const std::string victim = FilePath(oldest_index_);
    if (std::remove(victim.c_str()) != 0 && errno != ENOENT) {
      RR_LOG_FIRST_N(kWarning, 4)
          << "MetricsRecorder: cannot retire '" << victim
          << "': " << std::strerror(errno);
      return;  // Retry on the next rotation.
    }
    ++oldest_index_;
  }
}

void MetricsRecorder::Start() {
  std::lock_guard<std::mutex> lock(thread_mutex_);
  if (thread_.joinable()) return;
  stop_requested_ = false;
  thread_ = std::thread([this] {
    while (true) {
      {
        std::lock_guard<std::mutex> lock(thread_mutex_);
        if (stop_requested_) return;
      }
      Tick();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });
}

void MetricsRecorder::Stop() {
  {
    std::lock_guard<std::mutex> lock(thread_mutex_);
    stop_requested_ = true;
  }
  if (thread_.joinable()) thread_.join();
}

Status MetricsRecorder::Close() {
  Stop();
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) return Status::OK();
  const Status final_sample = SampleNowLocked();
  closed_ = true;
  return final_sample;
}

uint64_t MetricsRecorder::samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return seq_;
}

std::vector<std::string> MetricsRecorder::PublishedFiles() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> files;
  for (uint64_t index = oldest_index_; index <= file_index_; ++index) {
    // The current file is on disk only once a sample for this index has
    // actually published (a buffered sample whose rename failed is not).
    if (index == file_index_ && !published_current_) break;
    files.push_back(FilePath(index));
  }
  return files;
}

}  // namespace net
}  // namespace randrecon
