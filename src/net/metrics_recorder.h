#ifndef RANDRECON_NET_METRICS_RECORDER_H_
#define RANDRECON_NET_METRICS_RECORDER_H_

/// \file
/// MetricsRecorder: the time-series half of the introspection plane. It
/// periodically snapshots the process-global metrics registry and
/// publishes the samples as a rotated series of `metrics-NNNNNN.jsonl`
/// files next to the scheduler's report series, one JSON object per
/// line:
///
///   {"seq":3,"t_nanos":120000,"counters":{...},"gauges":{...},
///    "histograms":{...}}
///
/// (the counters/gauges/histograms members are exactly
/// metrics::SnapshotJson()'s, so report tooling parses both.)
///
/// Crash safety rides the store discipline (data/file_io.h): every
/// publish rewrites the current file to a temp, fsyncs, and renames —
/// so ANY published metrics-*.jsonl is complete and parseable; a crash
/// loses at most the unpublished latest sample. Rotation starts a fresh
/// file every `samples_per_file` samples and retention unlinks the
/// oldest beyond `retain_files`. A new recorder never appends to a
/// previous run's files: it continues the index sequence after the
/// highest existing one, and `seq` restarts at 1 — which is how
/// tools/check_timeseries.py detects run boundaries.
///
/// Clock: everything reads trace::NowNanos(). Tests install a fake
/// clock and drive sampling with Tick() — zero sleeps; live daemons use
/// Start()/Stop() for a real background thread.
///
/// Reconciliation contract (gated in CI): a daemon that wants its final
/// sample to agree exactly with its run report must quiesce work, write
/// the report, then call Close() — Close takes one last sample, and
/// because the recorder's own counters (recorder.samples, ...) are
/// incremented only AFTER a sample's snapshot is captured, that final
/// snapshot sees precisely the state the report saw.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"

namespace randrecon {
namespace net {

class MetricsRecorder {
 public:
  struct Options {
    /// Directory the series lives in (created if absent).
    std::string series_dir;
    /// Sampling cadence on the trace::NowNanos() clock.
    uint64_t interval_nanos = 1000000000;  // 1s
    /// Samples per file before rotating to the next index.
    size_t samples_per_file = 60;
    /// Published files retained (0 = keep everything).
    size_t retain_files = 0;
  };

  /// Validates options, creates the directory, scans for existing
  /// series files and parks the recorder one interval before its first
  /// due sample. No sample is taken yet.
  static Result<std::unique_ptr<MetricsRecorder>> Create(Options options);

  ~MetricsRecorder();
  MetricsRecorder(const MetricsRecorder&) = delete;
  MetricsRecorder& operator=(const MetricsRecorder&) = delete;

  /// Fake-clock driving: samples iff the clock reached the next due
  /// time (then re-arms; a large jump still yields ONE sample — the
  /// series records state, not wall-clock slots). Returns true iff a
  /// sample was taken. Not thread-safe against itself; serialize with
  /// Start()/Stop().
  bool Tick();

  /// Samples unconditionally, now. The building block of Tick and
  /// Close; exposed for tests that pin exact sample contents.
  Status SampleNow();

  /// Spawns the real-time sampling thread (live daemons). Tick cadence
  /// is interval_nanos of real time, polled at 10ms granularity so Stop
  /// stays prompt.
  void Start();

  /// Joins the sampling thread if running. Idempotent.
  void Stop();

  /// Stop() + one final sample: the quiesced-state sample the
  /// reconciliation contract compares against the run report.
  Status Close();

  /// Samples successfully published so far.
  uint64_t samples() const;

  /// The published file paths, oldest first (what retention kept).
  std::vector<std::string> PublishedFiles() const;

 private:
  explicit MetricsRecorder(Options options);

  Status SampleNowLocked();
  Status PublishLocked();
  void RetireLocked();
  std::string FilePath(uint64_t index) const;

  const Options options_;
  mutable std::mutex mutex_;
  uint64_t next_due_nanos_ = 0;
  uint64_t file_index_ = 1;      ///< Index of the file being written.
  uint64_t oldest_index_ = 1;    ///< Oldest index retention has kept.
  uint64_t seq_ = 0;             ///< Samples taken this run.
  std::string current_lines_;    ///< Accumulated lines of the current file.
  size_t current_samples_ = 0;   ///< Samples in current_lines_.
  /// True once file_index_ has at least one successful publish — i.e.
  /// the file is actually on disk, not just buffered.
  bool published_current_ = false;
  bool closed_ = false;

  std::thread thread_;
  std::mutex thread_mutex_;  ///< Guards thread_ start/join.
  bool stop_requested_ = false;
};

}  // namespace net
}  // namespace randrecon

#endif  // RANDRECON_NET_METRICS_RECORDER_H_
