#include "net/stats_server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/build_info.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/run_report.h"
#include "common/trace.h"

namespace randrecon {
namespace net {
namespace {

// The server's own instruments — they ride the same registry they
// serve, so a scrape can see how much it is being scraped.
metrics::Counter m_connections("net.connections");
metrics::Counter m_requests("net.requests");
metrics::Counter m_http_errors("net.http_errors");

/// Reads until `terminator` appears, EOF, error, or `cap` bytes.
/// Returns what was read (possibly short on EOF/error — the caller
/// validates).
std::string RecvUntil(int fd, const std::string& terminator, size_t cap) {
  std::string data;
  char buffer[1024];
  while (data.size() < cap &&
         data.find(terminator) == std::string::npos) {
    const ssize_t n = recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;  // EOF, timeout or error: parse what we have.
    data.append(buffer, static_cast<size_t>(n));
  }
  return data;
}

/// Writes all of `data` (short writes retried).
void SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return;  // Peer went away; nothing to salvage.
    sent += static_cast<size_t>(n);
  }
}

/// "ingest.rows_shed" -> "randrecon_ingest_rows_shed": Prometheus metric
/// names admit [a-zA-Z0-9_:] only.
std::string PrometheusName(const std::string& name) {
  std::string out = "randrecon_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// TcpListener
// ---------------------------------------------------------------------------

Result<std::unique_ptr<TcpListener>> TcpListener::Listen(uint16_t port) {
  std::unique_ptr<TcpListener> listener(new TcpListener());
  listener->listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listener->listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  setsockopt(listener->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
             sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(listener->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
           sizeof(addr)) != 0) {
    return Status::IoError(std::string("bind 127.0.0.1:") +
                           std::to_string(port) + ": " +
                           std::strerror(errno));
  }
  if (listen(listener->listen_fd_, /*backlog=*/64) != 0) {
    return Status::IoError(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t addr_len = sizeof(addr);
  if (getsockname(listener->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                  &addr_len) != 0) {
    return Status::IoError(std::string("getsockname: ") +
                           std::strerror(errno));
  }
  listener->port_ = ntohs(addr.sin_port);
  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) {
    return Status::IoError(std::string("pipe: ") + std::strerror(errno));
  }
  listener->wake_read_fd_ = pipe_fds[0];
  listener->wake_write_fd_ = pipe_fds[1];
  return listener;
}

TcpListener::~TcpListener() {
  Close();
  if (wake_read_fd_ >= 0) close(wake_read_fd_);
  if (wake_write_fd_ >= 0) close(wake_write_fd_);
}

void TcpListener::Close() {
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
}

Result<int> TcpListener::Accept() {
  pollfd fds[2];
  fds[0].fd = listen_fd_;
  fds[0].events = POLLIN;
  fds[1].fd = wake_read_fd_;
  fds[1].events = POLLIN;
  for (;;) {
    fds[0].revents = 0;
    fds[1].revents = 0;
    const int ready = poll(fds, 2, /*timeout_ms=*/-1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("poll: ") + std::strerror(errno));
    }
    // A wake wins over a pending connection: shutdown is immediate.
    if (fds[1].revents != 0) {
      return Status::Unavailable("listener woken for shutdown");
    }
    if (fds[0].revents != 0) {
      const int client = accept(listen_fd_, nullptr, nullptr);
      if (client < 0) {
        if (errno == EINTR || errno == ECONNABORTED) continue;
        return Status::IoError(std::string("accept: ") +
                               std::strerror(errno));
      }
      return client;
    }
  }
}

void TcpListener::Wake() {
  const char byte = 'w';
  // Best effort: a full pipe already guarantees a pending wake.
  (void)!write(wake_write_fd_, &byte, 1);
}

// ---------------------------------------------------------------------------
// Prometheus exposition
// ---------------------------------------------------------------------------

std::string PrometheusText(const metrics::MetricsSnapshot& snapshot) {
  std::string out;
  for (const metrics::CounterSnapshot& counter : snapshot.counters) {
    const std::string name = PrometheusName(counter.name);
    out.append("# TYPE " + name + " counter\n");
    out.append(name + " " + std::to_string(counter.value) + "\n");
  }
  for (const metrics::GaugeSnapshot& gauge : snapshot.gauges) {
    const std::string name = PrometheusName(gauge.name);
    out.append("# TYPE " + name + " gauge\n");
    out.append(name + " " + std::to_string(gauge.value) + "\n");
  }
  for (const metrics::HistogramSnapshot& histogram : snapshot.histograms) {
    const std::string name = PrometheusName(histogram.name);
    out.append("# TYPE " + name + " histogram\n");
    // Cumulative `le` buckets at the log-bucket upper bounds. Emitting
    // every one of the 64 buckets would be noise; stop at the highest
    // non-empty bucket, then +Inf. The +Inf value (and _count) is the
    // bucket total itself, so sum(buckets) == _count always holds in
    // the exposition even if the scalar count was torn mid-capture.
    size_t highest = 0;
    uint64_t total = 0;
    for (size_t b = 0; b < metrics::kHistogramBuckets; ++b) {
      total += histogram.buckets[b];
      if (histogram.buckets[b] != 0) highest = b;
    }
    uint64_t cumulative = 0;
    for (size_t b = 0; b <= highest && total != 0; ++b) {
      cumulative += histogram.buckets[b];
      const uint64_t upper = metrics::Histogram::BucketUpperBound(b);
      if (upper == ~uint64_t{0}) break;  // The unbounded bucket IS +Inf.
      out.append(name + "_bucket{le=\"" + std::to_string(upper) + "\"} " +
                 std::to_string(cumulative) + "\n");
    }
    out.append(name + "_bucket{le=\"+Inf\"} " + std::to_string(total) +
               "\n");
    out.append(name + "_sum " + std::to_string(histogram.sum) + "\n");
    out.append(name + "_count " + std::to_string(total) + "\n");
  }
  return out;
}

// ---------------------------------------------------------------------------
// StatsServer
// ---------------------------------------------------------------------------

Result<std::unique_ptr<StatsServer>> StatsServer::Start(Options options) {
  std::unique_ptr<StatsServer> server(new StatsServer());
  auto listener = TcpListener::Listen(options.port);
  RR_RETURN_NOT_OK(listener.status());
  server->listener_ = std::move(listener).value();
  server->start_nanos_ = trace::NowNanos();
  server->thread_ = std::thread([raw = server.get()] { raw->Serve(); });
  return server;
}

StatsServer::~StatsServer() { Stop(); }

void StatsServer::Stop() {
  // Serialized: concurrent Stop() calls must not both reach join() on
  // the shared thread_ (joinable-then-join is not atomic).
  std::lock_guard<std::mutex> lock(stop_mutex_);
  if (!listener_) return;  // Start() failed before the listener existed.
  if (!stopping_.exchange(true)) listener_->Wake();
  if (thread_.joinable()) thread_.join();
  // Release the port: a stopped server refuses connects instead of
  // parking them in the kernel backlog.
  listener_->Close();
}

void StatsServer::AddStatusSection(const std::string& key,
                                   std::function<std::string()> render_json) {
  std::lock_guard<std::mutex> lock(sections_mutex_);
  sections_.emplace_back(key, std::move(render_json));
}

void StatsServer::Serve() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    Result<int> client = listener_->Accept();
    if (!client.ok()) {
      if (client.status().code() == StatusCode::kUnavailable) return;
      RR_LOG_EVERY_N(kWarning, 16)
          << "stats server accept: " << client.status().ToString();
      continue;
    }
    m_connections.Add(1);
    HandleConnection(client.value());
  }
}

void StatsServer::HandleConnection(int fd) {
  // A stuck client must not wedge the (serial) serving thread.
  timeval timeout;
  timeout.tv_sec = 2;
  timeout.tv_usec = 0;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
  const std::string request = RecvUntil(fd, "\r\n\r\n", /*cap=*/8192);
  int status = 200;
  std::string reason = "OK";
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  const size_t line_end = request.find("\r\n");
  const std::string first_line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  const size_t sp1 = first_line.find(' ');
  const size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : first_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    status = 400;
    reason = "Bad Request";
    body = "malformed request line\n";
  } else if (first_line.substr(0, sp1) != "GET") {
    status = 405;
    reason = "Method Not Allowed";
    body = "only GET is served\n";
  } else {
    m_requests.Add(1);
    const std::string target = first_line.substr(sp1 + 1, sp2 - sp1 - 1);
    Route(target, &status, &reason, &content_type, &body);
  }
  if (status != 200) m_http_errors.Add(1);
  std::string response = "HTTP/1.1 " + std::to_string(status) + " " +
                         reason + "\r\nContent-Type: " + content_type +
                         "\r\nContent-Length: " +
                         std::to_string(body.size()) +
                         "\r\nConnection: close\r\n\r\n";
  response += body;
  SendAll(fd, response);
  close(fd);
}

void StatsServer::Route(const std::string& target, int* status,
                        std::string* reason, std::string* content_type,
                        std::string* body) {
  // Strip a query string: /varz?x=y routes as /varz.
  const std::string path = target.substr(0, target.find('?'));
  if (path == "/healthz") {
    *body = "ok\n";
  } else if (path == "/varz") {
    *content_type = "application/json";
    *body = metrics::SnapshotJson() + "\n";
  } else if (path == "/metricsz") {
    *content_type = "text/plain; version=0.0.4; charset=utf-8";
    *body = PrometheusText(metrics::Snapshot());
  } else if (path == "/statusz") {
    *content_type = "application/json";
    *body = StatuszJson() + "\n";
  } else if (path == "/tracez") {
    *content_type = "application/json";
    *body = TracezJson() + "\n";
  } else if (path == "/") {
    *body = "randrecon stats server: /healthz /varz /metricsz /statusz "
            "/tracez\n";
  } else {
    *status = 404;
    *reason = "Not Found";
    *body = "unknown endpoint '" + path + "'\n";
  }
}

std::string StatsServer::StatuszJson() {
  const uint64_t now = trace::NowNanos();
  std::string json = "{\"build_info\":" + BuildInfoJson();
  json.append(",\"start_nanos\":" + std::to_string(start_nanos_));
  json.append(",\"now_nanos\":" + std::to_string(now));
  json.append(",\"uptime_nanos\":" +
              std::to_string(now >= start_nanos_ ? now - start_nanos_ : 0));
  json.append(",\"armed_failpoints\":[");
  bool first = true;
  for (const std::string& name : ListArmedFailpoints()) {
    if (!first) json.append(",");
    first = false;
    json.append("\"" + report::JsonEscape(name) + "\"");
  }
  json.append("],\"failpoint_env_spec\":\"" +
              report::JsonEscape(FailpointEnvSpec()) + "\"");
  json.append(",\"sections\":{");
  {
    std::lock_guard<std::mutex> lock(sections_mutex_);
    first = true;
    for (const auto& section : sections_) {
      if (!first) json.append(",");
      first = false;
      json.append("\"" + report::JsonEscape(section.first) +
                  "\":" + section.second());
    }
  }
  json.append("}}");
  return json;
}

std::string StatsServer::TracezJson() {
  std::string json = "{\"ring_capacity\":" +
                     std::to_string(trace::kRecentCaptureRing) +
                     ",\"captures\":[";
  bool first = true;
  for (const trace::RecentCapture& capture : trace::RecentCaptures()) {
    if (!first) json.append(",");
    first = false;
    json.append("{\"id\":" + std::to_string(capture.id) + ",\"label\":\"" +
                report::JsonEscape(capture.label) + "\",\"captured_nanos\":" +
                std::to_string(capture.captured_nanos) + ",\"spans\":" +
                trace::SpanTreeJson(capture.spans) + "}");
  }
  json.append("]}");
  return json;
}

}  // namespace net
}  // namespace randrecon
