// Dataset: a named table of n records x m numeric attributes. This is the
// object randomization schemes perturb and reconstructors attack.

#ifndef RANDRECON_DATA_DATASET_H_
#define RANDRECON_DATA_DATASET_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"

namespace randrecon {
namespace data {

/// An immutable-shape table: records are rows, attributes are columns.
class Dataset {
 public:
  /// An empty dataset.
  Dataset() = default;

  /// Wraps a record matrix with generated attribute names a0..a{m-1}.
  explicit Dataset(linalg::Matrix records);

  /// Wraps a record matrix with the given attribute names. Fails with
  /// InvalidArgument if the name count doesn't match the column count or
  /// names are duplicated.
  static Result<Dataset> Create(linalg::Matrix records,
                                std::vector<std::string> attribute_names);

  size_t num_records() const { return records_.rows(); }
  size_t num_attributes() const { return records_.cols(); }

  /// The underlying record matrix.
  const linalg::Matrix& records() const { return records_; }
  linalg::Matrix& mutable_records() { return records_; }

  /// Attribute names, one per column.
  const std::vector<std::string>& attribute_names() const { return names_; }

  /// Index of the attribute called `name`, or NotFound.
  Result<size_t> AttributeIndex(const std::string& name) const;

  /// Copies the column for attribute j.
  linalg::Vector Attribute(size_t j) const { return records_.Col(j); }

  /// One record (row) as a vector.
  linalg::Vector Record(size_t i) const { return records_.Row(i); }

 private:
  Dataset(linalg::Matrix records, std::vector<std::string> names)
      : records_(std::move(records)), names_(std::move(names)) {}

  linalg::Matrix records_;
  std::vector<std::string> names_;
};

}  // namespace data
}  // namespace randrecon

#endif  // RANDRECON_DATA_DATASET_H_
