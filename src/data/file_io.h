// Durable-write primitives shared by every store finalization path.
//
// All `.rrcs` / `.rrcm` files reach their final name through the same
// protocol (docs/FORMAT.md §8): the writer streams into
// TempPathFor(final) ("<final>.tmp"), fsyncs the temp file, renames it
// over the final name (::rename — atomic on POSIX within a filesystem),
// and fsyncs the parent directory so the rename itself is durable. At
// every instant the final name either does not exist or holds a
// complete, sealed file; a crash leaves at worst an orphan ".tmp" that
// RecoverShardedStore (data/store_recovery.h) or RemoveShardedStoreFiles
// sweeps. Recovery renames damaged-but-sealed files aside to
// "<name>.quarantined" rather than deleting evidence.

#ifndef RANDRECON_DATA_FILE_IO_H_
#define RANDRECON_DATA_FILE_IO_H_

#include <string>

#include "common/status.h"

namespace randrecon {
namespace data {

/// Suffix of in-flight temp files ("<final>.tmp"). Temp files never sniff
/// as complete stores: column-store temps carry the inverted header hash
/// until sealed, and manifests are serialized whole before the rename.
extern const char kTempFileSuffix[];

/// Suffix recovery renames damaged files to ("<name>.quarantined").
extern const char kQuarantineFileSuffix[];

/// "<final_path>.tmp" — where writers stream before the atomic rename.
std::string TempPathFor(const std::string& final_path);

/// fsync(2) on `path` (opened read-only, which is sufficient to flush its
/// data+metadata on the filesystems this library targets). IoError with
/// errno detail on failure.
Status FsyncFile(const std::string& path);

/// fsync(2) on the directory containing `path`, making a completed
/// rename/unlink in it durable. IoError with errno detail on failure.
Status FsyncParentDirectory(const std::string& path);

/// ::rename(from, to): atomic within a filesystem — `to` transitions
/// from its old state to the complete new file with no in-between
/// observable. Does NOT fsync; callers follow with
/// FsyncParentDirectory(to). IoError with errno detail on failure.
Status AtomicRename(const std::string& from, const std::string& to);

}  // namespace data
}  // namespace randrecon

#endif  // RANDRECON_DATA_FILE_IO_H_
