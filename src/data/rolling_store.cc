#include "data/rolling_store.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <utility>

#include "common/check.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "data/file_io.h"

namespace randrecon {
namespace data {
namespace {

std::string RollingPrefix(const std::string& path) {
  return "rolling store '" + path + "': ";
}

// The rotation/republish/retention seams (common/failpoint.h). The
// shard file's own store.* failpoints (column_store.cc) and the shared
// manifest.* failpoints (shard_store.cc) fire underneath these.
Failpoint fp_roll_seal("roll.seal");        ///< Before sealing the open shard.
Failpoint fp_roll_publish("roll.publish");  ///< Before the manifest republish.
Failpoint fp_roll_retire("roll.retire");    ///< Before each retired unlink.

// Rolling-layer telemetry (common/metrics.h). These live in the data
// layer but carry the ingest.* prefix: they are the rotation half of
// the continuous-ingest accounting tools/check_report.py validates,
// and splitting the namespace would force every report consumer to
// know the layering.
metrics::Counter m_rotations("ingest.rotations");
metrics::Counter m_publishes("ingest.manifest_publishes");
metrics::Counter m_retired("ingest.shards_retired");
metrics::Counter m_snapshots_opened("ingest.snapshots_opened");
metrics::Gauge g_published_shards("ingest.published_shards");
metrics::Gauge g_published_rows("ingest.published_rows");

}  // namespace

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

RollingShardedStoreWriter::RollingShardedStoreWriter(
    std::string manifest_path, std::string directory, std::string stem,
    std::vector<std::string> names, RollingStoreOptions options)
    : manifest_path_(std::move(manifest_path)),
      directory_(std::move(directory)),
      stem_(std::move(stem)),
      names_(std::move(names)),
      options_(options) {}

RollingShardedStoreWriter::RollingShardedStoreWriter(
    RollingShardedStoreWriter&& other) noexcept
    : manifest_path_(std::move(other.manifest_path_)),
      directory_(std::move(other.directory_)),
      stem_(std::move(other.stem_)),
      names_(std::move(other.names_)),
      options_(other.options_),
      entries_(std::move(other.entries_)),
      entry_rows_(std::move(other.entry_rows_)),
      current_(std::move(other.current_)),
      current_rows_(other.current_rows_),
      current_opened_nanos_(other.current_opened_nanos_),
      next_shard_index_(other.next_shard_index_),
      pending_retire_(std::move(other.pending_retire_)),
      rows_written_(other.rows_written_),
      published_rows_(other.published_rows_),
      published_shards_(other.published_shards_),
      publishes_(other.publishes_),
      deferred_error_(std::move(other.deferred_error_)),
      closed_(other.closed_) {
  other.closed_ = true;  // The hollowed-out source must not try to close.
}

Result<RollingShardedStoreWriter> RollingShardedStoreWriter::Create(
    const std::string& manifest_path, std::vector<std::string> column_names,
    RollingStoreOptions options) {
  const std::string prefix = RollingPrefix(manifest_path);
  if (options.shard_rows == 0) {
    return Status::InvalidArgument(prefix + "shard_rows must be >= 1");
  }
  if (options.block_rows == 0) {
    return Status::InvalidArgument(prefix + "block_rows must be >= 1");
  }
  for (const std::string& name : column_names) {
    if (name.empty()) {
      return Status::InvalidArgument(prefix + "column names must be non-empty");
    }
  }
  if (column_names.empty()) {
    return Status::InvalidArgument(prefix + "store needs >= 1 column");
  }
  // Unlike ShardedStoreWriter, no shard is created eagerly: Create
  // leaves NO files behind (an unwritable directory surfaces on the
  // first Append instead), which keeps "a writer that wrote nothing
  // recovers to no store" exact for the crash-torture matrix.
  return RollingShardedStoreWriter(
      manifest_path, ManifestDirectory(manifest_path),
      ShardStemForManifest(manifest_path), std::move(column_names), options);
}

RollingShardedStoreWriter::~RollingShardedStoreWriter() {
  if (!closed_) Close();  // Best-effort; errors surface via explicit Close().
}

Status RollingShardedStoreWriter::StartShard() {
  const std::string relative_path = ShardFileName(stem_, next_shard_index_);
  ColumnStoreOptions store_options;
  store_options.block_rows = options_.block_rows;
  Result<ColumnStoreWriter> created = ColumnStoreWriter::Create(
      directory_ + relative_path, names_, store_options);
  if (!created.ok()) {
    return Status(created.status().code(),
                  RollingPrefix(manifest_path_) + "shard '" + relative_path +
                      "': " + created.status().message());
  }
  current_ = std::make_unique<ColumnStoreWriter>(std::move(created).value());
  current_rows_ = 0;
  current_opened_nanos_ = trace::NowNanos();
  ++next_shard_index_;
  return Status::OK();
}

bool RollingShardedStoreWriter::ShouldRotate() const {
  if (current_ == nullptr || current_rows_ == 0) return false;
  if (current_rows_ >= options_.shard_rows) return true;
  if (options_.shard_bytes > 0 &&
      current_rows_ * names_.size() * sizeof(double) >= options_.shard_bytes) {
    return true;
  }
  if (options_.shard_age_nanos > 0 &&
      trace::NowNanos() - current_opened_nanos_ >= options_.shard_age_nanos) {
    return true;
  }
  return false;
}

Status RollingShardedStoreWriter::SealCurrentShard() {
  // The relative path was fixed when the shard started; its index is
  // next_shard_index_ - 1.
  const std::string relative_path = ShardFileName(stem_, next_shard_index_ - 1);
  const std::string shard_prefix =
      RollingPrefix(manifest_path_) + "shard '" + relative_path + "': ";
  Status sealed = [&]() -> Status {
    RR_FAILPOINT(fp_roll_seal);
    return current_->Close();
  }();
  if (!sealed.ok()) {
    // Sticky: a shard that failed to seal lost data — no later publish
    // may describe this writer's output as complete.
    deferred_error_ = Status(sealed.code(), shard_prefix + sealed.message());
    return deferred_error_;
  }
  // Re-open the sealed file to digest its header + block hashes; this
  // also proves the bytes on disk parse as a valid store.
  Result<ColumnStoreReader> reader =
      ColumnStoreReader::Open(directory_ + relative_path);
  if (!reader.ok()) {
    deferred_error_ = Status(reader.status().code(),
                             shard_prefix + reader.status().message());
    return deferred_error_;
  }
  ShardManifestEntry entry;
  entry.relative_path = relative_path;
  entry.seal_digest = ComputeShardSealDigest(reader.value());
  entries_.push_back(std::move(entry));
  entry_rows_.push_back(current_rows_);
  current_.reset();
  current_rows_ = 0;
  m_rotations.Add(1);
  return Status::OK();
}

size_t RollingShardedStoreWriter::RetireCount() const {
  size_t retire = 0;
  uint64_t remaining_rows = 0;
  for (uint64_t rows : entry_rows_) remaining_rows += rows;
  // Retire oldest-first while a bound says the suffix alone satisfies
  // the policy. At least one shard always survives.
  while (retire + 1 < entries_.size()) {
    const bool too_many_shards = options_.retain_shards > 0 &&
                                 entries_.size() - retire >
                                     options_.retain_shards;
    const bool rows_to_spare =
        options_.retain_rows > 0 &&
        remaining_rows - entry_rows_[retire] >= options_.retain_rows;
    if (!too_many_shards && !rows_to_spare) break;
    remaining_rows -= entry_rows_[retire];
    ++retire;
  }
  return retire;
}

Status RollingShardedStoreWriter::PublishAndRetire() {
  RR_CHECK(!entries_.empty())
      << "RollingShardedStoreWriter: publish with no sealed shards";
  const size_t retire = RetireCount();
  // Build the manifest over the retained suffix, renumbering row spans
  // from 0 (manifest v1 spans must tile [0, num_records)).
  ShardManifest manifest;
  manifest.column_names = names_;
  uint64_t row_begin = 0;
  for (size_t s = retire; s < entries_.size(); ++s) {
    ShardManifestEntry entry = entries_[s];
    entry.row_begin = row_begin;
    entry.row_count = entry_rows_[s];
    row_begin += entry_rows_[s];
    manifest.shards.push_back(std::move(entry));
  }
  manifest.num_records = row_begin;
  Status published = [&]() -> Status {
    RR_FAILPOINT(fp_roll_publish);
    return WriteShardManifest(manifest, manifest_path_);
  }();
  // NOT sticky: the manifest on disk is still the previous good one and
  // every sealed shard is still queued — the next rotation (or Close)
  // simply republishes the longer list.
  RR_RETURN_NOT_OK(published);
  publishes_ += 1;
  published_rows_ = manifest.num_records;
  published_shards_ = manifest.shards.size();
  m_publishes.Add(1);
  g_published_shards.Set(static_cast<int64_t>(published_shards_));
  g_published_rows.Set(static_cast<int64_t>(published_rows_));
  // Retention commits only AFTER the publish that stopped naming the
  // retired shards succeeded: a crash anywhere here leaves an
  // unreferenced sealed file, never a manifest naming a missing one.
  for (size_t s = 0; s < retire; ++s) {
    pending_retire_.push_back(directory_ + entries_[s].relative_path);
  }
  entries_.erase(entries_.begin(),
                 entries_.begin() + static_cast<ptrdiff_t>(retire));
  entry_rows_.erase(entry_rows_.begin(),
                    entry_rows_.begin() + static_cast<ptrdiff_t>(retire));
  // Deletion is transient-retryable: a path that fails to unlink stays
  // queued for the next publish instead of leaking silently.
  std::vector<std::string> still_pending;
  for (const std::string& path : pending_retire_) {
    const Status retired = [&]() -> Status {
      RR_FAILPOINT(fp_roll_retire);
      if (std::remove(path.c_str()) != 0 && errno != ENOENT) {
        return Status::IoError(RollingPrefix(manifest_path_) +
                               "could not remove retired shard '" + path +
                               "'");
      }
      return Status::OK();
    }();
    if (retired.ok()) {
      m_retired.Add(1);
      continue;
    }
    RR_LOG(kWarning) << retired.message() << " — will retry next publish";
    still_pending.push_back(path);
  }
  pending_retire_ = std::move(still_pending);
  return Status::OK();
}

Status RollingShardedStoreWriter::Rotate() {
  if (closed_) {
    return Status::FailedPrecondition(RollingPrefix(manifest_path_) +
                                      "Rotate after Close");
  }
  if (!deferred_error_.ok()) return deferred_error_;
  if (current_ == nullptr || current_rows_ == 0) return Status::OK();
  RR_RETURN_NOT_OK(SealCurrentShard());
  return PublishAndRetire();
}

Status RollingShardedStoreWriter::MaybeRotate() {
  if (closed_) {
    return Status::FailedPrecondition(RollingPrefix(manifest_path_) +
                                      "MaybeRotate after Close");
  }
  if (!deferred_error_.ok()) return deferred_error_;
  if (!ShouldRotate()) return Status::OK();
  return Rotate();
}

Status RollingShardedStoreWriter::Append(const linalg::Matrix& chunk,
                                         size_t num_rows) {
  if (closed_) {
    return Status::FailedPrecondition(RollingPrefix(manifest_path_) +
                                      "Append after Close");
  }
  if (!deferred_error_.ok()) return deferred_error_;
  const size_t m = names_.size();
  if (chunk.cols() != m) {
    return Status::InvalidArgument(
        RollingPrefix(manifest_path_) + "chunk has " +
        std::to_string(chunk.cols()) + " columns, store has " +
        std::to_string(m));
  }
  RR_CHECK(num_rows <= chunk.rows())
      << "RollingShardedStoreWriter::Append: num_rows exceeds chunk";
  size_t consumed = 0;
  while (consumed < num_rows) {
    if (current_ == nullptr) RR_RETURN_NOT_OK(StartShard());
    const size_t take =
        std::min(options_.shard_rows - current_rows_, num_rows - consumed);
    RR_RETURN_NOT_OK(current_->Append(chunk.data() + consumed * m, take));
    current_rows_ += take;
    rows_written_ += take;
    consumed += take;
    if (ShouldRotate()) RR_RETURN_NOT_OK(Rotate());
  }
  return Status::OK();
}

Status RollingShardedStoreWriter::Close() {
  if (closed_) return deferred_error_;
  if (!deferred_error_.ok()) {
    closed_ = true;
    return deferred_error_;
  }
  // An open shard that never took a row would seal into a 0-row store
  // file via ColumnStoreWriter's best-effort destructor — discard it
  // instead (seal, then remove both spellings).
  if (current_ != nullptr && current_rows_ == 0) {
    const std::string path =
        directory_ + ShardFileName(stem_, next_shard_index_ - 1);
    current_.reset();
    std::remove(path.c_str());
    std::remove(TempPathFor(path).c_str());
  }
  // Final rotation covers the open partial shard; if sealed shards are
  // queued from an earlier failed publish, republish them so Close
  // never leaves sealed data unnamed by the manifest.
  Status final_publish = Status::OK();
  if (current_ != nullptr && current_rows_ > 0) {
    final_publish = Rotate();
  } else if (!entries_.empty() && published_shards_ != entries_.size()) {
    final_publish = PublishAndRetire();
  }
  closed_ = true;
  current_.reset();
  return final_publish;
}

// ---------------------------------------------------------------------------
// Snapshot reader.
// ---------------------------------------------------------------------------

Result<RollingStoreSnapshotReader> RollingStoreSnapshotReader::Open(
    const std::string& manifest_path, ColumnStoreReadOptions store_options) {
  RR_ASSIGN_OR_RETURN(ShardedStoreReader reader,
                      ShardedStoreReader::Open(manifest_path, store_options));
  return Pin(std::move(reader), manifest_path);
}

Result<RollingStoreSnapshotReader> RollingStoreSnapshotReader::Pin(
    ShardedStoreReader reader, const std::string& manifest_path) {
  // Pin: open + validate every shard NOW. From here the snapshot can
  // never fail on a shard open — retention may unlink files under us,
  // but the mmaps hold the sealed bytes until this reader dies.
  for (size_t s = 0; s < reader.num_shards(); ++s) {
    Result<ColumnStoreReader*> shard = reader.shard(s);
    if (!shard.ok()) {
      // A shard the manifest names but the pin cannot validate has two
      // causes with opposite semantics: real damage (propagate), or the
      // parse→pin window raced a concurrent writer's republish and
      // retention already removed the shard. Re-reading the manifest
      // tells them apart — a republish changed its trailing hash, and
      // the failure is then transient by protocol (reopening observes
      // the newer snapshot), so it surfaces as the retryable-transient
      // code instead of the shard's own IoError.
      auto current = ReadShardManifest(manifest_path);
      if (current.ok() &&
          current.value().manifest_hash != reader.manifest().manifest_hash) {
        return Status::Unavailable(
            RollingPrefix(manifest_path) +
            "snapshot raced a manifest republish: shard " +
            std::to_string(s) + " ('" +
            reader.manifest().shards[s].relative_path +
            "') was retired before it could be pinned (" +
            shard.status().message() +
            ") — retrying opens the newer snapshot");
      }
      return shard.status();
    }
  }
  m_snapshots_opened.Add(1);
  return RollingStoreSnapshotReader(std::move(reader));
}

}  // namespace data
}  // namespace randrecon
