#include "data/realistic.h"

#include "linalg/vector_ops.h"

namespace randrecon {
namespace data {

Result<Dataset> GenerateLatentFactorTable(const LatentFactorSpec& spec,
                                          size_t num_records,
                                          stats::Rng* rng) {
  const size_t m = spec.loadings.rows();
  const size_t k = spec.loadings.cols();
  if (m == 0 || k == 0) {
    return Status::InvalidArgument("LatentFactorTable: empty loading matrix");
  }
  if (spec.mean.size() != m || spec.idiosyncratic_stddev.size() != m) {
    return Status::InvalidArgument(
        "LatentFactorTable: mean/stddev length != attribute count");
  }
  if (spec.attribute_names.size() != m) {
    return Status::InvalidArgument(
        "LatentFactorTable: name count != attribute count");
  }
  for (double s : spec.idiosyncratic_stddev) {
    if (s < 0.0) {
      return Status::InvalidArgument(
          "LatentFactorTable: negative idiosyncratic stddev");
    }
  }

  linalg::Matrix records(num_records, m);
  for (size_t i = 0; i < num_records; ++i) {
    linalg::Vector factors(k);
    for (size_t f = 0; f < k; ++f) factors[f] = rng->Gaussian();
    double* row = records.row_data(i);
    for (size_t j = 0; j < m; ++j) {
      double value = spec.mean[j];
      for (size_t f = 0; f < k; ++f) value += spec.loadings(j, f) * factors[f];
      value += rng->Gaussian(0.0, spec.idiosyncratic_stddev[j]);
      row[j] = value;
    }
  }
  return Dataset::Create(std::move(records), spec.attribute_names);
}

linalg::Matrix LatentFactorCovariance(const LatentFactorSpec& spec) {
  linalg::Matrix cov = spec.loadings * spec.loadings.Transpose();
  for (size_t j = 0; j < cov.rows(); ++j) {
    cov(j, j) += spec.idiosyncratic_stddev[j] * spec.idiosyncratic_stddev[j];
  }
  return cov;
}

LatentFactorSpec MedicalRecordsSpec() {
  // Three latent factors: age, cardiovascular strain, metabolic load.
  // Loadings are in attribute units (years, kg/m², mmHg, mg/dL, bpm, $).
  LatentFactorSpec spec;
  spec.attribute_names = {"age",          "bmi",         "systolic_bp",
                          "diastolic_bp", "cholesterol", "glucose",
                          "heart_rate",   "annual_cost"};
  spec.mean = {52.0, 27.0, 128.0, 82.0, 195.0, 102.0, 72.0, 4200.0};
  spec.loadings = linalg::Matrix{
      //  age  cardio  metabolic
      {12.0, 0.0, 0.0},     // age
      {1.0, 1.5, 2.5},      // bmi
      {6.0, 9.0, 3.0},      // systolic_bp
      {3.0, 6.5, 2.0},      // diastolic_bp
      {10.0, 14.0, 18.0},   // cholesterol
      {4.0, 3.0, 14.0},     // glucose
      {-2.0, 7.0, 3.0},     // heart_rate
      {900.0, 700.0, 600.0} // annual_cost
  };
  spec.idiosyncratic_stddev = {2.0, 1.2, 4.0, 3.0, 8.0, 5.0, 4.0, 350.0};
  return spec;
}

LatentFactorSpec HouseholdFinanceSpec() {
  // Two latent factors: earning power and financial stress.
  LatentFactorSpec spec;
  spec.attribute_names = {"income",     "rent",        "savings",
                          "debt",       "credit_score", "monthly_spend"};
  spec.mean = {68000.0, 1450.0, 22000.0, 18000.0, 690.0, 3100.0};
  spec.loadings = linalg::Matrix{
      //  earning  stress
      {15000.0, -2000.0},  // income
      {350.0, 80.0},       // rent
      {8000.0, -5000.0},   // savings
      {2500.0, 7000.0},    // debt
      {35.0, -55.0},       // credit_score
      {600.0, 250.0}       // monthly_spend
  };
  spec.idiosyncratic_stddev = {3000.0, 120.0, 2000.0, 1500.0, 12.0, 180.0};
  return spec;
}

}  // namespace data
}  // namespace randrecon
