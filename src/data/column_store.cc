#include "data/column_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/check.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "data/csv.h"
#include "data/file_io.h"
#include "data/shard_store.h"

// The format is little-endian on disk and the reader/writer serialize
// integers and doubles with memcpy, so a little-endian host is required
// (every target this library builds for). A big-endian port would add
// byte swaps at the (de)serialization points below.
static_assert(__BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__,
              "column store I/O assumes a little-endian host");

namespace randrecon {
namespace data {

const char kColumnStoreMagic[8] = {'R', 'R', 'C', 'O', 'L', 'S', 'T', 'R'};

namespace {

// Fixed header offsets (docs/FORMAT.md §2).
constexpr size_t kVersionOffset = 8;
constexpr size_t kHeaderBytesOffset = 12;
constexpr size_t kNumRecordsOffset = 16;
constexpr size_t kNumAttributesOffset = 24;
constexpr size_t kBlockRowsOffset = 32;
constexpr size_t kNamesOffset = 40;
constexpr size_t kHeaderAlignment = 64;

// RRH64 constants (docs/FORMAT.md §4).
constexpr uint64_t kHashP1 = 0x9E3779B185EBCA87ull;
constexpr uint64_t kHashP2 = 0xC2B2AE3D27D4EB4Full;
constexpr uint64_t kHashP3 = 0x165667B19E3779F9ull;

inline uint64_t Rotl64(uint64_t v, int s) { return (v << s) | (v >> (64 - s)); }

void AppendU32(std::string* out, uint32_t value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

void AppendU64(std::string* out, uint64_t value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

void PatchU32(std::string* buffer, size_t offset, uint32_t value) {
  std::memcpy(&(*buffer)[offset], &value, sizeof(value));
}

void PatchU64(std::string* buffer, size_t offset, uint64_t value) {
  std::memcpy(&(*buffer)[offset], &value, sizeof(value));
}

uint32_t LoadU32(const uint8_t* bytes) {
  uint32_t value;
  std::memcpy(&value, bytes, sizeof(value));
  return value;
}

uint64_t LoadU64(const uint8_t* bytes) {
  uint64_t value;
  std::memcpy(&value, bytes, sizeof(value));
  return value;
}

std::string HexU64(uint64_t value) {
  char buffer[19];
  std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

std::string StorePrefix(const std::string& path) {
  return "column store '" + path + "': ";
}

// The IO seams of the single-file store (common/failpoint.h). Shards of
// a sharded store are ordinary column stores, so these fire for shard
// files too; the sharded layer adds its own shard.* / manifest.* points.
Failpoint fp_block_write("store.block_write");  ///< Before a block write.
Failpoint fp_seal("store.seal");        ///< Before the header patch write.
Failpoint fp_fsync("store.fsync");      ///< Before fsync of the temp file.
Failpoint fp_rename("store.rename");    ///< Before the temp -> final rename.
Failpoint fp_read_block("store.read_block");  ///< Before a block verify.

// Hot-path telemetry (common/metrics.h) — same registration idiom as
// the failpoints above: one relaxed atomic add per event, nothing the
// data path branches on.
metrics::Counter m_blocks_written("store.blocks_written");
metrics::Counter m_bytes_written("store.bytes_written");
metrics::Counter m_seals("store.seals");
metrics::Counter m_opens("store.opens");
metrics::Counter m_blocks_verified("store.blocks_verified");
metrics::Counter m_verify_short_circuits("store.verify_short_circuits");
metrics::Counter m_rows_read("store.rows_read");

}  // namespace

uint64_t ColumnStoreHash(const void* data, size_t size) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint64_t acc[4] = {kHashP1 * 1, kHashP1 * 2, kHashP1 * 3, kHashP1 * 4};
  auto mix_stripe = [&acc](const uint8_t* stripe) {
    for (int lane = 0; lane < 4; ++lane) {
      uint64_t word;
      std::memcpy(&word, stripe + 8 * lane, sizeof(word));
      acc[lane] = Rotl64(acc[lane] ^ (word * kHashP2), 27) * kHashP1;
    }
  };
  size_t offset = 0;
  for (; offset + 32 <= size; offset += 32) mix_stripe(bytes + offset);
  if (offset < size) {
    uint8_t tail[32] = {0};  // Short input is zero-padded to one stripe.
    std::memcpy(tail, bytes + offset, size - offset);
    mix_stripe(tail);
  }
  uint64_t h = Rotl64(acc[0], 1) + Rotl64(acc[1], 7) + Rotl64(acc[2], 12) +
               Rotl64(acc[3], 18);
  h ^= static_cast<uint64_t>(size);
  h ^= h >> 29;
  h *= kHashP3;
  h ^= h >> 32;
  return h;
}

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

Result<ColumnStoreWriter> ColumnStoreWriter::Create(
    const std::string& path, std::vector<std::string> column_names,
    ColumnStoreOptions options) {
  if (column_names.empty()) {
    return Status::InvalidArgument(StorePrefix(path) +
                                   "at least one column is required");
  }
  if (options.block_rows == 0) {
    return Status::InvalidArgument(StorePrefix(path) +
                                   "block_rows must be >= 1");
  }
  for (size_t i = 0; i < column_names.size(); ++i) {
    for (size_t j = i + 1; j < column_names.size(); ++j) {
      if (column_names[i] == column_names[j]) {
        return Status::InvalidArgument(StorePrefix(path) +
                                       "duplicate column name '" +
                                       column_names[i] + "'");
      }
    }
  }

  std::string prefix;
  prefix.append(kColumnStoreMagic, sizeof(kColumnStoreMagic));
  AppendU32(&prefix, kColumnStoreVersion);
  AppendU32(&prefix, 0);  // header_bytes, patched below.
  AppendU64(&prefix, 0);  // num_records, patched by Close().
  AppendU64(&prefix, column_names.size());
  AppendU64(&prefix, options.block_rows);
  for (const std::string& name : column_names) {
    if (name.size() > UINT32_MAX) {
      return Status::InvalidArgument(StorePrefix(path) + "column name too long");
    }
    AppendU32(&prefix, static_cast<uint32_t>(name.size()));
    prefix.append(name);
  }
  const size_t unpadded = prefix.size() + sizeof(uint64_t);
  const size_t header_bytes =
      (unpadded + kHeaderAlignment - 1) / kHeaderAlignment * kHeaderAlignment;
  if (header_bytes > UINT32_MAX) {
    return Status::InvalidArgument(StorePrefix(path) +
                                   "column names exceed the 4 GiB header limit");
  }
  PatchU32(&prefix, kHeaderBytesOffset, static_cast<uint32_t>(header_bytes));

  // All bytes stream into the temp file; Close() renames it over `path`
  // (docs/FORMAT.md §8), so the final name never holds a partial store.
  std::ofstream file(TempPathFor(path), std::ios::binary | std::ios::trunc);
  if (!file.is_open()) {
    return Status::IoError(StorePrefix(path) + "cannot open temp file '" +
                           TempPathFor(path) + "' for writing");
  }
  // Deliberately write a MISMATCHED header hash (bitwise NOT of the real
  // one): a file from a writer that crashed before Close() must fail the
  // reader's header-checksum validation instead of passing as a sealed
  // empty store. Close() patches in the real hash (docs/FORMAT.md §2.2).
  const uint64_t unsealed_hash =
      ~ColumnStoreHash(prefix.data(), prefix.size());
  file.write(prefix.data(), static_cast<std::streamsize>(prefix.size()));
  file.write(reinterpret_cast<const char*>(&unsealed_hash),
             sizeof(unsealed_hash));
  const std::string padding(header_bytes - unpadded, '\0');
  file.write(padding.data(), static_cast<std::streamsize>(padding.size()));
  if (!file) {
    return Status::IoError(StorePrefix(path) + "header write failed");
  }
  return ColumnStoreWriter(std::move(file), path, std::move(column_names),
                           options.block_rows, header_bytes, std::move(prefix));
}

ColumnStoreWriter::ColumnStoreWriter(std::ofstream file, std::string path,
                                     std::vector<std::string> names,
                                     size_t block_rows, size_t header_bytes,
                                     std::string header_prefix)
    : file_(std::move(file)),
      path_(std::move(path)),
      temp_path_(TempPathFor(path_)),
      names_(std::move(names)),
      block_rows_(block_rows),
      header_bytes_(header_bytes),
      header_prefix_(std::move(header_prefix)),
      block_(names_.size() * block_rows, 0.0) {}

ColumnStoreWriter::ColumnStoreWriter(ColumnStoreWriter&& other) noexcept
    : file_(std::move(other.file_)),
      path_(std::move(other.path_)),
      temp_path_(std::move(other.temp_path_)),
      names_(std::move(other.names_)),
      block_rows_(other.block_rows_),
      header_bytes_(other.header_bytes_),
      header_prefix_(std::move(other.header_prefix_)),
      block_(std::move(other.block_)),
      rows_in_block_(other.rows_in_block_),
      rows_written_(other.rows_written_),
      deferred_error_(std::move(other.deferred_error_)),
      closed_(other.closed_) {
  other.closed_ = true;  // The hollowed-out source must not try to seal.
}

ColumnStoreWriter& ColumnStoreWriter::operator=(
    ColumnStoreWriter&& other) noexcept {
  if (this == &other) return *this;
  // Seal the store this writer was building before abandoning it: a
  // member-wise move would close the old ofstream without flushing the
  // partial block or patching the header, silently losing the file.
  if (!closed_) Close();  // Best-effort; errors surface via explicit Close().
  file_ = std::move(other.file_);
  path_ = std::move(other.path_);
  temp_path_ = std::move(other.temp_path_);
  names_ = std::move(other.names_);
  block_rows_ = other.block_rows_;
  header_bytes_ = other.header_bytes_;
  header_prefix_ = std::move(other.header_prefix_);
  block_ = std::move(other.block_);
  rows_in_block_ = other.rows_in_block_;
  rows_written_ = other.rows_written_;
  deferred_error_ = std::move(other.deferred_error_);
  closed_ = other.closed_;
  other.closed_ = true;
  return *this;
}

ColumnStoreWriter::~ColumnStoreWriter() {
  if (!closed_) Close();  // Best-effort; errors surface via explicit Close().
}

Status ColumnStoreWriter::Append(const linalg::Matrix& chunk, size_t num_rows) {
  if (chunk.cols() != names_.size()) {
    return Status::InvalidArgument(
        StorePrefix(path_) + "chunk has " + std::to_string(chunk.cols()) +
        " columns, store has " + std::to_string(names_.size()));
  }
  RR_CHECK(num_rows <= chunk.rows())
      << "ColumnStoreWriter::Append: num_rows exceeds chunk";
  return Append(chunk.data(), num_rows);
}

Status ColumnStoreWriter::Append(const double* rows, size_t num_rows) {
  if (closed_) {
    return Status::FailedPrecondition(StorePrefix(path_) +
                                      "Append after Close");
  }
  if (!deferred_error_.ok()) return deferred_error_;
  const size_t m = names_.size();
  size_t consumed = 0;
  while (consumed < num_rows) {
    const size_t take =
        std::min(block_rows_ - rows_in_block_, num_rows - consumed);
    // Row-major rows scatter into block-local columns (FORMAT.md §3).
    for (size_t j = 0; j < m; ++j) {
      double* column = block_.data() + j * block_rows_ + rows_in_block_;
      const double* source = rows + consumed * m + j;
      for (size_t r = 0; r < take; ++r) column[r] = source[r * m];
    }
    rows_in_block_ += take;
    consumed += take;
    if (rows_in_block_ == block_rows_) RR_RETURN_NOT_OK(FlushBlock());
  }
  rows_written_ += num_rows;
  return Status::OK();
}

Status ColumnStoreWriter::FlushBlock() {
  if (rows_in_block_ == 0) return Status::OK();
  if (rows_in_block_ < block_rows_) {
    // Final partial block: each column's tail rows still hold the
    // previous block's data and must go out as zeros (FORMAT.md §3).
    // Full blocks are overwritten whole, so only this flush pays.
    for (size_t j = 0; j < names_.size(); ++j) {
      double* column = block_.data() + j * block_rows_;
      std::fill(column + rows_in_block_, column + block_rows_, 0.0);
    }
  }
  const size_t payload_bytes = block_.size() * sizeof(double);
  const uint64_t block_hash = ColumnStoreHash(block_.data(), payload_bytes);
  Status status = [&]() -> Status {
    RR_FAILPOINT(fp_block_write);
    file_.write(reinterpret_cast<const char*>(block_.data()),
                static_cast<std::streamsize>(payload_bytes));
    file_.write(reinterpret_cast<const char*>(&block_hash),
                sizeof(block_hash));
    if (!file_) {
      return Status::IoError(StorePrefix(path_) + "block write failed after " +
                             std::to_string(rows_written_) + " records");
    }
    return Status::OK();
  }();
  if (!status.ok()) {
    deferred_error_ = status;  // A lost block must never seal.
    return status;
  }
  m_blocks_written.Add(1);
  m_bytes_written.Add(payload_bytes + sizeof(block_hash));
  rows_in_block_ = 0;
  return Status::OK();
}

Status ColumnStoreWriter::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  const Status sealed = Seal();
  if (!sealed.ok()) {
    // The store never reached its final name; don't leave the temp file
    // masquerading as work in progress (best-effort — a crash-grade
    // failure leaves it for RecoverShardedStore's orphan sweep).
    if (file_.is_open()) file_.close();
    std::remove(temp_path_.c_str());
  }
  return sealed;
}

Status ColumnStoreWriter::Seal() {
  if (!deferred_error_.ok()) return deferred_error_;
  if (!file_.is_open()) {
    return Status::IoError(StorePrefix(path_) + "file is not open");
  }
  RR_RETURN_NOT_OK(FlushBlock());
  RR_FAILPOINT(fp_seal);
  // Patch the record count and re-seal the header (docs/FORMAT.md §2).
  PatchU64(&header_prefix_, kNumRecordsOffset, rows_written_);
  const uint64_t header_hash =
      ColumnStoreHash(header_prefix_.data(), header_prefix_.size());
  file_.seekp(0);
  file_.write(header_prefix_.data(),
              static_cast<std::streamsize>(header_prefix_.size()));
  file_.write(reinterpret_cast<const char*>(&header_hash), sizeof(header_hash));
  file_.close();
  if (file_.fail()) {
    return Status::IoError(StorePrefix(path_) + "closing write failed");
  }
  // Durable finalization (docs/FORMAT.md §8): the sealed bytes reach the
  // platters before the rename publishes them, and the rename reaches
  // the directory before anyone trusts the final name.
  RR_FAILPOINT(fp_fsync);
  RR_RETURN_NOT_OK(FsyncFile(temp_path_));
  RR_FAILPOINT(fp_rename);
  RR_RETURN_NOT_OK(AtomicRename(temp_path_, path_));
  RR_RETURN_NOT_OK(FsyncParentDirectory(path_));
  m_seals.Add(1);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Reader.
// ---------------------------------------------------------------------------

Result<ColumnStoreReader> ColumnStoreReader::Open(const std::string& path,
                                                  ColumnStoreReadOptions options) {
  const std::string prefix = StorePrefix(path);
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError(prefix + "cannot open: " + std::strerror(errno));
  }
  struct stat file_stat;
  if (::fstat(fd, &file_stat) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(fd);
    return Status::IoError(prefix + "cannot stat: " + detail);
  }
  const size_t file_size = static_cast<size_t>(file_stat.st_size);
  if (file_size < kHeaderAlignment) {
    ::close(fd);
    return Status::InvalidArgument(
        prefix + "file is " + std::to_string(file_size) +
        " bytes, smaller than the minimum " +
        std::to_string(kHeaderAlignment) + "-byte header");
  }
  void* raw_mapping = ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd, 0);
  if (raw_mapping == MAP_FAILED) {
    const std::string detail = std::strerror(errno);
    ::close(fd);
    return Status::IoError(prefix + "mmap failed: " + detail);
  }

  ColumnStoreReader reader;
  reader.path_ = path;
  reader.fd_ = fd;
  reader.mapping_ = static_cast<const uint8_t*>(raw_mapping);
  reader.file_size_ = file_size;
  reader.options_ = options;
  const uint8_t* bytes = reader.mapping_;

  // From here every failure path destroys `reader`, which unmaps/closes.
  if (std::memcmp(bytes, kColumnStoreMagic, sizeof(kColumnStoreMagic)) != 0) {
    return Status::InvalidArgument(
        prefix + "bad magic at offset 0 — not a column-store file");
  }
  const uint32_t version = LoadU32(bytes + kVersionOffset);
  if (version == 0 || version > kColumnStoreVersion) {
    return Status::InvalidArgument(
        prefix + "unsupported format version " + std::to_string(version) +
        " (this build reads versions 1.." +
        std::to_string(kColumnStoreVersion) + ")");
  }
  reader.header_bytes_ = LoadU32(bytes + kHeaderBytesOffset);
  reader.num_records_ = LoadU64(bytes + kNumRecordsOffset);
  const uint64_t num_attributes = LoadU64(bytes + kNumAttributesOffset);
  reader.block_rows_ = LoadU64(bytes + kBlockRowsOffset);
  if (num_attributes == 0 || reader.block_rows_ == 0) {
    return Status::InvalidArgument(
        prefix + "header declares num_attributes " +
        std::to_string(num_attributes) + ", block_rows " +
        std::to_string(reader.block_rows_) + " (both must be >= 1)");
  }
  if (reader.header_bytes_ < kNamesOffset + sizeof(uint64_t) ||
      reader.header_bytes_ > file_size) {
    return Status::InvalidArgument(
        prefix + "header_bytes " + std::to_string(reader.header_bytes_) +
        " outside the valid range [" +
        std::to_string(kNamesOffset + sizeof(uint64_t)) + ", " +
        std::to_string(file_size) + "]");
  }

  // Column names: u32 length + bytes each, all inside the header region
  // and leaving room for the trailing header checksum. Bound the count
  // BEFORE reserving: num_attributes is still unverified here (the
  // header hash sits after the names), and a corrupt count must fail as
  // a Status, not as a length_error/bad_alloc from reserve().
  if (num_attributes > (reader.header_bytes_ - kNamesOffset) / sizeof(uint32_t)) {
    return Status::InvalidArgument(
        prefix + "header declares " + std::to_string(num_attributes) +
        " columns, more than its " + std::to_string(reader.header_bytes_) +
        "-byte header could possibly name");
  }
  size_t offset = kNamesOffset;
  reader.names_.reserve(num_attributes);
  for (uint64_t j = 0; j < num_attributes; ++j) {
    if (offset + sizeof(uint32_t) + sizeof(uint64_t) > reader.header_bytes_) {
      return Status::InvalidArgument(
          prefix + "column name " + std::to_string(j) +
          " overruns the header at offset " + std::to_string(offset));
    }
    const uint32_t length = LoadU32(bytes + offset);
    offset += sizeof(uint32_t);
    if (offset + length + sizeof(uint64_t) > reader.header_bytes_) {
      return Status::InvalidArgument(
          prefix + "column name " + std::to_string(j) + " (length " +
          std::to_string(length) + ") overruns the header at offset " +
          std::to_string(offset));
    }
    reader.names_.emplace_back(reinterpret_cast<const char*>(bytes + offset),
                               length);
    offset += length;
  }
  const uint64_t stored_header_hash = LoadU64(bytes + offset);
  const uint64_t computed_header_hash = ColumnStoreHash(bytes, offset);
  if (stored_header_hash != computed_header_hash) {
    return Status::InvalidArgument(
        prefix + "header checksum mismatch over bytes [0, " +
        std::to_string(offset) + ") — stored " + HexU64(stored_header_hash) +
        ", computed " + HexU64(computed_header_hash));
  }
  reader.header_hash_ = stored_header_hash;

  // Geometry, overflow-checked: a hostile header must fail cleanly.
  uint64_t payload_values = 0;
  uint64_t payload_bytes = 0;
  if (__builtin_mul_overflow(num_attributes, reader.block_rows_,
                             &payload_values) ||
      __builtin_mul_overflow(payload_values, sizeof(double), &payload_bytes)) {
    return Status::InvalidArgument(
        prefix + "block geometry overflows (" +
        std::to_string(num_attributes) + " columns x " +
        std::to_string(reader.block_rows_) + " rows)");
  }
  reader.block_stride_ = payload_bytes + sizeof(uint64_t);
  // Ceil-div spelled without `num_records + block_rows - 1`, which wraps
  // for a hostile num_records near UINT64_MAX: a wrapped num_blocks_ of 0
  // would let a resealed header-only file pass the size cross-check below
  // and send ReadRows past the mapping. This form cannot overflow, so the
  // lie is caught as a size disagreement like any other.
  reader.num_blocks_ = reader.num_records_ / reader.block_rows_ +
                       (reader.num_records_ % reader.block_rows_ != 0 ? 1 : 0);
  uint64_t blocks_bytes = 0;
  uint64_t expected_size = 0;
  if (__builtin_mul_overflow(reader.num_blocks_, reader.block_stride_,
                             &blocks_bytes) ||
      __builtin_add_overflow(blocks_bytes, reader.header_bytes_,
                             &expected_size) ||
      expected_size != file_size) {
    return Status::InvalidArgument(
        prefix + "header declares " + std::to_string(reader.num_records_) +
        " records in " + std::to_string(reader.num_blocks_) + " blocks of " +
        std::to_string(reader.block_rows_) + " rows = " +
        std::to_string(expected_size) + " bytes, but the file is " +
        std::to_string(file_size) +
        " bytes — truncated file or record-count disagreement");
  }
  reader.block_verified_.assign(reader.num_blocks_, 0);
  if (options.eager_verify) {
    // Archival mode: verify the whole data section up front (block-
    // parallel; per-block work is disjoint) so later reads serve from an
    // already-proven mapping and a corrupt tail fails at Open, not
    // mid-stream.
    RR_RETURN_NOT_OK(reader.VerifyBlocksInRange(0, reader.num_blocks_));
  }
  m_opens.Add(1);
  return reader;
}

ColumnStoreReader::ColumnStoreReader(ColumnStoreReader&& other) noexcept {
  *this = std::move(other);
}

ColumnStoreReader& ColumnStoreReader::operator=(
    ColumnStoreReader&& other) noexcept {
  if (this == &other) return *this;
  ReleaseMapping();
  path_ = std::move(other.path_);
  fd_ = other.fd_;
  mapping_ = other.mapping_;
  file_size_ = other.file_size_;
  header_bytes_ = other.header_bytes_;
  num_records_ = other.num_records_;
  block_rows_ = other.block_rows_;
  num_blocks_ = other.num_blocks_;
  block_stride_ = other.block_stride_;
  header_hash_ = other.header_hash_;
  options_ = other.options_;
  names_ = std::move(other.names_);
  block_verified_ = std::move(other.block_verified_);
  other.fd_ = -1;
  other.mapping_ = nullptr;
  return *this;
}

ColumnStoreReader::~ColumnStoreReader() { ReleaseMapping(); }

void ColumnStoreReader::ReleaseMapping() {
  if (mapping_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(mapping_), file_size_);
    mapping_ = nullptr;
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

size_t ColumnStoreReader::rows_in_block(size_t block) const {
  RR_CHECK(block < num_blocks_) << "rows_in_block: block out of range";
  const size_t begin = block * block_rows_;
  return std::min(block_rows_, num_records_ - begin);
}

Status ColumnStoreReader::VerifyBlock(size_t block) {
  if (block_verified_[block]) {
    m_verify_short_circuits.Add(1);
    return Status::OK();
  }
  RR_FAILPOINT(fp_read_block);
  const uint8_t* payload = block_payload(block);
  const size_t payload_bytes = block_stride_ - sizeof(uint64_t);
  const uint64_t stored = LoadU64(payload + payload_bytes);
  const uint64_t computed = ColumnStoreHash(payload, payload_bytes);
  if (stored != computed) {
    return Status::InvalidArgument(
        StorePrefix(path_) + "block " + std::to_string(block) +
        " checksum mismatch at offset " +
        std::to_string(header_bytes_ + block * block_stride_) + " — stored " +
        HexU64(stored) + ", computed " + HexU64(computed) +
        " (see docs/FORMAT.md)");
  }
  block_verified_[block] = 1;
  m_blocks_verified.Add(1);
  return Status::OK();
}

Status ColumnStoreReader::VerifyBlocksInRange(size_t block_begin,
                                              size_t block_end) {
  if (block_begin >= block_end) return Status::OK();
  // Hot-path short circuit: chunked streaming re-reads ranges whose
  // blocks were all verified on an earlier pass — skip the status
  // vector and the pool dispatch entirely then (a byte scan is ~free
  // next to the gather that follows).
  bool all_verified = true;
  for (size_t block = block_begin; block < block_end && all_verified;
       ++block) {
    all_verified = block_verified_[block] != 0;
  }
  if (all_verified) {
    m_verify_short_circuits.Add(block_end - block_begin);
    return Status::OK();
  }
  // Each task verifies a distinct block and writes only its own bitmap
  // byte and status slot, so the pass is thread-safe and the surviving
  // diagnostic (lowest failing block) is thread-count independent.
  std::vector<Status> statuses(block_end - block_begin);
  ParallelFor(
      block_begin, block_end,
      [&](size_t begin, size_t end) {
        for (size_t block = begin; block < end; ++block) {
          statuses[block - block_begin] = VerifyBlock(block);
        }
      },
      options_.parallel);
  for (Status& status : statuses) {
    if (!status.ok()) return std::move(status);
  }
  return Status::OK();
}

Status ColumnStoreReader::ReadRows(size_t row_begin, size_t num_rows,
                                   linalg::Matrix* buffer) {
  RR_CHECK_EQ(buffer->cols(), names_.size())
      << "ColumnStoreReader: buffer width mismatch";
  RR_CHECK(num_rows <= buffer->rows())
      << "ColumnStoreReader: num_rows exceeds buffer";
  return ReadRowsInto(row_begin, num_rows, buffer->data());
}

Status ColumnStoreReader::ReadRowsInto(size_t row_begin, size_t num_rows,
                                       double* rows) {
  const size_t m = names_.size();
  if (row_begin + num_rows > num_records_ || row_begin + num_rows < row_begin) {
    return Status::InvalidArgument(
        StorePrefix(path_) + "row range [" + std::to_string(row_begin) + ", " +
        std::to_string(row_begin + num_rows) + ") exceeds the " +
        std::to_string(num_records_) + "-record store");
  }
  if (num_rows == 0) return Status::OK();
  const size_t block_begin = row_begin / block_rows_;
  const size_t block_end = (row_begin + num_rows - 1) / block_rows_ + 1;
  // Verify first (the parallel sweep collects the lowest failing block),
  // then gather. A multi-block read gathers block-parallel: every block's
  // rows land in a disjoint slice of the caller's buffer and each copy is
  // value-preserving, so the filled bytes are identical for any thread
  // count (determinism contract 1's "self-contained index" case).
  RR_RETURN_NOT_OK(VerifyBlocksInRange(block_begin, block_end));
  ParallelFor(
      block_begin, block_end,
      [&](size_t begin, size_t end) {
        for (size_t block = begin; block < end; ++block) {
          const size_t first_row = std::max(row_begin, block * block_rows_);
          const size_t local = first_row - block * block_rows_;
          const size_t take = std::min((block + 1) * block_rows_,
                                       row_begin + num_rows) -
                              first_row;
          const size_t out_row = first_row - row_begin;
          const double* payload =
              reinterpret_cast<const double*>(block_payload(block));
          // Mapped block-local columns gather into the caller's row-major
          // rows: contiguous reads, m-strided writes.
          for (size_t j = 0; j < m; ++j) {
            const double* column = payload + j * block_rows_ + local;
            double* destination = rows + out_row * m + j;
            for (size_t r = 0; r < take; ++r) destination[r * m] = column[r];
          }
        }
      },
      options_.parallel);
  m_rows_read.Add(num_rows);
  return Status::OK();
}

uint64_t ColumnStoreReader::stored_block_hash(size_t block) const {
  RR_CHECK(block < num_blocks_) << "stored_block_hash: block out of range";
  return LoadU64(block_payload(block) + block_stride_ - sizeof(uint64_t));
}

Result<const double*> ColumnStoreReader::BlockColumn(size_t block,
                                                     size_t column) {
  RR_CHECK(block < num_blocks_ && column < names_.size())
      << "BlockColumn: index out of range";
  RR_RETURN_NOT_OK(VerifyBlock(block));
  return reinterpret_cast<const double*>(block_payload(block)) +
         column * block_rows_;
}

// ---------------------------------------------------------------------------
// Dataset convenience + format detection.
// ---------------------------------------------------------------------------

Status WriteColumnStore(const Dataset& dataset, const std::string& path,
                        ColumnStoreOptions options) {
  RR_ASSIGN_OR_RETURN(
      ColumnStoreWriter writer,
      ColumnStoreWriter::Create(path, dataset.attribute_names(), options));
  RR_RETURN_NOT_OK(writer.Append(dataset.records(), dataset.num_records()));
  return writer.Close();
}

Result<Dataset> ReadColumnStoreDataset(const std::string& path) {
  RR_ASSIGN_OR_RETURN(ColumnStoreReader reader, ColumnStoreReader::Open(path));
  linalg::Matrix records(reader.num_records(), reader.num_attributes());
  RR_RETURN_NOT_OK(reader.ReadRows(0, reader.num_records(), &records));
  return Dataset::Create(std::move(records), reader.attribute_names());
}

Result<RecordFileFormat> DetectRecordFileFormat(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file.is_open()) {
    return Status::IoError("cannot open '" + path + "'");
  }
  char magic[sizeof(kColumnStoreMagic)];
  file.read(magic, sizeof(magic));
  if (file.gcount() == sizeof(magic)) {
    if (std::memcmp(magic, kColumnStoreMagic, sizeof(magic)) == 0) {
      return RecordFileFormat::kColumnStore;
    }
    if (std::memcmp(magic, kShardManifestMagic, sizeof(magic)) == 0) {
      return RecordFileFormat::kShardManifest;
    }
  }
  return RecordFileFormat::kCsv;  // CSV has no magic; it is the fallback.
}

Result<Dataset> ReadRecords(const std::string& path) {
  RR_ASSIGN_OR_RETURN(const RecordFileFormat format,
                      DetectRecordFileFormat(path));
  switch (format) {
    case RecordFileFormat::kColumnStore:
      return ReadColumnStoreDataset(path);
    case RecordFileFormat::kShardManifest:
      return ReadShardedStoreDataset(path);
    case RecordFileFormat::kCsv:
      break;
  }
  return ReadCsv(path);
}

}  // namespace data
}  // namespace randrecon
