// Rolling sharded stores: reader-while-writer over the sharded store
// format, with no locks shared across processes.
//
// ShardedStoreWriter (data/shard_store.h) publishes its manifest once,
// on Close() — correct for batch conversions, useless for continuous
// ingest, where readers must attack a growing corpus while the writer
// keeps appending. RollingShardedStoreWriter closes that gap using only
// the crash-safety primitives the format already has:
//
//   * Rows stream into one open shard at a time. An open shard is
//     ALWAYS a ".tmp" file with an intentionally mismatched header
//     checksum (data/column_store.h), so no reader — and no recovery
//     pass — can mistake it for data.
//   * When the open shard hits a rotation trigger (`shard_rows` rows,
//     `shard_bytes` payload bytes, or `shard_age_nanos` of wall age),
//     it is sealed (flush + header patch + fsync + atomic rename),
//     digested, appended to the published entry list, and a NEW
//     manifest over every retained shard is republished through the
//     same write-temp → fsync → atomic-rename path every ".rrcm"
//     already uses (docs/FORMAT.md §7–8).
//   * Because shards seal BEFORE the manifest that names them, and the
//     manifest flips atomically, ANY manifest a concurrent process
//     observes describes only fully-sealed, digest-bound shards. That
//     is the whole reader-while-writer protocol: the filesystem is the
//     only shared state.
//
// Retention: `retain_shards` / `retain_rows` bound the published
// window. Retired entries leave the manifest first (republish), and
// only then are their files deleted — a crash in between leaves an
// unreferenced sealed file, never a manifest naming a missing one.
// Retention renumbers row spans from 0 (manifest v1 spans must tile
// [0, num_records)), so a record's logical row index is a per-snapshot
// coordinate, not a stable global id; rows_written() keeps the
// monotonic total.
//
// RollingStoreSnapshotReader opens the latest published manifest and
// PINS every shard it names (opens + validates + mmaps them all up
// front). A pinned snapshot stays bitwise-readable for its whole
// lifetime even after retention unlinks a shard file: sealed shards are
// never rewritten in place, and POSIX keeps an unlinked mapping alive
// until the last reader drops it.
//
// Crash recovery is data/store_recovery.h, unchanged: any crash leaves
// either the last published manifest (kept untouched — every shard it
// names sealed before it was written) or, if no manifest was ever
// published, orphan temps that sweep to an empty store. The fork-based
// torture matrix in tests/data/rolling_store_test.cc kills the writer
// at every rotation failpoint × hit to prove it.

#ifndef RANDRECON_DATA_ROLLING_STORE_H_
#define RANDRECON_DATA_ROLLING_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/column_store.h"
#include "data/shard_store.h"
#include "linalg/matrix.h"

namespace randrecon {
namespace data {

/// Rotation + retention knobs.
struct RollingStoreOptions {
  /// Rotate once the open shard holds this many rows (>= 1).
  size_t shard_rows = 1u << 16;
  /// Rotate once the open shard's payload reaches this many bytes
  /// (rows x columns x 8; 0 = no byte trigger).
  size_t shard_bytes = 0;
  /// Rotate once the open shard has been open this long, measured on
  /// trace::NowNanos() so tests pin it with a FakeClockGuard (0 = no
  /// age trigger). Age only triggers on an Append or MaybeRotate call —
  /// an idle writer rotates on its owner's next poll.
  uint64_t shard_age_nanos = 0;
  /// Keep at most this many newest published shards (0 = unlimited).
  size_t retain_shards = 0;
  /// Keep the newest published shards covering at least this many rows:
  /// the oldest shard is retired only while the shards after it still
  /// hold >= retain_rows rows (0 = unlimited).
  uint64_t retain_rows = 0;
  /// Rows per block inside each shard (data::ColumnStoreOptions).
  size_t block_rows = kDefaultColumnStoreBlockRows;
};

/// Streams rows into rotating shards, republishing the manifest after
/// every rotation so concurrent snapshot readers always have a sealed,
/// consistent prefix to open. Single-threaded like every writer in the
/// data layer — the concurrent edge lives in pipeline/ingest.h, which
/// feeds one writer from a bounded queue.
class RollingShardedStoreWriter {
 public:
  /// InvalidArgument on shard_rows == 0, block_rows == 0 or bad column
  /// names. Touches NO files: the first shard is created on the first
  /// Append (an unwritable directory surfaces there), and the first
  /// manifest appears after the first rotation (or Close).
  static Result<RollingShardedStoreWriter> Create(
      const std::string& manifest_path, std::vector<std::string> column_names,
      RollingStoreOptions options = {});

  RollingShardedStoreWriter(RollingShardedStoreWriter&& other) noexcept;
  RollingShardedStoreWriter& operator=(RollingShardedStoreWriter&&) = delete;
  RollingShardedStoreWriter(const RollingShardedStoreWriter&) = delete;
  RollingShardedStoreWriter& operator=(const RollingShardedStoreWriter&) =
      delete;
  ~RollingShardedStoreWriter();

  /// Appends the leading `num_rows` rows of row-major `chunk`, rotating
  /// (and republishing) whenever a trigger fires mid-append.
  Status Append(const linalg::Matrix& chunk, size_t num_rows);

  /// Applies the rotation triggers now — how an owner with no rows to
  /// append honors `shard_age_nanos`. No-op when nothing triggers.
  Status MaybeRotate();

  /// Seals the open shard and republishes unconditionally (no-op when
  /// the open shard is empty). A publish failure is NOT sticky: the
  /// sealed shard stays queued and the next rotation or Close retries
  /// the republish — the manifest on disk is the previous good one
  /// throughout.
  Status Rotate();

  /// Final rotation + republish, then closes. Idempotent. A store that
  /// never received a row closes without writing any file.
  Status Close();

  /// Rows appended over the writer's whole life (monotonic — retention
  /// does not subtract).
  uint64_t rows_written() const { return rows_written_; }

  /// Rows / shards in the last successfully published manifest.
  uint64_t published_rows() const { return published_rows_; }
  size_t published_shards() const { return published_shards_; }

  /// Successful manifest publishes so far.
  uint64_t publishes() const { return publishes_; }

  const std::string& manifest_path() const { return manifest_path_; }

  /// Immutable after Create — safe from any thread.
  size_t num_attributes() const { return names_.size(); }

 private:
  RollingShardedStoreWriter(std::string manifest_path, std::string directory,
                            std::string stem, std::vector<std::string> names,
                            RollingStoreOptions options);

  /// Creates the next shard file as the open target.
  Status StartShard();

  /// True when a rotation trigger currently holds for the open shard.
  bool ShouldRotate() const;

  /// Seals + digests the open shard into entries_ (rotation step 1).
  Status SealCurrentShard();

  /// Splits entries_ into (retired prefix, retained suffix) per the
  /// retention policy. Pure planning — nothing touches disk here.
  size_t RetireCount() const;

  /// Republishes the manifest over the retained suffix, then commits
  /// retention (drops retired entries, queues their files for
  /// deletion) and best-effort deletes everything queued.
  Status PublishAndRetire();

  std::string manifest_path_;
  std::string directory_;  ///< Includes the trailing '/', or "".
  std::string stem_;
  std::vector<std::string> names_;
  RollingStoreOptions options_;
  /// Sealed, digested shards awaiting or surviving publish. Entry
  /// row_begin values are recomputed at each publish.
  std::vector<ShardManifestEntry> entries_;
  /// Row counts per entries_ slot (row_begin renumbering source).
  std::vector<uint64_t> entry_rows_;
  /// The open shard (null between a rotation and the next Append).
  std::unique_ptr<ColumnStoreWriter> current_;
  size_t current_rows_ = 0;
  uint64_t current_opened_nanos_ = 0;
  /// Monotonic file-name index: retention never reuses a shard name.
  size_t next_shard_index_ = 0;
  /// Files retired from the manifest whose deletion has not succeeded
  /// yet — retried after every publish, so a failed unlink is
  /// transient, not leaked.
  std::vector<std::string> pending_retire_;
  uint64_t rows_written_ = 0;
  uint64_t published_rows_ = 0;
  size_t published_shards_ = 0;
  uint64_t publishes_ = 0;
  /// First seal failure, sticky (a shard that failed to seal is
  /// unrecoverable damage — publish failures are NOT recorded here).
  Status deferred_error_;
  bool closed_ = false;
};

/// A pinned, immutable view of the latest published manifest: every
/// named shard is opened and validated against its manifest digest up
/// front, so the snapshot keeps serving bitwise-exact rows for its
/// whole lifetime regardless of concurrent rotations and retention
/// (sealed shards are never modified, only unlinked — and the pin's
/// mmap outlives the unlink). Move-only, single-threaded; concurrent
/// consumers each Open their own snapshot.
class RollingStoreSnapshotReader {
 public:
  /// Fails like ShardedStoreReader::Open, or with the first shard that
  /// does not validate — a snapshot is all-or-nothing. One failure is
  /// special-cased: when a shard named by the parsed manifest fails to
  /// pin because a concurrent writer republished (and retention removed
  /// the shard) between the manifest parse and the pin, the error is a
  /// retryable Status::Unavailable naming the shard — reopening simply
  /// observes the newer snapshot. The distinction is made by re-reading
  /// the manifest and comparing manifest_hash: an UNCHANGED manifest
  /// naming an unopenable shard is real damage and propagates verbatim.
  static Result<RollingStoreSnapshotReader> Open(
      const std::string& manifest_path,
      ColumnStoreReadOptions store_options = {});

  /// The pin half of Open over an already-parsed reader, exposed so the
  /// parse→pin race window can be exercised deterministically (the
  /// regression test mutates the store between the two halves).
  /// `manifest_path` is re-read on a pin failure to classify it (see
  /// Open).
  static Result<RollingStoreSnapshotReader> Pin(
      ShardedStoreReader reader, const std::string& manifest_path);

  RollingStoreSnapshotReader(RollingStoreSnapshotReader&&) = default;
  RollingStoreSnapshotReader& operator=(RollingStoreSnapshotReader&&) =
      default;
  RollingStoreSnapshotReader(const RollingStoreSnapshotReader&) = delete;
  RollingStoreSnapshotReader& operator=(const RollingStoreSnapshotReader&) =
      delete;

  size_t num_records() const { return reader_.num_records(); }
  size_t num_attributes() const { return reader_.num_attributes(); }
  size_t num_shards() const { return reader_.num_shards(); }
  const std::vector<std::string>& attribute_names() const {
    return reader_.attribute_names();
  }
  const ShardManifest& manifest() const { return reader_.manifest(); }

  /// Fills the leading rows of `buffer` with snapshot records
  /// [row_begin, row_begin + num_rows) — row indices are snapshot-local
  /// (see the retention renumbering note above).
  Status ReadRows(size_t row_begin, size_t num_rows, linalg::Matrix* buffer) {
    return reader_.ReadRows(row_begin, num_rows, buffer);
  }

  /// The pinned underlying reader — for consumers (the pipeline's
  /// snapshot record source) that iterate shard blocks zero-copy.
  /// Every shard is already open and validated; shard(s) cannot fail
  /// on an open.
  ShardedStoreReader& store_reader() { return reader_; }

 private:
  explicit RollingStoreSnapshotReader(ShardedStoreReader reader)
      : reader_(std::move(reader)) {}

  ShardedStoreReader reader_;
};

}  // namespace data
}  // namespace randrecon

#endif  // RANDRECON_DATA_ROLLING_STORE_H_
