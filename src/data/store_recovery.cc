#include "data/store_recovery.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <set>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "data/file_io.h"
#include "data/shard_store.h"

namespace randrecon {
namespace data {
namespace {

// Recovery telemetry (common/metrics.h): every sweep/quarantine decision
// leaves a countable trace, so a degraded sweep's report can account for
// what recovery touched without re-parsing its log lines.
metrics::Counter m_recovery_runs("recovery.runs");
metrics::Counter m_recovery_orphans_removed("recovery.orphans_removed");
metrics::Counter m_recovery_shards_quarantined("recovery.shards_quarantined");
metrics::Counter m_recovery_manifests_rebuilt("recovery.manifests_rebuilt");
metrics::Counter m_recovery_stores_empty("recovery.stores_empty");

std::string RecoveryPrefix(const std::string& manifest_path) {
  return "recover sharded store '" + manifest_path + "': ";
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

/// Removes `path` if it exists, recording it in the report. IoError on
/// any failure other than the file already being gone.
Status RemoveIfPresent(const std::string& path, const std::string& prefix,
                       StoreRecoveryReport* report) {
  if (std::remove(path.c_str()) == 0) {
    report->removed_files.push_back(path);
    m_recovery_orphans_removed.Add(1);
    return Status::OK();
  }
  if (errno == ENOENT) return Status::OK();
  return Status::IoError(prefix + "cannot remove '" + path +
                         "': " + std::strerror(errno));
}

/// Renames `path` aside to "<path>.quarantined" (overwriting any earlier
/// quarantine of the same shard) and records the destination.
Status Quarantine(const std::string& path, const std::string& prefix,
                  StoreRecoveryReport* report) {
  const std::string destination = path + kQuarantineFileSuffix;
  if (std::rename(path.c_str(), destination.c_str()) != 0) {
    return Status::IoError(prefix + "cannot quarantine '" + path +
                           "': " + std::strerror(errno));
  }
  report->quarantined_files.push_back(destination);
  m_recovery_shards_quarantined.Add(1);
  RR_LOG(kWarning) << "recovery quarantined '" << path << "' -> '"
                   << destination << "'";
  return Status::OK();
}

/// True iff every shard the manifest names verifies bitwise against it:
/// the file opens with every block checksum passing, and its schema, row
/// count and seal digest match the manifest's record of it.
bool ManifestStoreIsValid(const ShardManifest& manifest,
                          const std::string& directory,
                          const ColumnStoreReadOptions& probe_options) {
  for (const ShardManifestEntry& entry : manifest.shards) {
    Result<ColumnStoreReader> probe =
        ColumnStoreReader::Open(directory + entry.relative_path, probe_options);
    if (!probe.ok()) return false;
    const ColumnStoreReader& reader = probe.value();
    if (reader.attribute_names() != manifest.column_names) return false;
    if (reader.num_records() != entry.row_count) return false;
    if (ComputeShardSealDigest(reader) != entry.seal_digest) return false;
  }
  return true;
}

}  // namespace

Result<StoreRecoveryReport> RecoverShardedStore(
    const std::string& manifest_path, StoreRecoveryOptions options) {
  trace::TraceSpan recovery_span("recovery.run");
  m_recovery_runs.Add(1);
  const std::string prefix = RecoveryPrefix(manifest_path);
  const std::string directory = ManifestDirectory(manifest_path);
  const std::string stem = ShardStemForManifest(manifest_path);
  ColumnStoreReadOptions probe_options = options.store_options;
  probe_options.eager_verify = true;

  StoreRecoveryReport report;

  // Enumerate the shard index space: an index is occupied if any
  // spelling of its file (sealed, temp, quarantined) exists. Conventional
  // shard numbering is dense from 0, so the first fully-absent index ends
  // the scan.
  size_t num_indexes = 0;
  while (true) {
    const std::string shard_path =
        directory + ShardFileName(stem, num_indexes);
    if (!FileExists(shard_path) && !FileExists(TempPathFor(shard_path)) &&
        !FileExists(shard_path + kQuarantineFileSuffix)) {
      break;
    }
    ++num_indexes;
  }

  // Step 1: sweep orphan temps. A ".tmp" is never the only copy of
  // sealed data — the rename in docs/FORMAT.md §8 is the seal's commit
  // point — so removal can only discard bytes the writer never promised.
  RR_RETURN_NOT_OK(
      RemoveIfPresent(TempPathFor(manifest_path), prefix, &report));
  for (size_t index = 0; index < num_indexes; ++index) {
    RR_RETURN_NOT_OK(RemoveIfPresent(
        TempPathFor(directory + ShardFileName(stem, index)), prefix, &report));
  }

  // Step 2: if the manifest on disk already describes a fully-verified
  // store, keep it untouched — quarantining only conventional sealed
  // shards it does not name (strays from an interrupted rewrite).
  Result<ShardManifest> existing = ReadShardManifest(manifest_path);
  if (existing.ok() &&
      ManifestStoreIsValid(existing.value(), directory, probe_options)) {
    std::set<std::string> named;
    for (const ShardManifestEntry& entry : existing.value().shards) {
      named.insert(entry.relative_path);
    }
    for (size_t index = 0; index < num_indexes; ++index) {
      const std::string relative = ShardFileName(stem, index);
      if (named.count(relative) != 0) continue;
      const std::string shard_path = directory + relative;
      if (!FileExists(shard_path)) continue;
      RR_RETURN_NOT_OK(Quarantine(shard_path, prefix, &report));
    }
    report.recovered_shards = existing.value().shards.size();
    report.recovered_records = existing.value().num_records;
    return report;
  }

  // Step 3: rebuild. The recovered store is the maximal contiguous
  // prefix of sealed, schema-consistent, fully-verified conventional
  // shards from index 0; everything sealed beyond (or inside a hole in)
  // that prefix is quarantined, never deleted — it may still hold data
  // worth forensics, it just cannot be proven part of this stream.
  std::vector<std::string> column_names;
  std::vector<ShardManifestEntry> entries;
  uint64_t total_records = 0;
  bool prefix_open = true;
  for (size_t index = 0; index < num_indexes; ++index) {
    const std::string shard_path = directory + ShardFileName(stem, index);
    if (prefix_open && FileExists(shard_path)) {
      Result<ColumnStoreReader> probe =
          ColumnStoreReader::Open(shard_path, probe_options);
      if (probe.ok() && probe.value().num_records() > 0 &&
          (entries.empty() ||
           probe.value().attribute_names() == column_names)) {
        const ColumnStoreReader& reader = probe.value();
        if (entries.empty()) column_names = reader.attribute_names();
        ShardManifestEntry entry;
        entry.relative_path = ShardFileName(stem, index);
        entry.row_begin = total_records;
        entry.row_count = reader.num_records();
        entry.seal_digest = ComputeShardSealDigest(reader);
        total_records += entry.row_count;
        entries.push_back(std::move(entry));
        continue;
      }
    }
    prefix_open = false;
    if (FileExists(shard_path)) {
      RR_RETURN_NOT_OK(Quarantine(shard_path, prefix, &report));
    }
  }

  // Step 4: commit. An empty prefix means nothing sealed survived —
  // remove any stale manifest so the path provably holds no store.
  if (entries.empty()) {
    RR_RETURN_NOT_OK(RemoveIfPresent(manifest_path, prefix, &report));
    report.store_empty = true;
    m_recovery_stores_empty.Add(1);
    return report;
  }
  ShardManifest rebuilt;
  rebuilt.num_records = total_records;
  rebuilt.column_names = std::move(column_names);
  rebuilt.shards = std::move(entries);
  RR_RETURN_NOT_OK(WriteShardManifest(rebuilt, manifest_path));
  report.recovered_shards = rebuilt.shards.size();
  report.recovered_records = rebuilt.num_records;
  report.manifest_rebuilt = true;
  m_recovery_manifests_rebuilt.Add(1);
  return report;
}

}  // namespace data
}  // namespace randrecon
