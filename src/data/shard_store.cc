#include "data/shard_store.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <utility>

#include "common/check.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "data/file_io.h"

namespace randrecon {
namespace data {

const char kShardManifestMagic[8] = {'R', 'R', 'S', 'H', 'M', 'A', 'N', 'F'};
const char kShardManifestExtension[] = ".rrcm";

namespace {

// Fixed manifest offsets (docs/FORMAT.md §7.1) — deliberately parallel
// to the column-store header: magic, version, then three u64 geometry
// fields, then variable-length sections.
constexpr size_t kVersionOffset = 8;
constexpr size_t kReservedOffset = 12;
constexpr size_t kNumRecordsOffset = 16;
constexpr size_t kNumAttributesOffset = 24;
constexpr size_t kNumShardsOffset = 32;
constexpr size_t kEntriesStartOffset = 40;
/// u32 path length + (empty path) + row_begin + row_count + seal_digest.
constexpr size_t kMinShardEntryBytes = 4 + 3 * sizeof(uint64_t);
/// Manifests are O(shards) small; a header claiming more than this is
/// hostile or corrupt and must fail as a Status, not a bad_alloc.
constexpr size_t kMaxManifestBytes = 64u << 20;

void AppendU32(std::string* out, uint32_t value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

void AppendU64(std::string* out, uint64_t value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

uint32_t LoadU32(const uint8_t* bytes) {
  uint32_t value;
  std::memcpy(&value, bytes, sizeof(value));
  return value;
}

uint64_t LoadU64(const uint8_t* bytes) {
  uint64_t value;
  std::memcpy(&value, bytes, sizeof(value));
  return value;
}

std::string HexU64(uint64_t value) {
  char buffer[19];
  std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

std::string ManifestPrefix(const std::string& path) {
  return "shard manifest '" + path + "': ";
}

// The IO seams of the sharded layer (common/failpoint.h). The store.*
// failpoints in column_store.cc also fire for each shard file's own
// block writes / seal / fsync / rename.
Failpoint fp_shard_write("shard.write");  ///< Before a chunk hits a shard.
Failpoint fp_shard_seal("shard.seal");    ///< Before a shard's seal.
Failpoint fp_manifest_write("manifest.write");    ///< Before the temp write.
Failpoint fp_manifest_fsync("manifest.fsync");    ///< Before the temp fsync.
Failpoint fp_manifest_rename("manifest.rename");  ///< Before the rename.

// Sharded-layer telemetry (common/metrics.h). Counts sit next to the
// failpoints they observe; the per-shard store.* counters in
// column_store.cc tick underneath these for every shard file.
metrics::Counter m_shards_sealed("shard.shards_sealed");
metrics::Counter m_shards_opened("shard.shards_opened");
metrics::Counter m_shard_open_hits("shard.open_hits");  ///< Lazy-verify hits.
metrics::Counter m_manifests_written("shard.manifests_written");
metrics::Counter m_manifests_read("shard.manifests_read");

/// A shard path from a manifest may only address files under the
/// manifest's directory: relative, with no "." / ".." / empty
/// components (a hostile manifest must not reach ../../etc/passwd).
bool IsSafeRelativePath(const std::string& path) {
  if (path.empty() || path.front() == '/') return false;
  size_t begin = 0;
  while (begin <= path.size()) {
    const size_t end = std::min(path.find('/', begin), path.size());
    const std::string component = path.substr(begin, end - begin);
    if (component.empty() || component == "." || component == "..") {
      return false;
    }
    begin = end + 1;
  }
  return true;
}

/// Structural validation shared by the reader and the writer: spans must
/// tile [0, num_records) contiguously in shard order, every path must be
/// safe, and failures name the offending shard.
Status ValidateManifestStructure(const ShardManifest& manifest,
                                 const std::string& prefix) {
  if (manifest.shards.empty()) {
    return Status::InvalidArgument(prefix + "manifest names no shards");
  }
  if (manifest.column_names.empty()) {
    return Status::InvalidArgument(prefix + "manifest names no columns");
  }
  uint64_t expected_begin = 0;
  std::set<std::string> seen_paths;
  for (size_t s = 0; s < manifest.shards.size(); ++s) {
    const ShardManifestEntry& entry = manifest.shards[s];
    const std::string shard_name =
        "shard " + std::to_string(s) + " ('" + entry.relative_path + "')";
    if (!IsSafeRelativePath(entry.relative_path)) {
      return Status::InvalidArgument(
          prefix + shard_name +
          ": path must be relative with no '..' components");
    }
    if (!seen_paths.insert(entry.relative_path).second) {
      // Two entries aliasing one file would pass every per-shard check
      // (same schema, counts and digest) and silently serve duplicated
      // records — exactly the "silently wrong stream" this layer exists
      // to rule out.
      return Status::InvalidArgument(
          prefix + shard_name + ": duplicate shard path — an earlier entry "
          "already names this file");
    }
    uint64_t entry_end = 0;
    if (__builtin_add_overflow(entry.row_begin, entry.row_count,
                               &entry_end)) {
      return Status::InvalidArgument(prefix + shard_name + ": row span [" +
                                     std::to_string(entry.row_begin) + ", +" +
                                     std::to_string(entry.row_count) +
                                     ") overflows");
    }
    if (entry.row_begin != expected_begin) {
      const bool overlap = entry.row_begin < expected_begin;
      return Status::InvalidArgument(
          prefix + shard_name + ": row span [" +
          std::to_string(entry.row_begin) + ", " + std::to_string(entry_end) +
          ") " + (overlap ? "overlaps the previous shard, which ends at record "
                          : "leaves a gap after the previous shard, which ends "
                            "at record ") +
          std::to_string(expected_begin));
    }
    expected_begin = entry_end;
  }
  if (expected_begin != manifest.num_records) {
    return Status::InvalidArgument(
        prefix + "shard row spans cover " + std::to_string(expected_begin) +
        " records but the manifest declares " +
        std::to_string(manifest.num_records));
  }
  return Status::OK();
}

/// The manifest's serialized image WITHOUT the trailing hash.
std::string SerializeManifestPrefix(const ShardManifest& manifest) {
  std::string out;
  out.append(kShardManifestMagic, sizeof(kShardManifestMagic));
  AppendU32(&out, manifest.version);
  AppendU32(&out, 0);  // Reserved; zero in v1, bound by the hash.
  AppendU64(&out, manifest.num_records);
  AppendU64(&out, manifest.column_names.size());
  AppendU64(&out, manifest.shards.size());
  for (const std::string& name : manifest.column_names) {
    AppendU32(&out, static_cast<uint32_t>(name.size()));
    out.append(name);
  }
  for (const ShardManifestEntry& entry : manifest.shards) {
    AppendU32(&out, static_cast<uint32_t>(entry.relative_path.size()));
    out.append(entry.relative_path);
    AppendU64(&out, entry.row_begin);
    AppendU64(&out, entry.row_count);
    AppendU64(&out, entry.seal_digest);
  }
  return out;
}

}  // namespace

uint64_t ComputeShardSealDigest(const ColumnStoreReader& reader) {
  // Little-endian u64s hashed as raw bytes: stable across hosts per the
  // little-endian requirement of the store format itself.
  std::vector<uint64_t> words;
  words.reserve(1 + reader.num_blocks());
  words.push_back(reader.header_hash());
  for (size_t block = 0; block < reader.num_blocks(); ++block) {
    words.push_back(reader.stored_block_hash(block));
  }
  return ColumnStoreHash(words.data(), words.size() * sizeof(uint64_t));
}

std::string ManifestHashHex(uint64_t manifest_hash) {
  return HexU64(manifest_hash);
}

std::string ShardFileName(const std::string& stem, size_t shard_index) {
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), ".shard-%05zu", shard_index);
  return stem + suffix + ".rrcs";
}

std::string ShardStemForManifest(const std::string& manifest_path) {
  const size_t slash = manifest_path.find_last_of('/');
  std::string name =
      slash == std::string::npos ? manifest_path : manifest_path.substr(slash + 1);
  const std::string extension(kShardManifestExtension);
  if (name.size() > extension.size() &&
      name.compare(name.size() - extension.size(), extension.size(),
                   extension) == 0) {
    name.resize(name.size() - extension.size());
  }
  return name;
}

std::string ManifestDirectory(const std::string& manifest_path) {
  const size_t slash = manifest_path.find_last_of('/');
  return slash == std::string::npos ? std::string()
                                    : manifest_path.substr(0, slash + 1);
}

Result<ShardManifest> ReadShardManifest(const std::string& manifest_path) {
  const std::string prefix = ManifestPrefix(manifest_path);
  std::ifstream file(manifest_path, std::ios::binary);
  if (!file.is_open()) {
    return Status::IoError(prefix + "cannot open");
  }
  file.seekg(0, std::ios::end);
  const std::streamoff signed_size = file.tellg();
  if (signed_size < 0) {
    return Status::IoError(prefix + "cannot determine file size");
  }
  const size_t size = static_cast<size_t>(signed_size);
  if (size > kMaxManifestBytes) {
    return Status::InvalidArgument(
        prefix + "file is " + std::to_string(size) +
        " bytes, larger than the " + std::to_string(kMaxManifestBytes) +
        "-byte manifest limit — not a manifest");
  }
  if (size < kEntriesStartOffset + sizeof(uint64_t)) {
    return Status::InvalidArgument(
        prefix + "file is " + std::to_string(size) +
        " bytes, smaller than the minimum manifest");
  }
  std::string buffer(size, '\0');
  file.seekg(0);
  file.read(&buffer[0], static_cast<std::streamsize>(size));
  if (file.gcount() != signed_size) {
    return Status::IoError(prefix + "short read");
  }
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(buffer.data());

  if (std::memcmp(bytes, kShardManifestMagic, sizeof(kShardManifestMagic)) !=
      0) {
    return Status::InvalidArgument(
        prefix + "bad magic at offset 0 — not a shard manifest");
  }
  ShardManifest manifest;
  manifest.version = LoadU32(bytes + kVersionOffset);
  if (manifest.version == 0 || manifest.version > kShardManifestVersion) {
    return Status::InvalidArgument(
        prefix + "unsupported manifest version " +
        std::to_string(manifest.version) + " (this build reads versions 1.." +
        std::to_string(kShardManifestVersion) + ")");
  }
  (void)kReservedOffset;  // Reserved field: ignored in v1, hash-bound.
  manifest.num_records = LoadU64(bytes + kNumRecordsOffset);
  const uint64_t num_attributes = LoadU64(bytes + kNumAttributesOffset);
  const uint64_t num_shards = LoadU64(bytes + kNumShardsOffset);
  if (num_attributes == 0 || num_shards == 0) {
    return Status::InvalidArgument(
        prefix + "manifest declares num_attributes " +
        std::to_string(num_attributes) + ", num_shards " +
        std::to_string(num_shards) + " (both must be >= 1)");
  }
  // Bound counts against the file BEFORE reserving: both are unverified
  // until the trailing hash is checked, and a hostile count must fail as
  // a Status, not a bad_alloc.
  if (num_attributes > (size - kEntriesStartOffset) / sizeof(uint32_t)) {
    return Status::InvalidArgument(
        prefix + "manifest declares " + std::to_string(num_attributes) +
        " columns, more than its " + std::to_string(size) +
        " bytes could possibly name");
  }
  if (num_shards > size / kMinShardEntryBytes) {
    return Status::InvalidArgument(
        prefix + "manifest declares " + std::to_string(num_shards) +
        " shards, more than its " + std::to_string(size) +
        " bytes could possibly describe");
  }

  size_t offset = kEntriesStartOffset;
  auto need = [&](size_t bytes_needed, const std::string& what) -> Status {
    // The trailing 8-byte manifest hash must still fit after `what`.
    if (offset + bytes_needed + sizeof(uint64_t) > size) {
      return Status::InvalidArgument(prefix + what +
                                     " overruns the manifest at offset " +
                                     std::to_string(offset));
    }
    return Status::OK();
  };
  manifest.column_names.reserve(num_attributes);
  for (uint64_t j = 0; j < num_attributes; ++j) {
    const std::string what = "column name " + std::to_string(j);
    RR_RETURN_NOT_OK(need(sizeof(uint32_t), what));
    const uint32_t length = LoadU32(bytes + offset);
    offset += sizeof(uint32_t);
    RR_RETURN_NOT_OK(need(length, what));
    manifest.column_names.emplace_back(
        reinterpret_cast<const char*>(bytes + offset), length);
    offset += length;
  }
  manifest.shards.reserve(num_shards);
  for (uint64_t s = 0; s < num_shards; ++s) {
    const std::string what = "shard entry " + std::to_string(s);
    RR_RETURN_NOT_OK(need(sizeof(uint32_t), what));
    const uint32_t path_length = LoadU32(bytes + offset);
    offset += sizeof(uint32_t);
    RR_RETURN_NOT_OK(need(path_length + 3 * sizeof(uint64_t), what));
    ShardManifestEntry entry;
    entry.relative_path.assign(reinterpret_cast<const char*>(bytes + offset),
                               path_length);
    offset += path_length;
    entry.row_begin = LoadU64(bytes + offset);
    entry.row_count = LoadU64(bytes + offset + 8);
    entry.seal_digest = LoadU64(bytes + offset + 16);
    offset += 3 * sizeof(uint64_t);
    manifest.shards.push_back(std::move(entry));
  }

  const uint64_t stored_hash = LoadU64(bytes + offset);
  const uint64_t computed_hash = ColumnStoreHash(bytes, offset);
  if (stored_hash != computed_hash) {
    return Status::InvalidArgument(
        prefix + "manifest checksum mismatch over bytes [0, " +
        std::to_string(offset) + ") — stored " + HexU64(stored_hash) +
        ", computed " + HexU64(computed_hash));
  }
  if (offset + sizeof(uint64_t) != size) {
    return Status::InvalidArgument(
        prefix + "manifest is " + std::to_string(size) + " bytes but its " +
        std::to_string(num_shards) + " entries end at " +
        std::to_string(offset + sizeof(uint64_t)) +
        " — trailing bytes or truncated entry table");
  }
  manifest.manifest_hash = stored_hash;
  RR_RETURN_NOT_OK(ValidateManifestStructure(manifest, prefix));
  m_manifests_read.Add(1);
  return manifest;
}

Status WriteShardManifest(const ShardManifest& manifest,
                          const std::string& manifest_path) {
  const std::string prefix = ManifestPrefix(manifest_path);
  RR_RETURN_NOT_OK(ValidateManifestStructure(manifest, prefix));
  for (const std::string& name : manifest.column_names) {
    if (name.size() > UINT32_MAX) {
      return Status::InvalidArgument(prefix + "column name too long");
    }
  }
  for (const ShardManifestEntry& entry : manifest.shards) {
    if (entry.relative_path.size() > UINT32_MAX) {
      return Status::InvalidArgument(prefix + "shard path too long");
    }
  }
  std::string image = SerializeManifestPrefix(manifest);
  AppendU64(&image, ColumnStoreHash(image.data(), image.size()));
  // Write-temp → fsync → atomic-rename (docs/FORMAT.md §8): the manifest
  // path flips from absent/old to the complete new manifest in one
  // rename — readers never observe a torn manifest.
  const std::string temp_path = TempPathFor(manifest_path);
  const Status written = [&]() -> Status {
    RR_FAILPOINT(fp_manifest_write);
    std::ofstream file(temp_path, std::ios::binary | std::ios::trunc);
    if (!file.is_open()) {
      return Status::IoError(prefix + "cannot open temp file '" + temp_path +
                             "' for writing");
    }
    file.write(image.data(), static_cast<std::streamsize>(image.size()));
    file.close();
    if (file.fail()) {
      return Status::IoError(prefix + "write failed");
    }
    RR_FAILPOINT(fp_manifest_fsync);
    RR_RETURN_NOT_OK(FsyncFile(temp_path));
    RR_FAILPOINT(fp_manifest_rename);
    RR_RETURN_NOT_OK(AtomicRename(temp_path, manifest_path));
    return FsyncParentDirectory(manifest_path);
  }();
  if (!written.ok()) {
    std::remove(temp_path.c_str());  // Best-effort.
    return written;
  }
  m_manifests_written.Add(1);
  return written;
}

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

ShardedStoreWriter::ShardedStoreWriter(std::string manifest_path,
                                       std::string directory, std::string stem,
                                       std::vector<std::string> names,
                                       ShardedStoreOptions options)
    : manifest_path_(std::move(manifest_path)),
      directory_(std::move(directory)),
      stem_(std::move(stem)),
      names_(std::move(names)),
      options_(options) {}

ShardedStoreWriter::ShardedStoreWriter(ShardedStoreWriter&& other) noexcept
    : manifest_path_(std::move(other.manifest_path_)),
      directory_(std::move(other.directory_)),
      stem_(std::move(other.stem_)),
      names_(std::move(other.names_)),
      options_(other.options_),
      entries_(std::move(other.entries_)),
      current_(std::move(other.current_)),
      current_rows_(other.current_rows_),
      pending_(std::move(other.pending_)),
      rows_written_(other.rows_written_),
      deferred_error_(std::move(other.deferred_error_)),
      closed_(other.closed_),
      manifest_written_(other.manifest_written_) {
  other.closed_ = true;  // The hollowed-out source must not try to close.
}

Result<ShardedStoreWriter> ShardedStoreWriter::Create(
    const std::string& manifest_path, std::vector<std::string> column_names,
    ShardedStoreOptions options) {
  const std::string prefix = ManifestPrefix(manifest_path);
  if (options.shard_rows == 0) {
    return Status::InvalidArgument(prefix + "shard_rows must be >= 1");
  }
  if (options.seal_batch_shards == 0) {
    return Status::InvalidArgument(prefix + "seal_batch_shards must be >= 1");
  }
  ShardedStoreWriter writer(manifest_path, ManifestDirectory(manifest_path),
                            ShardStemForManifest(manifest_path),
                            std::move(column_names), options);
  // Shard 0 is created eagerly so an unwritable directory or a bad
  // column-name set fails here, not on the first Append.
  RR_RETURN_NOT_OK(writer.StartShard());
  return writer;
}

ShardedStoreWriter::~ShardedStoreWriter() {
  if (!closed_) Close();  // Best-effort; errors surface via explicit Close().
}

Status ShardedStoreWriter::StartShard() {
  const size_t index = entries_.size();
  ShardManifestEntry entry;
  entry.relative_path = ShardFileName(stem_, index);
  entry.row_begin = rows_written_;
  ColumnStoreOptions store_options;
  store_options.block_rows = options_.block_rows;
  Result<ColumnStoreWriter> created = ColumnStoreWriter::Create(
      directory_ + entry.relative_path, names_, store_options);
  if (!created.ok()) {
    return Status(created.status().code(),
                  ManifestPrefix(manifest_path_) + "shard " +
                      std::to_string(index) + " ('" + entry.relative_path +
                      "'): " + created.status().message());
  }
  current_ =
      std::make_unique<ColumnStoreWriter>(std::move(created).value());
  current_rows_ = 0;
  entries_.push_back(std::move(entry));
  return Status::OK();
}

void ShardedStoreWriter::RollCurrentShard() {
  if (current_ == nullptr) return;
  pending_.emplace_back(entries_.size() - 1, std::move(current_));
  current_rows_ = 0;
}

Status ShardedStoreWriter::SealPendingShards() {
  if (pending_.empty()) return Status::OK();
  // Each task seals its own shard (final-block flush + header patch) and
  // computes its seal digest — independent files, disjoint entry slots,
  // and the surviving error (lowest shard) is thread-count independent.
  std::vector<Status> statuses(pending_.size());
  ParallelForEach(
      0, pending_.size(),
      [&](size_t i) {
        const size_t index = pending_[i].first;
        ColumnStoreWriter* writer = pending_[i].second.get();
        const std::string shard_prefix =
            ManifestPrefix(manifest_path_) + "shard " + std::to_string(index) +
            " ('" + entries_[index].relative_path + "'): ";
        Status sealed = [&]() -> Status {
          RR_FAILPOINT(fp_shard_seal);
          return writer->Close();
        }();
        if (!sealed.ok()) {
          statuses[i] = Status(sealed.code(), shard_prefix + sealed.message());
          return;
        }
        // Re-open the sealed shard to digest its header + block hashes;
        // this also proves the file on disk parses as a valid store.
        Result<ColumnStoreReader> reader =
            ColumnStoreReader::Open(directory_ + entries_[index].relative_path);
        if (!reader.ok()) {
          statuses[i] = Status(reader.status().code(),
                               shard_prefix + reader.status().message());
          return;
        }
        entries_[index].seal_digest = ComputeShardSealDigest(reader.value());
        m_shards_sealed.Add(1);
      },
      options_.parallel);
  pending_.clear();
  for (Status& status : statuses) {
    if (!status.ok()) {
      // Sticky: the store now contains a shard that never sealed, so
      // every later call (and Close, even from the destructor) must
      // keep failing instead of writing a manifest over the damage.
      deferred_error_ = status;
      return std::move(status);
    }
  }
  return Status::OK();
}

Status ShardedStoreWriter::Append(const linalg::Matrix& chunk,
                                  size_t num_rows) {
  if (closed_) {
    return Status::FailedPrecondition(ManifestPrefix(manifest_path_) +
                                      "Append after Close");
  }
  if (!deferred_error_.ok()) return deferred_error_;
  const size_t m = names_.size();
  if (chunk.cols() != m) {
    return Status::InvalidArgument(
        ManifestPrefix(manifest_path_) + "chunk has " +
        std::to_string(chunk.cols()) + " columns, store has " +
        std::to_string(m));
  }
  RR_CHECK(num_rows <= chunk.rows())
      << "ShardedStoreWriter::Append: num_rows exceeds chunk";
  size_t consumed = 0;
  while (consumed < num_rows) {
    if (current_ == nullptr) RR_RETURN_NOT_OK(StartShard());
    const size_t take =
        std::min(options_.shard_rows - current_rows_, num_rows - consumed);
    RR_FAILPOINT(fp_shard_write);
    RR_RETURN_NOT_OK(current_->Append(chunk.data() + consumed * m, take));
    current_rows_ += take;
    rows_written_ += take;
    entries_.back().row_count += take;
    consumed += take;
    if (current_rows_ == options_.shard_rows) {
      RollCurrentShard();
      if (pending_.size() >= options_.seal_batch_shards) {
        RR_RETURN_NOT_OK(SealPendingShards());
      }
    }
  }
  return Status::OK();
}

Status ShardedStoreWriter::Close() {
  if (closed_) return deferred_error_;
  closed_ = true;
  if (!deferred_error_.ok()) return deferred_error_;
  RollCurrentShard();
  RR_RETURN_NOT_OK(SealPendingShards());
  ShardManifest manifest;
  manifest.num_records = rows_written_;
  manifest.column_names = names_;
  manifest.shards = entries_;
  // The manifest goes out LAST: until this write succeeds there is no
  // file claiming the shards form a complete store.
  RR_RETURN_NOT_OK(WriteShardManifest(manifest, manifest_path_));
  manifest_written_ = true;
  // Best-effort removal of stale conventionally-named shards from a
  // previous, wider layout at the same stem: a leftover
  // "<stem>.shard-00007.rrcs" next to a 2-shard manifest would read as
  // a plausible standalone store.
  for (size_t index = entries_.size();; ++index) {
    if (std::remove((directory_ + ShardFileName(stem_, index)).c_str()) != 0) {
      break;
    }
  }
  return Status::OK();
}

std::vector<std::string> ShardedStoreWriter::output_paths() const {
  std::vector<std::string> paths;
  paths.reserve(entries_.size() + 1);
  for (const ShardManifestEntry& entry : entries_) {
    paths.push_back(directory_ + entry.relative_path);
  }
  paths.push_back(manifest_path_);
  return paths;
}

// ---------------------------------------------------------------------------
// Reader.
// ---------------------------------------------------------------------------

ShardedStoreReader::ShardedStoreReader(ShardManifest manifest,
                                       std::string directory,
                                       ColumnStoreReadOptions store_options)
    : manifest_(std::move(manifest)),
      directory_(std::move(directory)),
      store_options_(store_options),
      shards_(manifest_.shards.size()) {}

Result<ShardedStoreReader> ShardedStoreReader::Open(
    const std::string& manifest_path, ColumnStoreReadOptions store_options) {
  RR_ASSIGN_OR_RETURN(ShardManifest manifest,
                      ReadShardManifest(manifest_path));
  ShardedStoreReader reader(std::move(manifest),
                            ManifestDirectory(manifest_path), store_options);
  reader.manifest_path_ = manifest_path;
  return reader;
}

std::string ShardedStoreReader::shard_path(size_t shard) const {
  RR_CHECK(shard < manifest_.shards.size())
      << "ShardedStoreReader: shard out of range";
  return directory_ + manifest_.shards[shard].relative_path;
}

std::string ShardedStoreReader::ShardPrefix(size_t shard) const {
  return "sharded store '" + manifest_path_ + "': shard " +
         std::to_string(shard) + " ('" +
         manifest_.shards[shard].relative_path + "'): ";
}

Result<ColumnStoreReader*> ShardedStoreReader::shard(size_t shard) {
  RR_CHECK(shard < shards_.size()) << "ShardedStoreReader: shard out of range";
  if (shards_[shard] != nullptr) {
    m_shard_open_hits.Add(1);
    return shards_[shard].get();
  }
  const ShardManifestEntry& entry = manifest_.shards[shard];
  Result<ColumnStoreReader> opened =
      ColumnStoreReader::Open(shard_path(shard), store_options_);
  if (!opened.ok()) {
    // Missing file (IoError) and structural corruption (InvalidArgument,
    // e.g. truncation) keep their codes; the shard is named either way.
    return Status(opened.status().code(),
                  ShardPrefix(shard) + opened.status().message());
  }
  ColumnStoreReader reader = std::move(opened).value();
  if (reader.attribute_names() != manifest_.column_names) {
    return Status::InvalidArgument(
        ShardPrefix(shard) +
        "column schema mismatch between the manifest and the shard header (" +
        std::to_string(manifest_.column_names.size()) + " vs " +
        std::to_string(reader.num_attributes()) +
        " columns, or differing names)");
  }
  if (reader.num_records() != entry.row_count) {
    return Status::InvalidArgument(
        ShardPrefix(shard) + "holds " + std::to_string(reader.num_records()) +
        " records but the manifest assigns it rows [" +
        std::to_string(entry.row_begin) + ", " +
        std::to_string(entry.row_begin + entry.row_count) +
        ") — stale manifest or wrong shard file");
  }
  const uint64_t digest = ComputeShardSealDigest(reader);
  if (digest != entry.seal_digest) {
    return Status::InvalidArgument(
        ShardPrefix(shard) + "seal digest mismatch — manifest has " +
        HexU64(entry.seal_digest) + ", shard content digests to " +
        HexU64(digest) +
        " (shard files swapped, or the shard was resealed after the manifest "
        "was written)");
  }
  shards_[shard] = std::make_unique<ColumnStoreReader>(std::move(reader));
  m_shards_opened.Add(1);
  return shards_[shard].get();
}

Status ShardedStoreReader::ReadRows(size_t row_begin, size_t num_rows,
                                    linalg::Matrix* buffer) {
  const size_t m = manifest_.column_names.size();
  RR_CHECK_EQ(buffer->cols(), m) << "ShardedStoreReader: buffer width mismatch";
  RR_CHECK(num_rows <= buffer->rows())
      << "ShardedStoreReader: num_rows exceeds buffer";
  if (row_begin + num_rows > manifest_.num_records ||
      row_begin + num_rows < row_begin) {
    return Status::InvalidArgument(
        "sharded store '" + manifest_path_ + "': row range [" +
        std::to_string(row_begin) + ", " + std::to_string(row_begin + num_rows) +
        ") exceeds the " + std::to_string(manifest_.num_records) +
        "-record store");
  }
  if (num_rows == 0) return Status::OK();
  // Locate the first spanned shard: the last entry starting at or before
  // row_begin (spans are contiguous and sorted by construction).
  size_t shard_index =
      static_cast<size_t>(
          std::upper_bound(manifest_.shards.begin(), manifest_.shards.end(),
                           static_cast<uint64_t>(row_begin),
                           [](uint64_t row, const ShardManifestEntry& entry) {
                             return row < entry.row_begin;
                           }) -
          manifest_.shards.begin()) -
      1;
  // Pass 1 (serial): resolve the spanned shards, opening and
  // manifest-validating each on first touch. Every spanned shard
  // appears in exactly one span.
  struct Span {
    size_t shard;
    size_t local;
    size_t take;
    size_t out_row;
  };
  std::vector<Span> spans;
  size_t out_row = 0;
  while (out_row < num_rows) {
    const ShardManifestEntry& entry = manifest_.shards[shard_index];
    const size_t local = row_begin + out_row - entry.row_begin;
    const size_t take = std::min(static_cast<size_t>(entry.row_count) - local,
                                 num_rows - out_row);
    if (take == 0) {  // An empty shard contributes nothing; skip it.
      ++shard_index;
      continue;
    }
    RR_ASSIGN_OR_RETURN(ColumnStoreReader * reader, shard(shard_index));
    (void)reader;
    spans.push_back({shard_index, local, take, out_row});
    out_row += take;
    if (local + take == entry.row_count) ++shard_index;
  }
  // Pass 2 (shard-parallel): each span gathers into a disjoint slice of
  // the caller's buffer from its own shard reader, so the filled bytes
  // are bitwise identical for any thread count and the surviving error
  // (lowest shard) is deterministic. Within a single span the shard's
  // own block-parallel ReadRows takes over (nested calls run inline).
  std::vector<Status> statuses(spans.size());
  ParallelForEach(
      0, spans.size(),
      [&](size_t i) {
        const Span& span = spans[i];
        statuses[i] = shards_[span.shard]->ReadRowsInto(
            span.local, span.take, buffer->data() + span.out_row * m);
      },
      store_options_.parallel);
  for (size_t i = 0; i < spans.size(); ++i) {
    if (!statuses[i].ok()) {
      return Status(statuses[i].code(),
                    ShardPrefix(spans[i].shard) + statuses[i].message());
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Dataset convenience + cleanup.
// ---------------------------------------------------------------------------

Status WriteShardedStore(const Dataset& dataset,
                         const std::string& manifest_path,
                         ShardedStoreOptions options) {
  RR_ASSIGN_OR_RETURN(ShardedStoreWriter writer,
                      ShardedStoreWriter::Create(
                          manifest_path, dataset.attribute_names(), options));
  RR_RETURN_NOT_OK(writer.Append(dataset.records(), dataset.num_records()));
  return writer.Close();
}

Result<Dataset> ReadShardedStoreDataset(const std::string& manifest_path) {
  RR_ASSIGN_OR_RETURN(ShardedStoreReader reader,
                      ShardedStoreReader::Open(manifest_path));
  // Validate every shard BEFORE sizing the n x m buffer: the manifest's
  // record count is attacker-controlled until each shard's header (and
  // its header-vs-file-size cross-check) confirms it, and materializing
  // the table from a hostile count must fail as a Status, not OOM. The
  // opens are not wasted — every shard is about to be read anyway.
  for (size_t s = 0; s < reader.num_shards(); ++s) {
    RR_ASSIGN_OR_RETURN(ColumnStoreReader * shard, reader.shard(s));
    (void)shard;
  }
  linalg::Matrix records(reader.num_records(), reader.num_attributes());
  RR_RETURN_NOT_OK(reader.ReadRows(0, reader.num_records(), &records));
  return Dataset::Create(std::move(records), reader.attribute_names());
}

Status RemoveShardedStoreFiles(const std::string& manifest_path) {
  // Every removal funnels through here: ENOENT is "nothing to do", any
  // other failure is recorded so the caller learns exactly which files
  // survived the sweep. Returns true iff the file existed.
  std::vector<std::string> failed;
  auto remove_file = [&failed](const std::string& path) {
    if (std::remove(path.c_str()) == 0) return true;
    if (errno != ENOENT) failed.push_back(path);
    return false;
  };
  // A shard index may be present as the sealed file, an orphan temp from
  // a crashed writer, a quarantined file from a recovery pass — or any
  // mix. Sweep all three spellings.
  auto remove_shard_variants = [&](const std::string& shard_path) {
    bool any = false;
    any |= remove_file(shard_path);
    any |= remove_file(TempPathFor(shard_path));
    any |= remove_file(shard_path + kQuarantineFileSuffix);
    return any;
  };
  // Shards the manifest names (when it parses) ...
  Result<ShardManifest> manifest = ReadShardManifest(manifest_path);
  const std::string directory = ManifestDirectory(manifest_path);
  if (manifest.ok()) {
    for (const ShardManifestEntry& entry : manifest.value().shards) {
      remove_shard_variants(directory + entry.relative_path);
    }
  }
  // ... plus conventionally-named shards from a write that never reached
  // its manifest (counting up until the first index with no file under
  // any spelling) ...
  const std::string stem = ShardStemForManifest(manifest_path);
  for (size_t index = 0;; ++index) {
    if (!remove_shard_variants(directory + ShardFileName(stem, index))) break;
  }
  // ... and the manifest itself, plus its own orphan temp.
  remove_file(manifest_path);
  remove_file(TempPathFor(manifest_path));
  if (!failed.empty()) {
    std::string message = ManifestPrefix(manifest_path) +
                          "cleanup could not remove: " + failed[0];
    for (size_t i = 1; i < failed.size(); ++i) message += ", " + failed[i];
    return Status::IoError(std::move(message));
  }
  return Status::OK();
}

}  // namespace data
}  // namespace randrecon
