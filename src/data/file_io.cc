#include "data/file_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace randrecon {
namespace data {

const char kTempFileSuffix[] = ".tmp";
const char kQuarantineFileSuffix[] = ".quarantined";

std::string TempPathFor(const std::string& final_path) {
  return final_path + kTempFileSuffix;
}

Status FsyncFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("fsync '" + path +
                           "': cannot open: " + std::strerror(errno));
  }
  if (::fsync(fd) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(fd);
    return Status::IoError("fsync '" + path + "' failed: " + detail);
  }
  ::close(fd);
  return Status::OK();
}

Status FsyncParentDirectory(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string directory =
      slash == std::string::npos ? std::string(".") : path.substr(0, slash + 1);
  const int fd = ::open(directory.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IoError("fsync directory '" + directory +
                           "': cannot open: " + std::strerror(errno));
  }
  if (::fsync(fd) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(fd);
    return Status::IoError("fsync directory '" + directory +
                           "' failed: " + detail);
  }
  ::close(fd);
  return Status::OK();
}

Status AtomicRename(const std::string& from, const std::string& to) {
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    return Status::IoError("rename '" + from + "' -> '" + to +
                           "' failed: " + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace data
}  // namespace randrecon
