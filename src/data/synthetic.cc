#include "data/synthetic.h"

#include "linalg/eigen.h"
#include "linalg/vector_ops.h"
#include "stats/mvn.h"
#include "stats/random_orthogonal.h"

namespace randrecon {
namespace data {

Result<SyntheticDataset> GenerateSpectrumDataset(
    const SyntheticDatasetSpec& spec, size_t num_records, stats::Rng* rng) {
  const size_t m = spec.eigenvalues.size();
  if (m == 0) {
    return Status::InvalidArgument("GenerateSpectrumDataset: empty spectrum");
  }
  for (double lambda : spec.eigenvalues) {
    if (lambda < 0.0) {
      return Status::InvalidArgument(
          "GenerateSpectrumDataset: negative eigenvalue " +
          std::to_string(lambda));
    }
  }
  linalg::Vector mean = spec.mean;
  if (mean.empty()) {
    mean.assign(m, 0.0);
  } else if (mean.size() != m) {
    return Status::InvalidArgument(
        "GenerateSpectrumDataset: mean length != spectrum length");
  }

  // §7.1 steps 2-3: random orthogonal eigenbasis, C = Q Λ Qᵀ.
  linalg::Matrix q = stats::RandomOrthogonalMatrix(m, rng);
  linalg::Matrix covariance = linalg::ComposeFromEigen(spec.eigenvalues, q);

  // §7.1 step 4: the mvnrnd draw.
  RR_ASSIGN_OR_RETURN(stats::MultivariateNormalSampler sampler,
                      stats::MultivariateNormalSampler::Create(mean,
                                                               covariance));
  linalg::Matrix records = sampler.SampleMatrix(num_records, rng);

  SyntheticDataset out{Dataset(std::move(records)), std::move(covariance),
                       std::move(q), spec.eigenvalues, std::move(mean)};
  return out;
}

Result<SyntheticDataset> GenerateSpectrumDataset(
    const SyntheticDatasetSpec& spec, size_t num_records, stats::Rng* rng,
    stats::Philox* gen) {
  // Build the (cheap, m x m) ground truth with a zero-record call so the
  // validation and basis logic stays in one place...
  RR_ASSIGN_OR_RETURN(SyntheticDataset out,
                      GenerateSpectrumDataset(spec, 0, rng));
  // ...then draw the n x m population through the batch substrate.
  RR_ASSIGN_OR_RETURN(
      stats::MultivariateNormalSampler sampler,
      stats::MultivariateNormalSampler::Create(out.mean, out.covariance));
  out.dataset = Dataset(sampler.SampleMatrix(num_records, gen));
  return out;
}

linalg::Vector TwoLevelSpectrum(size_t num_attributes, size_t num_principal,
                                double principal_value,
                                double residual_value) {
  RR_CHECK_LE(num_principal, num_attributes);
  RR_CHECK_GE(principal_value, 0.0);
  RR_CHECK_GE(residual_value, 0.0);
  linalg::Vector spectrum(num_attributes, residual_value);
  for (size_t i = 0; i < num_principal; ++i) spectrum[i] = principal_value;
  return spectrum;
}

linalg::Vector TwoLevelSpectrumWithTrace(size_t num_attributes,
                                         size_t num_principal,
                                         double residual_value,
                                         double per_attribute_variance) {
  RR_CHECK_GT(num_principal, 0u);
  RR_CHECK_LE(num_principal, num_attributes);
  const double m = static_cast<double>(num_attributes);
  const double p = static_cast<double>(num_principal);
  const double target_trace = m * per_attribute_variance;
  // Solve p * principal + (m - p) * residual = target_trace.
  const double principal =
      (target_trace - (m - p) * residual_value) / p;
  RR_CHECK_GE(principal, residual_value)
      << "trace too small for the requested residual level";
  return TwoLevelSpectrum(num_attributes, num_principal, principal,
                          residual_value);
}

double SpectrumTrace(const linalg::Vector& eigenvalues) {
  return linalg::Sum(eigenvalues);
}

Result<MixtureDataset> GenerateGaussianMixtureDataset(
    const linalg::Matrix& cluster_means,
    const linalg::Vector& within_cluster_eigenvalues, size_t num_records,
    stats::Rng* rng) {
  const size_t num_clusters = cluster_means.rows();
  const size_t m = cluster_means.cols();
  if (num_clusters == 0 || m == 0) {
    return Status::InvalidArgument(
        "GenerateGaussianMixtureDataset: empty cluster means");
  }
  if (within_cluster_eigenvalues.size() != m) {
    return Status::InvalidArgument(
        "GenerateGaussianMixtureDataset: eigenvalue count != attribute count");
  }

  linalg::Matrix q = stats::RandomOrthogonalMatrix(m, rng);
  linalg::Matrix covariance =
      linalg::ComposeFromEigen(within_cluster_eigenvalues, q);
  RR_ASSIGN_OR_RETURN(
      stats::MultivariateNormalSampler sampler,
      stats::MultivariateNormalSampler::CreateZeroMean(covariance));

  MixtureDataset out;
  linalg::Matrix records(num_records, m);
  out.labels.resize(num_records);
  for (size_t i = 0; i < num_records; ++i) {
    const size_t cluster = static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(num_clusters) - 1));
    out.labels[i] = cluster;
    linalg::Vector record = sampler.SampleRecord(rng);
    for (size_t j = 0; j < m; ++j) record[j] += cluster_means(cluster, j);
    records.SetRow(i, record);
  }
  out.dataset = Dataset(std::move(records));
  out.cluster_means = cluster_means;
  out.within_covariance = std::move(covariance);
  return out;
}

}  // namespace data
}  // namespace randrecon
