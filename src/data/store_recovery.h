// Crash recovery for sharded stores: turn whatever a crashed or
// interrupted writer left on disk back into a valid store (or a
// provably empty one).
//
// The write protocol (docs/FORMAT.md §8) guarantees that a crash at any
// instant leaves one of a small set of on-disk states: orphan ".tmp"
// files (bytes still streaming, or sealed but not yet renamed), sealed
// shards with no manifest (crash between the last seal and the manifest
// rename), a stale manifest next to newer conventional shards, or a
// complete valid store. RecoverShardedStore walks that state space:
//
//   1. Orphan temp files (shard and manifest ".tmp") are removed — by
//      protocol a temp is never the only copy of sealed data.
//   2. If the existing manifest parses and EVERY shard it names
//      verifies bitwise (eager whole-file checksum scan + seal digest),
//      the store is already valid and is left untouched.
//   3. Otherwise the manifest is rebuilt from the conventional shard
//      files ("<stem>.shard-NNNNN.rrcs"): the maximal contiguous prefix
//      of sealed, schema-consistent, fully-verified shards starting at
//      index 0 becomes the store; every sealed file beyond or inside a
//      hole in that prefix is quarantined (renamed to
//      "<shard>.quarantined") rather than deleted, and a fresh manifest
//      is written over the prefix through the same atomic protocol.
//   4. An empty prefix means nothing sealed survived: any stale
//      manifest is removed and the report says store_empty.
//
// Recovery is idempotent — running it over an already-recovered store
// changes nothing and reports zero removed/quarantined files — and
// crash-safe in itself, because the only mutation that changes the
// store's meaning (the manifest write) is atomic.

#ifndef RANDRECON_DATA_STORE_RECOVERY_H_
#define RANDRECON_DATA_STORE_RECOVERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/column_store.h"

namespace randrecon {
namespace data {

/// Recovery knobs.
struct StoreRecoveryOptions {
  /// Applied to every shard probe. `eager_verify` is forced on — a shard
  /// joins the recovered prefix only after every block checksum passes,
  /// so the recovered store is bitwise-trustworthy, not just
  /// plausible-looking.
  ColumnStoreReadOptions store_options;
};

/// What a recovery pass found and did.
struct StoreRecoveryReport {
  /// Shards and records in the recovered store (0 when store_empty).
  size_t recovered_shards = 0;
  uint64_t recovered_records = 0;
  /// True when the manifest was rewritten from surviving shards; false
  /// when the existing manifest validated and was kept.
  bool manifest_rebuilt = false;
  /// True when no sealed shard survived: the manifest (if any) was
  /// removed and the path now holds no store at all.
  bool store_empty = false;
  /// Orphan ".tmp" files (and, when store_empty, the stale manifest)
  /// removed by this pass.
  std::vector<std::string> removed_files;
  /// Destination paths of sealed-but-unusable shard files this pass
  /// renamed aside ("<shard>.quarantined") — corrupt shards, shards
  /// beyond the recovered prefix, and shards stranded past a hole.
  std::vector<std::string> quarantined_files;
};

/// Recovers the sharded store at `manifest_path` per the protocol above.
/// After an OK return the path either holds a fully-verified store
/// (ShardedStoreReader::Open succeeds and every record reads back
/// bitwise-exactly) or no store at all (report.store_empty). IoError if
/// a removal, quarantine rename, or the manifest write fails — recovery
/// is idempotent, so the caller may simply run it again.
Result<StoreRecoveryReport> RecoverShardedStore(
    const std::string& manifest_path, StoreRecoveryOptions options = {});

}  // namespace data
}  // namespace randrecon

#endif  // RANDRECON_DATA_STORE_RECOVERY_H_
