// CSV import/export for Dataset. The benchmark harness exports every
// figure's series as CSV; the examples round-trip datasets through files
// the way a practitioner would.

#ifndef RANDRECON_DATA_CSV_H_
#define RANDRECON_DATA_CSV_H_

#include <string>

#include "common/result.h"
#include "data/dataset.h"

namespace randrecon {
namespace data {

/// Writes `dataset` as CSV with a header row of attribute names.
Status WriteCsv(const Dataset& dataset, const std::string& path,
                int precision = 10);

/// Reads a CSV file produced by WriteCsv (header row + numeric body).
/// Fails with IoError if the file can't be opened and InvalidArgument on
/// ragged rows or non-numeric fields.
Result<Dataset> ReadCsv(const std::string& path);

/// Serializes to a CSV string (used by tests; WriteCsv wraps this).
std::string ToCsvString(const Dataset& dataset, int precision = 10);

/// Parses a CSV string (header row + numeric body).
Result<Dataset> FromCsvString(const std::string& text);

}  // namespace data
}  // namespace randrecon

#endif  // RANDRECON_DATA_CSV_H_
