// CSV import/export for Dataset, plus a streaming chunk reader for the
// out-of-core pipeline. The benchmark harness exports every figure's
// series as CSV; the examples round-trip datasets through files the way a
// practitioner would; src/pipeline ingests unbounded report streams
// through CsvChunkReader without ever materializing the table.
//
// Parsing is tolerant of real-world exports: CRLF line endings and a
// missing trailing newline are accepted, blank lines are skipped, and
// ragged-row / non-numeric errors name the 1-based offending line.

#ifndef RANDRECON_DATA_CSV_H_
#define RANDRECON_DATA_CSV_H_

#include <istream>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"

namespace randrecon {
namespace data {

/// Writes `dataset` as CSV with a header row of attribute names.
Status WriteCsv(const Dataset& dataset, const std::string& path,
                int precision = 10);

/// Reads a CSV file produced by WriteCsv (header row + numeric body).
/// Fails with IoError if the file can't be opened and InvalidArgument on
/// ragged rows or non-numeric fields (both carry the line number).
Result<Dataset> ReadCsv(const std::string& path);

/// Serializes to a CSV string (used by tests; WriteCsv wraps this).
std::string ToCsvString(const Dataset& dataset, int precision = 10);

/// Parses a CSV string (header row + numeric body).
Result<Dataset> FromCsvString(const std::string& text);

/// Streaming, line-at-a-time CSV reader: the header is parsed eagerly,
/// records are served in caller-sized row blocks, and the table is never
/// resident in full. ReadCsv/FromCsvString are thin drains over this
/// reader; pipeline::CsvRecordSource adapts it to the RecordSource
/// interface for multi-pass out-of-core attacks.
class CsvChunkReader {
 public:
  /// Opens `path` and parses the header row. IoError if the file can't
  /// be opened; InvalidArgument on empty input.
  static Result<CsvChunkReader> Open(const std::string& path);

  /// A reader over an in-memory CSV string (tests, small tables).
  static Result<CsvChunkReader> FromString(std::string text);

  /// Attribute names from the header row, whitespace-trimmed.
  const std::vector<std::string>& attribute_names() const { return names_; }

  size_t num_attributes() const { return names_.size(); }

  /// Parses up to buffer->rows() records into the leading rows of
  /// `buffer` (whose column count must equal num_attributes()). Returns
  /// the number of rows filled; 0 means the input is exhausted. Blank
  /// lines are skipped; ragged or non-numeric rows fail with
  /// InvalidArgument naming the 1-based line.
  Result<size_t> ReadChunk(linalg::Matrix* buffer);

  /// Rewinds to the first record row, so the stream can be consumed
  /// again (the multi-pass pipeline contract). IoError if the underlying
  /// stream cannot seek.
  Status Reset();

  /// Physical lines consumed so far, header included (diagnostics).
  size_t line_number() const { return line_number_; }

 private:
  CsvChunkReader(std::unique_ptr<std::istream> stream, std::string origin,
                 std::vector<std::string> names, std::streampos body_start)
      : stream_(std::move(stream)),
        origin_(std::move(origin)),
        names_(std::move(names)),
        body_start_(body_start) {}

  static Result<CsvChunkReader> Create(std::unique_ptr<std::istream> stream,
                                       std::string origin);

  std::unique_ptr<std::istream> stream_;
  std::string origin_;  ///< Path or "<string>", for error messages.
  std::vector<std::string> names_;
  std::streampos body_start_;
  size_t line_number_ = 1;  ///< The header is line 1.
};

}  // namespace data
}  // namespace randrecon

#endif  // RANDRECON_DATA_CSV_H_
