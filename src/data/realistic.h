// Realistic correlated tables for the example programs. The paper's §3
// motivates the attack with a disguised *medical database*; since no real
// patient data ships with this repo (nor should it), we synthesize one
// from a latent-factor model: each record is driven by a few hidden
// factors (overall health, metabolic load, age) that induce exactly the
// strong inter-attribute correlations PCA-DR/BE-DR exploit.

#ifndef RANDRECON_DATA_REALISTIC_H_
#define RANDRECON_DATA_REALISTIC_H_

#include "common/result.h"
#include "data/dataset.h"
#include "stats/rng.h"

namespace randrecon {
namespace data {

/// Configuration of the latent-factor table generator.
struct LatentFactorSpec {
  /// Loading matrix: attributes x factors. Attribute j is
  /// mean[j] + Σ_k loadings(j,k) factor_k + idiosyncratic noise.
  linalg::Matrix loadings;
  /// Per-attribute means.
  linalg::Vector mean;
  /// Per-attribute idiosyncratic (uncorrelated) standard deviations.
  linalg::Vector idiosyncratic_stddev;
  /// Attribute names.
  std::vector<std::string> attribute_names;
};

/// Samples `num_records` rows from a latent-factor model with standard
/// normal factors. Fails with InvalidArgument on inconsistent shapes.
Result<Dataset> GenerateLatentFactorTable(const LatentFactorSpec& spec,
                                          size_t num_records,
                                          stats::Rng* rng);

/// The implied covariance of a latent-factor model:
/// L Lᵀ + diag(idiosyncratic²).
linalg::Matrix LatentFactorCovariance(const LatentFactorSpec& spec);

/// An 8-attribute synthetic patient table (age, bmi, systolic/diastolic
/// blood pressure, cholesterol, glucose, resting heart rate, annual
/// medical cost) whose attributes are strongly correlated through
/// age/health/metabolic factors. Used by the medical-records example.
LatentFactorSpec MedicalRecordsSpec();

/// A 6-attribute household finance table (income, rent, savings, debt,
/// credit score, monthly spend) used by the privacy-audit example.
LatentFactorSpec HouseholdFinanceSpec();

}  // namespace data
}  // namespace randrecon

#endif  // RANDRECON_DATA_REALISTIC_H_
