#include "data/timeseries.h"

#include <cmath>

#include "common/check.h"

namespace randrecon {
namespace data {

double Ar1StationaryVariance(const Ar1Spec& spec) {
  RR_CHECK_LT(std::fabs(spec.coefficient), 1.0);
  return spec.innovation_stddev * spec.innovation_stddev /
         (1.0 - spec.coefficient * spec.coefficient);
}

double Ar1Autocovariance(const Ar1Spec& spec, size_t lag) {
  return Ar1StationaryVariance(spec) *
         std::pow(spec.coefficient, static_cast<double>(lag));
}

Result<linalg::Vector> GenerateAr1Series(const Ar1Spec& spec, size_t length,
                                         stats::Rng* rng) {
  if (std::fabs(spec.coefficient) >= 1.0) {
    return Status::InvalidArgument(
        "GenerateAr1Series: |coefficient| must be < 1 for stationarity");
  }
  if (spec.innovation_stddev <= 0.0) {
    return Status::InvalidArgument(
        "GenerateAr1Series: innovation_stddev must be positive");
  }
  if (length == 0) {
    return Status::InvalidArgument("GenerateAr1Series: zero length");
  }
  linalg::Vector series(length);
  // Start from the stationary distribution so the whole series is
  // stationary (no burn-in needed).
  double state = rng->Gaussian(0.0, std::sqrt(Ar1StationaryVariance(spec)));
  series[0] = spec.mean + state;
  for (size_t t = 1; t < length; ++t) {
    state = spec.coefficient * state +
            rng->Gaussian(0.0, spec.innovation_stddev);
    series[t] = spec.mean + state;
  }
  return series;
}

linalg::Matrix EmbedSeries(const linalg::Vector& series, size_t window) {
  RR_CHECK_GE(window, 1u);
  RR_CHECK_LE(window, series.size()) << "window longer than series";
  const size_t num_windows = series.size() - window + 1;
  linalg::Matrix out(num_windows, window);
  for (size_t i = 0; i < num_windows; ++i) {
    double* row = out.row_data(i);
    for (size_t j = 0; j < window; ++j) row[j] = series[i + j];
  }
  return out;
}

linalg::Vector UnembedSeriesAverage(const linalg::Matrix& windows,
                                    size_t series_length) {
  const size_t window = windows.cols();
  RR_CHECK_GE(window, 1u);
  RR_CHECK_EQ(windows.rows(), series_length - window + 1)
      << "window matrix inconsistent with series length";
  linalg::Vector sums(series_length, 0.0);
  linalg::Vector counts(series_length, 0.0);
  for (size_t i = 0; i < windows.rows(); ++i) {
    const double* row = windows.row_data(i);
    for (size_t j = 0; j < window; ++j) {
      sums[i + j] += row[j];
      counts[i + j] += 1.0;
    }
  }
  for (size_t t = 0; t < series_length; ++t) sums[t] /= counts[t];
  return sums;
}

}  // namespace data
}  // namespace randrecon
