// Sharded multi-file column stores: one logical record stream spanning
// N `.rrcs` shards, described by a small versioned, checksummed manifest.
//
// A single column-store file (data/column_store.h) caps a logical stream
// at one file on one disk and gives batch schedulers nothing to
// decompose. The sharded store lifts both limits without touching the
// shard format: shards are ordinary sealed column stores, and the
// manifest (conventional extension ".rrcm", byte-level spec in
// docs/FORMAT.md §7) binds them into one stream by recording, per shard,
// its relative path, row span, and a seal digest derived from the
// shard's own header + block checksums. The column schema is recorded
// once and cross-checked against every shard's header.
//
//   * ShardedStoreWriter — streams row-major chunks in, rolls to a new
//     shard every `shard_rows` records, and seals shards (final-block
//     flush, header patch, seal-digest computation) in parallel batches.
//     The manifest is written last, on Close(): a crashed write leaves
//     shards without a manifest (or sealed shards and none), never a
//     manifest describing data that was not fully written.
//   * ShardedStoreReader — presents the shards as one O(1)-seekable
//     logical stream. Shards are opened lazily on first touch; opening a
//     shard validates its schema, row count and seal digest against the
//     manifest, so every corruption path (missing/truncated shard,
//     swapped shards, a shard resealed after the manifest was written,
//     row-span overlap/gap, schema mismatch) fails with a Status naming
//     the offending shard — never a crash or a silently wrong stream.
//
// The wrapped pipeline adapters (ShardedRecordSource, ShardedChunkSink)
// and the job-per-shard batch decomposition live in src/pipeline/ —
// like the single-file store, `data` does not know the pipeline exists.

#ifndef RANDRECON_DATA_SHARD_STORE_H_
#define RANDRECON_DATA_SHARD_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/result.h"
#include "data/column_store.h"
#include "data/dataset.h"
#include "linalg/matrix.h"

namespace randrecon {
namespace data {

/// The 8 magic bytes at offset 0 of every shard manifest ("RRSHMANF").
extern const char kShardManifestMagic[8];

/// The conventional manifest file extension ("<name>.rrcm"). Readers
/// sniff the magic, never the extension; writers and the sink factory
/// dispatch on it.
extern const char kShardManifestExtension[];

/// The manifest format version this library writes and the newest it
/// reads.
constexpr uint32_t kShardManifestVersion = 1;

/// One shard's manifest entry (docs/FORMAT.md §7.2).
struct ShardManifestEntry {
  /// Shard file path relative to the manifest's directory. Validated on
  /// read: non-empty, not absolute, no ".." components (a hostile
  /// manifest must not address files outside its directory tree).
  std::string relative_path;
  /// The shard holds logical records [row_begin, row_begin + row_count).
  /// Spans must tile [0, num_records) contiguously in shard order.
  uint64_t row_begin = 0;
  uint64_t row_count = 0;
  /// RRH64 over the shard's sealed header hash followed by its per-block
  /// checksums (ComputeShardSealDigest) — the shard's content identity.
  /// Binding it into the manifest catches swapped shard files (same
  /// schema and row count, different data) and a shard resealed after
  /// the manifest was written.
  uint64_t seal_digest = 0;
};

/// A parsed, validated manifest.
struct ShardManifest {
  uint32_t version = kShardManifestVersion;
  uint64_t num_records = 0;
  std::vector<std::string> column_names;
  std::vector<ShardManifestEntry> shards;
  /// The manifest file's own trailing RRH64 checksum (docs/FORMAT.md
  /// §7.3) — a content digest of the ENTIRE published snapshot
  /// (schema, row spans, every shard's seal digest), so two manifests
  /// are byte-identical iff their hashes match. Populated by
  /// ReadShardManifest; ignored by WriteShardManifest (which computes
  /// the hash from the serialized image). The attack scheduler uses it
  /// as the snapshot identity in versioned report series.
  uint64_t manifest_hash = 0;
};

/// `manifest_hash` rendered the way reports and errors spell digests:
/// 16 lowercase hex digits, "0x"-prefixed.
std::string ManifestHashHex(uint64_t manifest_hash);

/// The per-shard seal digest of the manifest format: RRH64 over the
/// little-endian u64 sequence [header_hash, block_hash 0, 1, ...] of a
/// sealed shard. Reads only the header and the 8-byte block trailers —
/// O(blocks), not O(bytes) — yet changes whenever the shard's schema,
/// geometry, record count or any block's content changes.
uint64_t ComputeShardSealDigest(const ColumnStoreReader& reader);

/// "<stem>.shard-00042.rrcs" — the shard naming scheme the writer uses.
std::string ShardFileName(const std::string& stem, size_t shard_index);

/// The shard-name stem for a manifest path: its filename minus the
/// ".rrcm" extension (the whole filename when the extension is absent).
std::string ShardStemForManifest(const std::string& manifest_path);

/// Directory prefix of `path` including the trailing '/' ("" when the
/// path has no directory part) — what shard relative paths join onto.
std::string ManifestDirectory(const std::string& manifest_path);

/// Parses and validates the manifest at `manifest_path`: magic, version,
/// manifest checksum, exact file size, path safety, and contiguous row
/// spans (an overlap or gap is an InvalidArgument naming the shard).
/// Does NOT open any shard — per-shard validation happens lazily in
/// ShardedStoreReader.
Result<ShardManifest> ReadShardManifest(const std::string& manifest_path);

/// Serializes `manifest` (docs/FORMAT.md §7) to `manifest_path` through
/// the write-temp → fsync → atomic-rename protocol (docs/FORMAT.md §8):
/// the manifest path never holds a partial manifest, whatever happens
/// mid-write. InvalidArgument on structural problems (no shards, bad
/// spans, unsafe paths), IoError on write/fsync/rename failure (the temp
/// file is removed best-effort then).
Status WriteShardManifest(const ShardManifest& manifest,
                          const std::string& manifest_path);

/// Writer options.
struct ShardedStoreOptions {
  /// Records per shard before rolling to the next file (>= 1). The final
  /// shard may hold fewer.
  size_t shard_rows = 1u << 20;
  /// Rows per block inside each shard (data::ColumnStoreOptions).
  size_t block_rows = kDefaultColumnStoreBlockRows;
  /// Rolled shards are kept unsealed and sealed in parallel batches of
  /// this many (>= 1) — each seal flushes the shard's final partial
  /// block, patches its header, and computes its seal digest.
  size_t seal_batch_shards = 16;
  /// Worker budget for the parallel seal batches. Seals are independent
  /// per shard, so the manifest is bitwise identical for any setting.
  ParallelOptions parallel;
};

/// Streams row-major record chunks into a manifest + N shard files.
///
/// Shard k is written to ShardFileName(stem, k) next to the manifest.
/// The manifest itself is written only by Close(), after every shard is
/// sealed and digested — so a crash mid-write never leaves a manifest
/// describing missing or unsealed data.
class ShardedStoreWriter {
 public:
  /// Creates shard 0 eagerly (so path/name problems surface here) and
  /// fails like ColumnStoreWriter::Create, plus InvalidArgument on
  /// shard_rows == 0 or seal_batch_shards == 0.
  static Result<ShardedStoreWriter> Create(
      const std::string& manifest_path,
      std::vector<std::string> column_names, ShardedStoreOptions options = {});

  /// The hollowed-out source is marked closed so its destructor will not
  /// try to seal shards it no longer owns.
  ShardedStoreWriter(ShardedStoreWriter&& other) noexcept;
  ShardedStoreWriter& operator=(ShardedStoreWriter&&) = delete;
  ShardedStoreWriter(const ShardedStoreWriter&) = delete;
  ShardedStoreWriter& operator=(const ShardedStoreWriter&) = delete;
  ~ShardedStoreWriter();

  /// Appends the leading `num_rows` rows of row-major `chunk`, rolling
  /// to new shards as the target fills.
  Status Append(const linalg::Matrix& chunk, size_t num_rows);

  /// Seals every remaining shard (in parallel), writes the manifest, and
  /// closes. Idempotent. On failure the manifest is NOT written — the
  /// partial output is unreadable as a sharded store by construction.
  Status Close();

  /// Records appended so far.
  size_t rows_written() const { return rows_written_; }

  /// Shards started so far (sealed + in progress).
  size_t num_shards() const { return entries_.size(); }

  size_t num_attributes() const { return names_.size(); }

  /// Paths of every file this writer has created so far (shards, plus
  /// the manifest after a successful Close) — what a caller must remove
  /// to clean up a failed conversion.
  std::vector<std::string> output_paths() const;

 private:
  ShardedStoreWriter(std::string manifest_path, std::string directory,
                     std::string stem, std::vector<std::string> names,
                     ShardedStoreOptions options);

  /// Starts shard `entries_.size()` as the current writer.
  Status StartShard();

  /// Moves the current shard (if any) onto the pending-seal queue.
  void RollCurrentShard();

  /// Seals every pending shard in parallel and records its digest.
  Status SealPendingShards();

  std::string manifest_path_;
  std::string directory_;  ///< Includes the trailing '/', or "".
  std::string stem_;
  std::vector<std::string> names_;
  ShardedStoreOptions options_;
  std::vector<ShardManifestEntry> entries_;
  /// The shard currently being appended to (entry entries_.back()).
  std::unique_ptr<ColumnStoreWriter> current_;
  size_t current_rows_ = 0;
  /// Rolled-but-unsealed shards: pair of (entry index, writer).
  std::vector<std::pair<size_t, std::unique_ptr<ColumnStoreWriter>>> pending_;
  size_t rows_written_ = 0;
  /// First seal/write failure, sticky: once a shard failed to seal the
  /// store is unrecoverable, so every later Append/Close (including the
  /// destructor's) re-reports it and the manifest is NEVER written — a
  /// failed write must not leave a file claiming the store is complete.
  Status deferred_error_;
  bool closed_ = false;
  bool manifest_written_ = false;
};

/// Reads a manifest + shards as one logical O(1)-seekable record stream.
///
/// Shards are opened lazily: the manifest is parsed and span-validated
/// up front, each shard file is mapped and checked (schema, row count,
/// seal digest) on first touch. Move-only and single-threaded, like
/// ColumnStoreReader; concurrent consumers should each Open() the
/// manifest.
class ShardedStoreReader {
 public:
  /// Fails like ReadShardManifest; `store_options` applies to every
  /// shard open (eager whole-shard verification, block parallelism).
  static Result<ShardedStoreReader> Open(
      const std::string& manifest_path,
      ColumnStoreReadOptions store_options = {});

  ShardedStoreReader(ShardedStoreReader&&) = default;
  ShardedStoreReader& operator=(ShardedStoreReader&&) = default;
  ShardedStoreReader(const ShardedStoreReader&) = delete;
  ShardedStoreReader& operator=(const ShardedStoreReader&) = delete;

  size_t num_records() const {
    return static_cast<size_t>(manifest_.num_records);
  }
  size_t num_attributes() const { return manifest_.column_names.size(); }
  size_t num_shards() const { return manifest_.shards.size(); }
  const std::vector<std::string>& attribute_names() const {
    return manifest_.column_names;
  }
  const ShardManifest& manifest() const { return manifest_; }

  /// Absolute-ish path of shard `shard` (manifest directory + relative
  /// path) — what a per-shard batch job opens directly.
  std::string shard_path(size_t shard) const;

  /// Fills the leading rows of `buffer` with logical records
  /// [row_begin, row_begin + num_rows), opening the spanned shards on
  /// demand. Errors name the offending shard.
  Status ReadRows(size_t row_begin, size_t num_rows, linalg::Matrix* buffer);

  /// The lazily-opened, manifest-validated reader for shard `shard` —
  /// columnar consumers iterate its blocks zero-copy. The pointer stays
  /// valid for the life of this ShardedStoreReader.
  Result<ColumnStoreReader*> shard(size_t shard);

 private:
  ShardedStoreReader(ShardManifest manifest, std::string directory,
                     ColumnStoreReadOptions store_options);

  /// "sharded store '<manifest>': shard K ('<path>'): " — every
  /// shard-level failure is prefixed so the offending shard is named.
  std::string ShardPrefix(size_t shard) const;

  ShardManifest manifest_;
  std::string manifest_path_;
  std::string directory_;
  ColumnStoreReadOptions store_options_;
  /// Lazily opened shard readers (null until first touch). unique_ptr
  /// keeps ColumnStoreReader pointers stable across vector growth.
  std::vector<std::unique_ptr<ColumnStoreReader>> shards_;
};

/// Writes a whole Dataset as a sharded store (manifest + shards).
Status WriteShardedStore(const Dataset& dataset,
                         const std::string& manifest_path,
                         ShardedStoreOptions options = {});

/// Reads a whole sharded store into memory as a Dataset.
Result<Dataset> ReadShardedStoreDataset(const std::string& manifest_path);

/// Cleanup of a sharded-store output (after a failed write or
/// verification): removes the manifest if present, every shard the
/// manifest names (when it parses), and every conventionally-named
/// "<stem>.shard-NNNNN.rrcs" file — including orphan ".tmp" and
/// ".quarantined" variants left by a crashed writer or a recovery pass —
/// counting up from 0 until the first index with no file under any of
/// the three names. OK when everything that existed was removed; IoError
/// listing every path that existed but could not be removed (callers
/// that only want the old best-effort behavior may ignore the return).
/// For tools like convert_csv that must not leave a plausible-looking
/// partial store behind.
Status RemoveShardedStoreFiles(const std::string& manifest_path);

}  // namespace data
}  // namespace randrecon

#endif  // RANDRECON_DATA_SHARD_STORE_H_
