#include "data/dataset.h"

#include <unordered_set>

namespace randrecon {
namespace data {

Dataset::Dataset(linalg::Matrix records) : records_(std::move(records)) {
  names_.reserve(records_.cols());
  for (size_t j = 0; j < records_.cols(); ++j) {
    names_.push_back("a" + std::to_string(j));
  }
}

Result<Dataset> Dataset::Create(linalg::Matrix records,
                                std::vector<std::string> attribute_names) {
  if (attribute_names.size() != records.cols()) {
    return Status::InvalidArgument(
        "Dataset: " + std::to_string(attribute_names.size()) +
        " names for " + std::to_string(records.cols()) + " columns");
  }
  std::unordered_set<std::string> seen;
  for (const std::string& name : attribute_names) {
    if (!seen.insert(name).second) {
      return Status::InvalidArgument("Dataset: duplicate attribute name '" +
                                     name + "'");
    }
  }
  return Dataset(std::move(records), std::move(attribute_names));
}

Result<size_t> Dataset::AttributeIndex(const std::string& name) const {
  for (size_t j = 0; j < names_.size(); ++j) {
    if (names_[j] == name) return j;
  }
  return Status::NotFound("Dataset: no attribute named '" + name + "'");
}

}  // namespace data
}  // namespace randrecon
