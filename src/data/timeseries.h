// Serially dependent data (§3, second bullet): "for certain types of
// data, such as the time series data, there exists serial dependency
// among the samples. Even after perturbing the data with random noise,
// this dependency can still be recovered."
//
// This module provides the AR(1) generator used to demonstrate that
// claim, plus the sliding-window embedding that turns one series into a
// record matrix whose *attribute* correlation encodes the *serial*
// correlation — letting the paper's own attacks run unchanged.

#ifndef RANDRECON_DATA_TIMESERIES_H_
#define RANDRECON_DATA_TIMESERIES_H_

#include "common/result.h"
#include "linalg/matrix.h"
#include "stats/rng.h"

namespace randrecon {
namespace data {

/// First-order autoregressive process
///   x_t = mean + coefficient · (x_{t−1} − mean) + ε_t,
///   ε_t ~ N(0, innovation_stddev²).
struct Ar1Spec {
  /// |coefficient| < 1 (stationarity); 0 = white noise, →1 = near random
  /// walk (maximum serial dependence).
  double coefficient = 0.9;
  /// Innovation standard deviation.
  double innovation_stddev = 1.0;
  /// Process mean.
  double mean = 0.0;
};

/// Stationary variance of the process: innovation² / (1 − coefficient²).
double Ar1StationaryVariance(const Ar1Spec& spec);

/// Theoretical autocovariance at `lag`: stationary-variance · ρ^|lag|.
double Ar1Autocovariance(const Ar1Spec& spec, size_t lag);

/// Samples a length-`length` series started from the stationary
/// distribution. Fails with InvalidArgument for |coefficient| >= 1,
/// non-positive stddev or zero length.
Result<linalg::Vector> GenerateAr1Series(const Ar1Spec& spec, size_t length,
                                         stats::Rng* rng);

/// Sliding-window embedding: row i of the result is
/// (series[i], ..., series[i + window − 1]); shape
/// (length − window + 1) x window. RR_CHECKs window ∈ [1, length].
linalg::Matrix EmbedSeries(const linalg::Vector& series, size_t window);

/// Inverse of EmbedSeries under averaging: each time point's value is
/// the mean of its estimates across all windows that contain it.
/// RR_CHECKs that shapes are consistent with some EmbedSeries call.
linalg::Vector UnembedSeriesAverage(const linalg::Matrix& windows,
                                    size_t series_length);

}  // namespace data
}  // namespace randrecon

#endif  // RANDRECON_DATA_TIMESERIES_H_
