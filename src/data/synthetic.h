// Synthetic data generation following §7.1 of the paper:
//
//   1. Specify Λ (a diagonal of eigenvalues).
//   2. Generate a random orthogonal Q (Gram-Schmidt of a Gaussian draw).
//   3. Form the covariance C = Q Λ Qᵀ.
//   4. Sample X ~ N(µ, C)  (the mvnrnd step).
//
// The generator returns the ground-truth covariance/eigenstructure next to
// the data so experiments can compare estimated quantities against truth.

#ifndef RANDRECON_DATA_SYNTHETIC_H_
#define RANDRECON_DATA_SYNTHETIC_H_

#include "common/result.h"
#include "data/dataset.h"
#include "stats/philox.h"
#include "stats/rng.h"

namespace randrecon {
namespace data {

/// Declarative description of a §7.1 synthetic dataset.
struct SyntheticDatasetSpec {
  /// Eigenvalues of the covariance matrix (all >= 0). Its length defines
  /// the number of attributes m.
  linalg::Vector eigenvalues;
  /// Mean vector; empty means zero mean (the paper's setting).
  linalg::Vector mean;
};

/// A generated dataset bundled with its ground truth.
struct SyntheticDataset {
  Dataset dataset;              ///< X ~ N(mean, covariance), n x m.
  linalg::Matrix covariance;    ///< C = Q Λ Qᵀ exactly as constructed.
  linalg::Matrix eigenvectors;  ///< Q (columns are eigenvectors).
  linalg::Vector eigenvalues;   ///< Λ diagonal, in spec order.
  linalg::Vector mean;          ///< The mean used.
};

/// Runs the §7.1 recipe. Fails with InvalidArgument on empty/negative
/// eigenvalues or a mean of the wrong length.
Result<SyntheticDataset> GenerateSpectrumDataset(
    const SyntheticDatasetSpec& spec, size_t num_records, stats::Rng* rng);

/// Batch-substrate variant for large populations: the orthogonal basis
/// still comes from the scalar `rng` (Gram–Schmidt is m x m and cheap),
/// but the n x m mvnrnd draw runs through the vectorized counter
/// substrate (MultivariateNormalSampler::SampleMatrix over `gen`).
Result<SyntheticDataset> GenerateSpectrumDataset(
    const SyntheticDatasetSpec& spec, size_t num_records, stats::Rng* rng,
    stats::Philox* gen);

/// Builds the two-level spectrum used by every experiment: the first
/// `num_principal` eigenvalues equal `principal_value`, the remaining
/// m − p equal `residual_value`.
linalg::Vector TwoLevelSpectrum(size_t num_attributes, size_t num_principal,
                                double principal_value, double residual_value);

/// Builds a two-level spectrum whose *trace* is pinned to
/// `num_attributes * per_attribute_variance` (the Eq. 12 trick that holds
/// the UDR baseline constant across sweep points): residuals are fixed at
/// `residual_value` and the principal value is solved for. RR_CHECKs that
/// the resulting principal value stays >= residual_value.
linalg::Vector TwoLevelSpectrumWithTrace(size_t num_attributes,
                                         size_t num_principal,
                                         double residual_value,
                                         double per_attribute_variance);

/// Σλᵢ — by Eq. 12 this equals the covariance trace, i.e. the summed
/// attribute variances.
double SpectrumTrace(const linalg::Vector& eigenvalues);

/// A clustered (mixture-of-Gaussians) dataset for the §6 "other
/// distributions" extension: records come from `cluster_means.rows()`
/// clusters with equal mixing weights, all sharing one within-cluster
/// covariance built from `within_cluster_eigenvalues` via the §7.1
/// recipe. Ground truth (per-record cluster labels, shared covariance)
/// is returned for evaluation.
struct MixtureDataset {
  Dataset dataset;                    ///< n x m records.
  linalg::Matrix cluster_means;      ///< K x m.
  linalg::Matrix within_covariance;  ///< Shared m x m covariance.
  std::vector<size_t> labels;        ///< True cluster of each record.
};

/// Generates a MixtureDataset. Fails with InvalidArgument on empty
/// inputs or dimension mismatches.
Result<MixtureDataset> GenerateGaussianMixtureDataset(
    const linalg::Matrix& cluster_means,
    const linalg::Vector& within_cluster_eigenvalues, size_t num_records,
    stats::Rng* rng);

}  // namespace data
}  // namespace randrecon

#endif  // RANDRECON_DATA_SYNTHETIC_H_
