// Binary columnar record store: the native storage backend for
// out-of-core attacks.
//
// CSV ingest parses every field through strtod at ~10^2 ns/value, which
// dominates wall clock once the covariance pass and record generation run
// at memory bandwidth (PR 1-3). The column store replaces parsing with a
// versioned little-endian binary format (magic, checksummed header,
// fixed-size row blocks of f64 columns with per-block checksums) read
// through a zero-copy memory mapping: ingest becomes a strided gather out
// of the page cache instead of a parse.
//
// The on-disk layout is specified byte-by-byte in docs/FORMAT.md — the
// format is implementable from that document alone, and the reader/writer
// tests cite it. Fixed-size blocks make every record's byte offset a
// closed-form function of its index, so readers are O(1)-seekable and
// trivially chunk-size invariant; within a block each column is
// contiguous, so columnar consumers (moments, quantizers) can run
// straight over mapped memory via BlockColumn().
//
//   * ColumnStoreWriter  — streams row-major chunks in, buffers one
//     block, writes the header placeholder eagerly and patches the
//     record count + header checksum on Close(). Wrapped by
//     pipeline::ColumnStoreChunkSink so any pipeline can emit a store.
//   * ColumnStoreReader  — memory-maps the file (POSIX mmap, read-only),
//     validates the header eagerly and each block's checksum lazily on
//     first touch. Wrapped by pipeline::ColumnStoreRecordSource as a
//     rewindable RecordSource.
//
// Every corruption path (truncation, bad magic/version, checksum
// mismatch, header/row-count disagreement) fails with a Status naming
// the offending block or byte offset — never a crash; see
// tests/data/column_store_test.cc.

#ifndef RANDRECON_DATA_COLUMN_STORE_H_
#define RANDRECON_DATA_COLUMN_STORE_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/result.h"
#include "data/dataset.h"
#include "linalg/matrix.h"

namespace randrecon {
namespace data {

/// The 8 magic bytes at offset 0 of every column-store file ("RRCOLSTR").
extern const char kColumnStoreMagic[8];

/// The format version this library writes and the newest it reads.
constexpr uint32_t kColumnStoreVersion = 1;

/// Default rows per block. 4096 rows x 8 bytes keeps one column slab at
/// 32 KiB (L1-resident for the gather) and matches the pipeline's default
/// chunk and the moment accumulator's staging block.
constexpr size_t kDefaultColumnStoreBlockRows = 4096;

/// RRH64: the checksum function of the v1 format (docs/FORMAT.md §4) —
/// a 4-lane 64-bit mixing hash over little-endian words, chosen over
/// table-driven CRC32 so checksum verification runs near memory
/// bandwidth without per-arch intrinsics. Public so tests and external
/// tools can re-seal files after editing header fields.
uint64_t ColumnStoreHash(const void* data, size_t size);

/// Writer options.
struct ColumnStoreOptions {
  /// Rows per fixed-size block (must be >= 1). Every block occupies
  /// num_attributes * block_rows * 8 + 8 bytes on disk; the final block
  /// is zero-padded.
  size_t block_rows = kDefaultColumnStoreBlockRows;
};

/// Streams row-major record chunks into a column-store file.
///
/// All bytes stream into the temp file data::TempPathFor(path)
/// ("<path>.tmp"); Close() flushes the final partial block, patches the
/// record count + the real header checksum, fsyncs, and atomically
/// renames the temp over `path` (then fsyncs the parent directory) —
/// the rename protocol of docs/FORMAT.md §8. `path` therefore either
/// does not exist or holds a complete sealed store at every instant; a
/// crash leaves at worst an orphan ".tmp" whose header carries an
/// intentionally mismatched checksum, so even a reader pointed straight
/// at the temp rejects it. A write or seal failure is sticky: every
/// later Append/Close re-reports it, and the failed Close removes the
/// temp file (best-effort) instead of leaving it behind.
class ColumnStoreWriter {
 public:
  /// Opens `path`'s temp file for writing and emits the unsealed header.
  /// Fails with InvalidArgument on empty/duplicate names or
  /// block_rows == 0, and IoError if the temp file can't be created.
  static Result<ColumnStoreWriter> Create(const std::string& path,
                                          std::vector<std::string> column_names,
                                          ColumnStoreOptions options = {});

  ColumnStoreWriter(ColumnStoreWriter&& other) noexcept;
  /// Best-effort Close() of the store this writer was building (mirroring
  /// the destructor — a half-written file must be sealed, not silently
  /// abandoned unsealed) before adopting `other`'s state. Call Close()
  /// explicitly first to observe that store's write errors.
  ColumnStoreWriter& operator=(ColumnStoreWriter&& other) noexcept;
  ColumnStoreWriter(const ColumnStoreWriter&) = delete;
  ColumnStoreWriter& operator=(const ColumnStoreWriter&) = delete;
  ~ColumnStoreWriter();

  /// Appends the leading `num_rows` rows of row-major `chunk` (whose
  /// column count must equal the name count) to the stream.
  Status Append(const linalg::Matrix& chunk, size_t num_rows);

  /// Appends `num_rows` row-major records at `rows` (num_attributes()
  /// values each) — the pointer form sharded writers slice chunks with.
  Status Append(const double* rows, size_t num_rows);

  /// Flushes the final partial block, patches the header record count and
  /// checksum, fsyncs, and atomically renames the temp file to the final
  /// path. Idempotent; IoError on write/fsync/rename failure (the temp
  /// file is removed best-effort then — a failed store never reaches its
  /// final name).
  Status Close();

  /// Records appended so far.
  size_t rows_written() const { return rows_written_; }

  size_t num_attributes() const { return names_.size(); }

 private:
  ColumnStoreWriter(std::ofstream file, std::string path,
                    std::vector<std::string> names, size_t block_rows,
                    size_t header_bytes, std::string header_prefix);

  /// Writes the buffered block (zero-padded to full size) + checksum.
  /// Failures are sticky (recorded in deferred_error_).
  Status FlushBlock();

  /// Close()'s body: flush, patch, fsync, rename. Factored out so Close
  /// can clean up the temp file on any failure path.
  Status Seal();

  std::ofstream file_;
  std::string path_;       ///< The final path the sealed store renames to.
  std::string temp_path_;  ///< TempPathFor(path_): where bytes stream.
  std::vector<std::string> names_;
  size_t block_rows_;
  size_t header_bytes_;
  /// Header bytes before the checksum field, with the record count still
  /// zeroed — Close() patches the count in this image and re-hashes it.
  std::string header_prefix_;
  /// One block in columnar layout: column j at [j * block_rows, ...).
  std::vector<double> block_;
  size_t rows_in_block_ = 0;
  size_t rows_written_ = 0;
  /// First write failure, sticky: a store that lost a block must not
  /// seal as a silently truncated stream.
  Status deferred_error_;
  bool closed_ = false;
};

/// Reader knobs.
struct ColumnStoreReadOptions {
  /// Verify EVERY block checksum at Open (archival reads: pay the whole
  /// scan up front, fail fast, and serve later reads without per-touch
  /// verification). The default verifies lazily on first touch.
  bool eager_verify = false;
  /// Worker budget for block-parallel verification and gathers. Results
  /// are bitwise identical for any setting (disjoint per-block work, no
  /// cross-block floating-point accumulation).
  ParallelOptions parallel;
};

/// Memory-mapped column-store reader: zero-copy in the sense that file
/// bytes are consumed straight from the page cache — no read() buffering,
/// no parsing; ReadRows() is a strided gather from mapped columns into
/// the caller's row-major buffer. A ReadRows spanning many blocks
/// verifies and gathers them in parallel (per-block work is disjoint, so
/// the filled buffer is bitwise identical for any thread count).
///
/// Open() validates magic, version, header checksum and the exact file
/// size implied by the header (which catches both truncation and a
/// header/row-count disagreement); block checksums are verified lazily,
/// once, on first touch — or all up front with
/// ColumnStoreReadOptions::eager_verify. Instances are move-only and
/// single-threaded (the lazy verification bitmap is unsynchronized
/// between calls; the block-parallel paths touch disjoint blocks);
/// concurrent readers should each Open() the file — the kernel shares
/// the pages.
class ColumnStoreReader {
 public:
  /// Maps `path` and validates its header. IoError if the file can't be
  /// opened or mapped, InvalidArgument naming the offending field/offset
  /// on any structural corruption.
  static Result<ColumnStoreReader> Open(const std::string& path,
                                        ColumnStoreReadOptions options = {});

  ColumnStoreReader(ColumnStoreReader&& other) noexcept;
  ColumnStoreReader& operator=(ColumnStoreReader&& other) noexcept;
  ColumnStoreReader(const ColumnStoreReader&) = delete;
  ColumnStoreReader& operator=(const ColumnStoreReader&) = delete;
  ~ColumnStoreReader();

  size_t num_records() const { return num_records_; }
  size_t num_attributes() const { return names_.size(); }
  size_t block_rows() const { return block_rows_; }
  size_t num_blocks() const { return num_blocks_; }
  const std::vector<std::string>& attribute_names() const { return names_; }

  /// Fills the leading rows of `buffer` (whose column count must equal
  /// num_attributes()) with records [row_begin, row_begin + num_rows).
  /// The range must lie within the store and num_rows within the buffer.
  /// InvalidArgument (naming block and offset) on a checksum mismatch.
  Status ReadRows(size_t row_begin, size_t num_rows, linalg::Matrix* buffer);

  /// ReadRows into a raw row-major buffer of num_attributes()-wide rows —
  /// the pointer form sharded readers target mid-buffer with.
  Status ReadRowsInto(size_t row_begin, size_t num_rows, double* rows);

  /// Zero-copy pointer to column `column` of block `block` — block-local
  /// row r of that column is ptr[r], valid for rows_in_block(block) rows.
  /// Verifies the block's checksum on first touch.
  Result<const double*> BlockColumn(size_t block, size_t column);

  /// Valid records in `block` (block_rows() except for a final partial).
  size_t rows_in_block(size_t block) const;

  /// The sealed header checksum (docs/FORMAT.md §2.2) — together with the
  /// per-block checksums this is the store's content identity, which the
  /// sharded-store manifest binds into its per-shard seal digest.
  uint64_t header_hash() const { return header_hash_; }

  /// The STORED checksum of `block` (docs/FORMAT.md §3), read without
  /// verifying it — manifest seal digests hash these, so a corrupt block
  /// changes the digest whether or not anyone has touched its data.
  uint64_t stored_block_hash(size_t block) const;

 private:
  ColumnStoreReader() = default;

  /// Lazily verifies block `block`'s checksum (docs/FORMAT.md §3).
  Status VerifyBlock(size_t block);

  /// Verifies every unverified block in [block_begin, block_end) —
  /// block-parallel; on failure returns the LOWEST failing block's error
  /// so the diagnostic is deterministic across thread counts.
  Status VerifyBlocksInRange(size_t block_begin, size_t block_end);

  /// Unmaps and closes, leaving the reader empty (moves, destructor).
  void ReleaseMapping();

  const uint8_t* block_payload(size_t block) const {
    return mapping_ + header_bytes_ + block * block_stride_;
  }

  std::string path_;
  int fd_ = -1;
  const uint8_t* mapping_ = nullptr;
  size_t file_size_ = 0;
  size_t header_bytes_ = 0;
  size_t num_records_ = 0;
  size_t block_rows_ = 0;
  size_t num_blocks_ = 0;
  size_t block_stride_ = 0;  ///< Payload + trailing checksum, in bytes.
  uint64_t header_hash_ = 0;
  ColumnStoreReadOptions options_;
  std::vector<std::string> names_;
  std::vector<uint8_t> block_verified_;
};

/// Writes a whole Dataset as a column store (bitwise-exact f64 values,
/// unlike CSV at finite precision).
Status WriteColumnStore(const Dataset& dataset, const std::string& path,
                        ColumnStoreOptions options = {});

/// Reads a whole column store into memory as a Dataset.
Result<Dataset> ReadColumnStoreDataset(const std::string& path);

/// Record-file formats the auto-detecting loaders understand.
enum class RecordFileFormat {
  kCsv,
  kColumnStore,
  /// A sharded-store manifest (data/shard_store.h) naming N `.rrcs`
  /// shards that together form one logical stream.
  kShardManifest,
};

/// Sniffs the leading magic bytes of `path`: kColumnStore iff they equal
/// kColumnStoreMagic, kShardManifest iff they equal kShardManifestMagic
/// (data/shard_store.h), else kCsv (CSV has no magic). IoError if the
/// file can't be opened.
Result<RecordFileFormat> DetectRecordFileFormat(const std::string& path);

/// Loads `path` as a Dataset whatever its format (sniffed, not by
/// extension) — the in-memory counterpart of pipeline::OpenRecordSource.
Result<Dataset> ReadRecords(const std::string& path);

}  // namespace data
}  // namespace randrecon

#endif  // RANDRECON_DATA_COLUMN_STORE_H_
