#include "data/csv.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace randrecon {
namespace data {

std::string ToCsvString(const Dataset& dataset, int precision) {
  std::ostringstream out;
  out << JoinStrings(dataset.attribute_names(), ",") << "\n";
  const linalg::Matrix& records = dataset.records();
  for (size_t i = 0; i < records.rows(); ++i) {
    for (size_t j = 0; j < records.cols(); ++j) {
      if (j > 0) out << ",";
      out << FormatDouble(records(i, j), precision);
    }
    out << "\n";
  }
  return out.str();
}

Status WriteCsv(const Dataset& dataset, const std::string& path,
                int precision) {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::IoError("WriteCsv: cannot open '" + path + "' for writing");
  }
  file << ToCsvString(dataset, precision);
  file.close();
  if (file.fail()) {
    return Status::IoError("WriteCsv: write to '" + path + "' failed");
  }
  return Status::OK();
}

Result<Dataset> FromCsvString(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("FromCsvString: empty input");
  }
  std::vector<std::string> names;
  for (std::string& field : SplitString(line, ',')) {
    names.push_back(TrimWhitespace(field));
  }
  const size_t m = names.size();

  std::vector<double> values;
  size_t n = 0;
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (TrimWhitespace(line).empty()) continue;
    const std::vector<std::string> fields = SplitString(line, ',');
    if (fields.size() != m) {
      return Status::InvalidArgument(
          "FromCsvString: line " + std::to_string(line_number) + " has " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(m));
    }
    for (const std::string& field : fields) {
      double value = 0.0;
      if (!ParseDouble(field, &value)) {
        return Status::InvalidArgument(
            "FromCsvString: non-numeric field '" + field + "' on line " +
            std::to_string(line_number));
      }
      values.push_back(value);
    }
    ++n;
  }
  return Dataset::Create(linalg::Matrix::FromRowMajor(n, m, std::move(values)),
                         std::move(names));
}

Result<Dataset> ReadCsv(const std::string& path) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::IoError("ReadCsv: cannot open '" + path + "'");
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  return FromCsvString(buffer.str());
}

}  // namespace data
}  // namespace randrecon
