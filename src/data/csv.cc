#include "data/csv.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace randrecon {
namespace data {
namespace {

/// getline that also strips one trailing '\r', so CRLF exports parse the
/// same as LF ones. A final line without any newline is still returned.
bool ReadCsvLine(std::istream& in, std::string* line) {
  if (!std::getline(in, *line)) return false;
  if (!line->empty() && line->back() == '\r') line->pop_back();
  return true;
}

/// Drains a reader into a full Dataset (the non-streaming entry points).
Result<Dataset> DrainReader(CsvChunkReader reader) {
  const size_t m = reader.num_attributes();
  linalg::Matrix buffer(1024, m);
  std::vector<double> values;
  size_t n = 0;
  for (;;) {
    RR_ASSIGN_OR_RETURN(const size_t rows, reader.ReadChunk(&buffer));
    if (rows == 0) break;
    values.insert(values.end(), buffer.data(), buffer.data() + rows * m);
    n += rows;
  }
  return Dataset::Create(linalg::Matrix::FromRowMajor(n, m, std::move(values)),
                         reader.attribute_names());
}

}  // namespace

std::string ToCsvString(const Dataset& dataset, int precision) {
  std::ostringstream out;
  out << JoinStrings(dataset.attribute_names(), ",") << "\n";
  const linalg::Matrix& records = dataset.records();
  for (size_t i = 0; i < records.rows(); ++i) {
    for (size_t j = 0; j < records.cols(); ++j) {
      if (j > 0) out << ",";
      out << FormatDouble(records(i, j), precision);
    }
    out << "\n";
  }
  return out.str();
}

Status WriteCsv(const Dataset& dataset, const std::string& path,
                int precision) {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::IoError("WriteCsv: cannot open '" + path + "' for writing");
  }
  file << ToCsvString(dataset, precision);
  file.close();
  if (file.fail()) {
    return Status::IoError("WriteCsv: write to '" + path + "' failed");
  }
  return Status::OK();
}

Result<CsvChunkReader> CsvChunkReader::Create(
    std::unique_ptr<std::istream> stream, std::string origin) {
  std::string line;
  if (!ReadCsvLine(*stream, &line)) {
    return Status::InvalidArgument(origin + ": empty input");
  }
  std::vector<std::string> names;
  for (std::string& field : SplitString(line, ',')) {
    names.push_back(TrimWhitespace(field));
  }
  // A header-only input without a trailing newline leaves eofbit set;
  // clear it so tellg() records a seekable body offset.
  if (stream->eof()) stream->clear();
  const std::streampos body_start = stream->tellg();
  return CsvChunkReader(std::move(stream), std::move(origin), std::move(names),
                        body_start);
}

Result<CsvChunkReader> CsvChunkReader::Open(const std::string& path) {
  auto file = std::make_unique<std::ifstream>(path);
  if (!file->is_open()) {
    return Status::IoError("CsvChunkReader: cannot open '" + path + "'");
  }
  return Create(std::move(file), "'" + path + "'");
}

Result<CsvChunkReader> CsvChunkReader::FromString(std::string text) {
  return Create(std::make_unique<std::istringstream>(std::move(text)),
                "<string>");
}

Result<size_t> CsvChunkReader::ReadChunk(linalg::Matrix* buffer) {
  RR_CHECK_EQ(buffer->cols(), num_attributes())
      << "CsvChunkReader: chunk buffer width mismatch";
  const size_t m = num_attributes();
  size_t filled = 0;
  std::string line;
  while (filled < buffer->rows() && ReadCsvLine(*stream_, &line)) {
    ++line_number_;
    if (TrimWhitespace(line).empty()) continue;
    const std::vector<std::string> fields = SplitString(line, ',');
    if (fields.size() != m) {
      return Status::InvalidArgument(
          "csv " + origin_ + ": line " + std::to_string(line_number_) +
          " has " + std::to_string(fields.size()) + " fields, expected " +
          std::to_string(m));
    }
    double* row = buffer->row_data(filled);
    for (size_t j = 0; j < m; ++j) {
      if (!ParseDouble(fields[j], &row[j])) {
        return Status::InvalidArgument(
            "csv " + origin_ + ": non-numeric field '" + fields[j] +
            "' on line " + std::to_string(line_number_));
      }
    }
    ++filled;
  }
  // getline returns false for both end-of-input and a hard read error;
  // only the former is a clean (possibly shorter) chunk.
  if (stream_->bad()) {
    return Status::IoError("csv " + origin_ + ": read error near line " +
                           std::to_string(line_number_));
  }
  return filled;
}

Status CsvChunkReader::Reset() {
  stream_->clear();
  stream_->seekg(body_start_);
  if (stream_->fail()) {
    return Status::IoError("CsvChunkReader: cannot rewind " + origin_);
  }
  line_number_ = 1;
  return Status::OK();
}

Result<Dataset> FromCsvString(const std::string& text) {
  RR_ASSIGN_OR_RETURN(CsvChunkReader reader, CsvChunkReader::FromString(text));
  return DrainReader(std::move(reader));
}

Result<Dataset> ReadCsv(const std::string& path) {
  RR_ASSIGN_OR_RETURN(CsvChunkReader reader, CsvChunkReader::Open(path));
  return DrainReader(std::move(reader));
}

}  // namespace data
}  // namespace randrecon
