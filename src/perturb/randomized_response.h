// Randomized Response — the paper's §2 second randomization family:
// "The randomized response is mainly used to deal with categorical
//  data ... All these approaches are based on the Randomized Response
//  technique proposed by Warner."
//
// Two schemes are provided, plus the aggregate estimators that make the
// disguised data minable (the categorical analogue of the Agrawal-
// Srikant density reconstruction):
//
//  * WarnerScheme — one binary attribute: each respondent reports the
//    truth with probability θ and the opposite with 1 − θ.
//  * MaskScheme — MASK (Rizvi & Haritsa, VLDB'02): every bit of a
//    transaction row is independently kept with probability θ, flipped
//    with 1 − θ; supports of items and itemsets are recovered by
//    inverting the flip channel.
//
// Both publish θ: like additive randomization, the channel is public
// and only the coin flips are secret. The bench ext_randomized_response
// quantifies the same privacy/utility trade-off the paper studies for
// numeric data: aggregates converge while per-record disclosure is
// bounded by the channel's posterior.

#ifndef RANDRECON_PERTURB_RANDOMIZED_RESPONSE_H_
#define RANDRECON_PERTURB_RANDOMIZED_RESPONSE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"
#include "stats/philox.h"
#include "stats/rng.h"

namespace randrecon {
namespace perturb {

/// A 0/1 data column or transaction matrix entrywise type.
using BitVector = std::vector<uint8_t>;

/// Warner's 1965 single-question randomized response.
class WarnerScheme {
 public:
  /// `truth_probability` θ ∈ (0, 1), θ ≠ 0.5 (θ = 0.5 destroys all
  /// information and makes estimation impossible).
  static Result<WarnerScheme> Create(double truth_probability);

  /// Disguises one respondent's true bit.
  uint8_t Disguise(uint8_t true_bit, stats::Rng* rng) const;

  /// Disguises a whole column.
  BitVector DisguiseAll(const BitVector& true_bits, stats::Rng* rng) const;

  /// Batch entry point: one vectorized Bernoulli(θ) fill decides every
  /// respondent's truth coin (consumes true_bits.size() substrate draws
  /// from gen's cursor). Bit i flips iff coin i is 0.
  BitVector DisguiseAll(const BitVector& true_bits, stats::Philox* gen) const;

  /// Unbiased estimate of the true proportion π from the observed
  /// proportion of 1-answers: π̂ = (p_obs + θ − 1) / (2θ − 1), clamped
  /// to [0, 1]. Fails with InvalidArgument on an empty sample.
  Result<double> EstimateProportion(const BitVector& disguised) const;

  /// Sampling variance of the π̂ estimator at true proportion `pi` and
  /// sample size n (Warner's formula).
  double EstimatorVariance(double pi, size_t n) const;

  /// The adversary's per-record posterior P(true = 1 | reported = 1)
  /// when the population proportion is `pi` — the record-level
  /// disclosure measure.
  double PosteriorGivenReportedOne(double pi) const;

  double truth_probability() const { return theta_; }

 private:
  explicit WarnerScheme(double theta) : theta_(theta) {}
  double theta_;
};

/// MASK-style per-bit randomization of transaction data.
class MaskScheme {
 public:
  /// `keep_probability` θ ∈ (0, 1), θ ≠ 0.5.
  static Result<MaskScheme> Create(double keep_probability);

  /// Disguises an n x m 0/1 transaction matrix entrywise (values are
  /// validated to be 0/1).
  Result<linalg::Matrix> Disguise(const linalg::Matrix& transactions,
                                  stats::Rng* rng) const;

  /// Batch entry point: one vectorized Bernoulli(θ) keep-mask fill for
  /// the whole matrix (consumes rows*cols substrate draws from gen's
  /// cursor); entry (i, j) is kept iff mask[i*m + j] is 1.
  Result<linalg::Matrix> Disguise(const linalg::Matrix& transactions,
                                  stats::Philox* gen) const;

  /// Unbiased single-item support estimate from the disguised column
  /// proportion (same inversion as Warner).
  Result<double> EstimateItemSupport(const linalg::Matrix& disguised,
                                     size_t item) const;

  /// Unbiased 2-itemset support estimate: observes the four joint cell
  /// proportions of (item_a, item_b) and inverts the product channel
  /// (the MASK estimator). Fails if the channel matrix is singular
  /// (θ = 0.5) or indices are out of range.
  Result<double> EstimatePairSupport(const linalg::Matrix& disguised,
                                     size_t item_a, size_t item_b) const;

  double keep_probability() const { return theta_; }

 private:
  explicit MaskScheme(double theta) : theta_(theta) {}
  double theta_;
};

}  // namespace perturb
}  // namespace randrecon

#endif  // RANDRECON_PERTURB_RANDOMIZED_RESPONSE_H_
