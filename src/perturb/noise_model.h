// NoiseModel: the *public* description of the randomization noise.
//
// Randomization-based PPDM publishes the noise distribution alongside the
// disguised data (the miners need it to reconstruct aggregate
// distributions), so the paper's adversary legitimately knows it. Every
// reconstructor takes a NoiseModel as its knowledge of R.

#ifndef RANDRECON_PERTURB_NOISE_MODEL_H_
#define RANDRECON_PERTURB_NOISE_MODEL_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"
#include "stats/distribution.h"

namespace randrecon {
namespace perturb {

/// Immutable description of an additive zero-mean noise process over m
/// attributes: either independent per-attribute scalar distributions or a
/// jointly Gaussian vector with full covariance Σr.
class NoiseModel {
 public:
  /// Independent N(0, stddev²) on every attribute — the classic
  /// Agrawal-Srikant randomization the paper attacks in §4-§7.
  static NoiseModel IndependentGaussian(size_t num_attributes, double stddev);

  /// Independent copies of an arbitrary scalar distribution per attribute.
  /// The distribution must have zero mean (paper assumption); fails with
  /// InvalidArgument otherwise.
  static Result<NoiseModel> Independent(
      std::unique_ptr<stats::ScalarDistribution> per_attribute,
      size_t num_attributes);

  /// Jointly Gaussian noise N(0, Σr) — the improved scheme of §8. Fails
  /// with InvalidArgument for a non-square/asymmetric covariance.
  static Result<NoiseModel> CorrelatedGaussian(linalg::Matrix covariance);

  NoiseModel(const NoiseModel& other);
  NoiseModel& operator=(const NoiseModel& other);
  NoiseModel(NoiseModel&&) = default;
  NoiseModel& operator=(NoiseModel&&) = default;

  size_t num_attributes() const { return covariance_.rows(); }

  /// True for the §8 correlated-Gaussian scheme; false for independent
  /// per-attribute noise.
  bool is_correlated() const { return correlated_; }

  /// Full noise covariance Σr (diagonal when independent).
  const linalg::Matrix& covariance() const { return covariance_; }

  /// Noise variance on attribute j (the σ² of Theorem 5.1).
  double Variance(size_t j) const { return covariance_(j, j); }

  /// True iff every attribute has the same noise variance (required by
  /// the scalar-σ² form of Theorem 5.1 / Eq. 11; the general forms accept
  /// any covariance).
  bool HasUniformVariance(double tol = 1e-12) const;

  /// Marginal distribution of the noise on attribute j, for UDR's
  /// pointwise fR evaluations.
  const stats::ScalarDistribution& Marginal(size_t j) const;

  /// Batch entry point: true when every marginal implements the
  /// counter-substrate SampleSliceAt (Gaussian/uniform/Laplace noise do;
  /// arbitrary custom distributions may not).
  bool SupportsBatchSampling() const;

  /// True when all attributes share one marginal distribution (the case
  /// for both Independent factories today). The batch noise path uses
  /// this to fill whole record blocks with a single contiguous slice.
  bool HasIdenticalMarginals() const { return identical_marginals_; }

  /// Fills out[0..n) with elements [elem_begin, elem_begin + n) of
  /// marginal j's canonical sequence over `stream` (see
  /// ScalarDistribution::SampleSliceAt).
  void SampleMarginalSliceAt(size_t j, const stats::Philox& stream,
                             uint64_t elem_begin, double* out,
                             size_t n) const;

 private:
  NoiseModel(bool correlated, linalg::Matrix covariance,
             std::vector<std::unique_ptr<stats::ScalarDistribution>> marginals,
             bool identical_marginals)
      : correlated_(correlated),
        covariance_(std::move(covariance)),
        marginals_(std::move(marginals)),
        identical_marginals_(identical_marginals) {}

  bool correlated_ = false;
  linalg::Matrix covariance_;
  std::vector<std::unique_ptr<stats::ScalarDistribution>> marginals_;
  bool identical_marginals_ = false;
};

}  // namespace perturb
}  // namespace randrecon

#endif  // RANDRECON_PERTURB_NOISE_MODEL_H_
