#include "perturb/randomized_response.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"

namespace randrecon {
namespace perturb {
namespace {

Status ValidateTheta(double theta, const char* who) {
  if (theta <= 0.0 || theta >= 1.0) {
    return Status::InvalidArgument(std::string(who) +
                                   ": probability must be in (0, 1)");
  }
  if (std::fabs(theta - 0.5) < 1e-9) {
    return Status::InvalidArgument(
        std::string(who) +
        ": probability 0.5 destroys all information (channel not invertible)");
  }
  return Status::OK();
}

}  // namespace

Result<WarnerScheme> WarnerScheme::Create(double truth_probability) {
  RR_RETURN_NOT_OK(ValidateTheta(truth_probability, "WarnerScheme"));
  return WarnerScheme(truth_probability);
}

uint8_t WarnerScheme::Disguise(uint8_t true_bit, stats::Rng* rng) const {
  RR_CHECK(true_bit == 0 || true_bit == 1) << "bit must be 0/1";
  const bool tell_truth = rng->Uniform(0.0, 1.0) < theta_;
  return tell_truth ? true_bit : static_cast<uint8_t>(1 - true_bit);
}

BitVector WarnerScheme::DisguiseAll(const BitVector& true_bits,
                                    stats::Rng* rng) const {
  BitVector out(true_bits.size());
  for (size_t i = 0; i < true_bits.size(); ++i) {
    out[i] = Disguise(true_bits[i], rng);
  }
  return out;
}

BitVector WarnerScheme::DisguiseAll(const BitVector& true_bits,
                                    stats::Philox* gen) const {
  BitVector coins(true_bits.size());
  if (!true_bits.empty()) {
    gen->FillBernoulli(theta_, coins.data(), coins.size());
  }
  BitVector out(true_bits.size());
  for (size_t i = 0; i < true_bits.size(); ++i) {
    RR_CHECK(true_bits[i] == 0 || true_bits[i] == 1) << "bit must be 0/1";
    out[i] = coins[i] ? true_bits[i] : static_cast<uint8_t>(1 - true_bits[i]);
  }
  return out;
}

Result<double> WarnerScheme::EstimateProportion(
    const BitVector& disguised) const {
  if (disguised.empty()) {
    return Status::InvalidArgument("WarnerScheme: empty sample");
  }
  double ones = 0.0;
  for (uint8_t bit : disguised) ones += bit;
  const double observed = ones / static_cast<double>(disguised.size());
  // P(report 1) = θπ + (1−θ)(1−π)  =>  π = (p_obs + θ − 1)/(2θ − 1).
  const double pi = (observed + theta_ - 1.0) / (2.0 * theta_ - 1.0);
  return std::clamp(pi, 0.0, 1.0);
}

double WarnerScheme::EstimatorVariance(double pi, size_t n) const {
  RR_CHECK_GT(n, 0u);
  // Warner (1965): Var(π̂) = π(1−π)/n + θ(1−θ)/(n(2θ−1)²).
  const double d = 2.0 * theta_ - 1.0;
  return pi * (1.0 - pi) / static_cast<double>(n) +
         theta_ * (1.0 - theta_) / (static_cast<double>(n) * d * d);
}

double WarnerScheme::PosteriorGivenReportedOne(double pi) const {
  RR_CHECK(pi >= 0.0 && pi <= 1.0);
  // Bayes on the binary channel: P(x=1 | y=1).
  const double p_report_one = theta_ * pi + (1.0 - theta_) * (1.0 - pi);
  if (p_report_one <= 0.0) return 0.0;
  return theta_ * pi / p_report_one;
}

Result<MaskScheme> MaskScheme::Create(double keep_probability) {
  RR_RETURN_NOT_OK(ValidateTheta(keep_probability, "MaskScheme"));
  return MaskScheme(keep_probability);
}

Result<linalg::Matrix> MaskScheme::Disguise(const linalg::Matrix& transactions,
                                            stats::Rng* rng) const {
  linalg::Matrix out(transactions.rows(), transactions.cols());
  for (size_t i = 0; i < transactions.rows(); ++i) {
    for (size_t j = 0; j < transactions.cols(); ++j) {
      const double value = transactions(i, j);
      if (value != 0.0 && value != 1.0) {
        return Status::InvalidArgument(
            "MaskScheme: transactions must be 0/1, got " +
            std::to_string(value));
      }
      const bool keep = rng->Uniform(0.0, 1.0) < theta_;
      out(i, j) = keep ? value : 1.0 - value;
    }
  }
  return out;
}

Result<linalg::Matrix> MaskScheme::Disguise(const linalg::Matrix& transactions,
                                            stats::Philox* gen) const {
  const size_t total = transactions.rows() * transactions.cols();
  const double* in = transactions.data();
  // Validate before drawing so a rejected matrix leaves the generator
  // cursor untouched, like the scalar Rng overload.
  for (size_t i = 0; i < total; ++i) {
    if (in[i] != 0.0 && in[i] != 1.0) {
      return Status::InvalidArgument(
          "MaskScheme: transactions must be 0/1, got " +
          std::to_string(in[i]));
    }
  }
  std::vector<uint8_t> keep(total);
  if (total > 0) gen->FillBernoulli(theta_, keep.data(), total);
  linalg::Matrix out(transactions.rows(), transactions.cols());
  double* o = out.data();
  for (size_t i = 0; i < total; ++i) {
    o[i] = keep[i] ? in[i] : 1.0 - in[i];
  }
  return out;
}

Result<double> MaskScheme::EstimateItemSupport(const linalg::Matrix& disguised,
                                               size_t item) const {
  if (item >= disguised.cols()) {
    return Status::InvalidArgument("MaskScheme: item index out of range");
  }
  if (disguised.rows() == 0) {
    return Status::InvalidArgument("MaskScheme: empty data");
  }
  double ones = 0.0;
  for (size_t i = 0; i < disguised.rows(); ++i) ones += disguised(i, item);
  const double observed = ones / static_cast<double>(disguised.rows());
  const double support =
      (observed + theta_ - 1.0) / (2.0 * theta_ - 1.0);
  return std::clamp(support, 0.0, 1.0);
}

Result<double> MaskScheme::EstimatePairSupport(const linalg::Matrix& disguised,
                                               size_t item_a,
                                               size_t item_b) const {
  if (item_a >= disguised.cols() || item_b >= disguised.cols() ||
      item_a == item_b) {
    return Status::InvalidArgument("MaskScheme: bad item pair");
  }
  const size_t n = disguised.rows();
  if (n == 0) {
    return Status::InvalidArgument("MaskScheme: empty data");
  }
  // Observed joint distribution over (bit_a, bit_b) ∈ {11, 10, 01, 00}.
  double counts[4] = {0, 0, 0, 0};
  for (size_t i = 0; i < n; ++i) {
    const int a = disguised(i, item_a) > 0.5 ? 1 : 0;
    const int b = disguised(i, item_b) > 0.5 ? 1 : 0;
    counts[(1 - a) * 2 + (1 - b)] += 1.0;  // Index 0 = (1,1) ... 3 = (0,0).
  }
  double observed[4];
  for (int c = 0; c < 4; ++c) {
    observed[c] = counts[c] / static_cast<double>(n);
  }

  // Channel: each bit independently kept w.p. θ. The per-bit channel
  // matrix is M1 = [[θ, 1−θ], [1−θ, θ]] (rows: reported, cols: true).
  // The joint channel is the Kronecker product; we only need the (1,1)
  // row of its inverse. M1⁻¹ = 1/(2θ−1) · [[θ', −(1−θ')] ...] with a
  // cleaner route: invert the 2x2 per bit and combine.
  const double d = 2.0 * theta_ - 1.0;
  const double inv11 = theta_ / d;         // M1⁻¹[1,1]-ish coefficients:
  const double inv10 = -(1.0 - theta_) / d;  // M1⁻¹ = (1/d)[[θ, −(1−θ)],
                                             //            [−(1−θ), θ]].
  // True P(1,1) = Σ over reported cells of inv(a_true=1, a_rep) ·
  // inv(b_true=1, b_rep) · observed(rep).
  const double coeff_a[2] = {inv11, inv10};  // reported 1, reported 0.
  const double coeff_b[2] = {inv11, inv10};
  double support = 0.0;
  const int reported_a[4] = {1, 1, 0, 0};
  const int reported_b[4] = {1, 0, 1, 0};
  for (int c = 0; c < 4; ++c) {
    support += coeff_a[1 - reported_a[c]] * coeff_b[1 - reported_b[c]] *
               observed[c];
  }
  return std::clamp(support, 0.0, 1.0);
}

}  // namespace perturb
}  // namespace randrecon
