#include "perturb/schemes.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "linalg/eigen.h"
#include "linalg/matrix_util.h"

namespace randrecon {
namespace perturb {

void RandomizationScheme::AddNoiseAt(const stats::Philox& /*base*/,
                                     uint64_t /*record_begin*/,
                                     size_t /*rows*/,
                                     linalg::Matrix* /*chunk*/,
                                     const ParallelOptions& /*options*/) const {
  RR_CHECK(false)
      << "AddNoiseAt called on a scheme without batch noise support";
}

Result<data::Dataset> RandomizationScheme::Disguise(
    const data::Dataset& original, stats::Rng* rng) const {
  if (original.num_attributes() != num_attributes()) {
    return Status::InvalidArgument(
        "Disguise: dataset has " + std::to_string(original.num_attributes()) +
        " attributes, scheme expects " + std::to_string(num_attributes()));
  }
  linalg::Matrix disguised = original.records();
  const linalg::Matrix noise = GenerateNoise(original.num_records(), rng);
  disguised += noise;
  return data::Dataset::Create(std::move(disguised),
                               original.attribute_names());
}

IndependentNoiseScheme IndependentNoiseScheme::Gaussian(size_t num_attributes,
                                                        double stddev) {
  return IndependentNoiseScheme(
      NoiseModel::IndependentGaussian(num_attributes, stddev));
}

IndependentNoiseScheme IndependentNoiseScheme::Uniform(size_t num_attributes,
                                                       double half_width) {
  RR_CHECK_GT(half_width, 0.0);
  Result<NoiseModel> model = NoiseModel::Independent(
      std::make_unique<stats::UniformDistribution>(-half_width, half_width),
      num_attributes);
  RR_CHECK(model.ok()) << model.status().ToString();
  return IndependentNoiseScheme(std::move(model).value());
}

linalg::Matrix IndependentNoiseScheme::GenerateNoise(size_t num_records,
                                                     stats::Rng* rng) const {
  const size_t m = num_attributes();
  linalg::Matrix noise(num_records, m);
  for (size_t i = 0; i < num_records; ++i) {
    double* row = noise.row_data(i);
    for (size_t j = 0; j < m; ++j) {
      row[j] = noise_model_.Marginal(j).Sample(rng);
    }
  }
  return noise;
}

void IndependentNoiseScheme::AddNoiseAt(const stats::Philox& base,
                                        uint64_t record_begin, size_t rows,
                                        linalg::Matrix* chunk,
                                        const ParallelOptions& options) const {
  RR_CHECK(SupportsBatchNoise())
      << "IndependentNoiseScheme: marginals lack batch sampling";
  const size_t m = num_attributes();
  RR_CHECK_EQ(chunk->cols(), m);
  RR_CHECK_LE(rows, chunk->rows());
  // Block b's noise is elements [0, kBatchBlockRows*m) of the (shared)
  // marginal's canonical sequence over Substream(b), laid out row-major —
  // an element-granular pure function, so straddled blocks are sliced
  // without generating the rest of the block.
  stats::ForEachBatchBlock(
      record_begin, rows, options,
      [&](uint64_t b, uint64_t lo, uint64_t hi) {
        const size_t count = static_cast<size_t>(hi - lo) * m;
        const uint64_t elem0 =
            (lo - b * stats::kBatchBlockRows) * static_cast<uint64_t>(m);
        std::vector<double> noise(count);
        noise_model_.SampleMarginalSliceAt(0, base.Substream(b), elem0,
                                           noise.data(), count);
        double* out = chunk->row_data(static_cast<size_t>(lo - record_begin));
        for (size_t i = 0; i < count; ++i) out[i] += noise[i];
      });
}

Result<CorrelatedGaussianScheme> CorrelatedGaussianScheme::Create(
    linalg::Matrix covariance) {
  RR_ASSIGN_OR_RETURN(NoiseModel model,
                      NoiseModel::CorrelatedGaussian(covariance));
  RR_ASSIGN_OR_RETURN(
      stats::MultivariateNormalSampler sampler,
      stats::MultivariateNormalSampler::CreateZeroMean(covariance));
  return CorrelatedGaussianScheme(std::move(model), std::move(sampler));
}

Result<CorrelatedGaussianScheme> CorrelatedGaussianScheme::MimicCovariance(
    const linalg::Matrix& data_covariance, double scale) {
  if (scale <= 0.0) {
    return Status::InvalidArgument("MimicCovariance: scale must be positive");
  }
  return Create(data_covariance * scale);
}

Result<CorrelatedGaussianScheme> CorrelatedGaussianScheme::FromEigenstructure(
    const linalg::Matrix& eigenvectors,
    const linalg::Vector& noise_eigenvalues) {
  if (eigenvectors.rows() != eigenvectors.cols() ||
      eigenvectors.cols() != noise_eigenvalues.size()) {
    return Status::InvalidArgument(
        "FromEigenstructure: eigenvector/eigenvalue shape mismatch");
  }
  if (!linalg::HasOrthonormalColumns(eigenvectors, 1e-6)) {
    return Status::InvalidArgument(
        "FromEigenstructure: basis is not orthonormal");
  }
  for (double lambda : noise_eigenvalues) {
    if (lambda < 0.0) {
      return Status::InvalidArgument(
          "FromEigenstructure: negative noise eigenvalue");
    }
  }
  return Create(linalg::ComposeFromEigen(noise_eigenvalues, eigenvectors));
}

linalg::Matrix CorrelatedGaussianScheme::GenerateNoise(size_t num_records,
                                                       stats::Rng* rng) const {
  // Deliberately record-by-record, NOT the batched SampleMatrix: the
  // sequential-mode PerturbingRecordSource calls this once per chunk,
  // and the blocked GEMM behind SampleMatrix picks different (equally
  // correct, differently rounded) accumulation paths depending on the
  // row count — which would break the documented bitwise chunk-size
  // invariance of the disguised stream. Per-record matvecs keep every
  // record's bytes independent of the chunking; bulk callers use the
  // Philox batch paths instead.
  const size_t m = num_attributes();
  linalg::Matrix noise(num_records, m);
  for (size_t i = 0; i < num_records; ++i) {
    noise.SetRow(i, sampler_.SampleRecord(rng));
  }
  return noise;
}

void CorrelatedGaussianScheme::AddNoiseAt(const stats::Philox& base,
                                          uint64_t record_begin, size_t rows,
                                          linalg::Matrix* chunk,
                                          const ParallelOptions& options) const {
  const size_t m = num_attributes();
  RR_CHECK_EQ(chunk->cols(), m);
  RR_CHECK_LE(rows, chunk->rows());
  // Jointly Gaussian noise rides the MVN block generator: noise record i
  // is row i of the sampler's deterministic record stream over `base`.
  stats::ForEachBatchBlock(
      record_begin, rows, options,
      [&](uint64_t b, uint64_t lo, uint64_t hi) {
        const size_t count = static_cast<size_t>(hi - lo);
        std::vector<double> noise(count * m);
        sampler_.SampleBlockSlice(
            base, b, static_cast<size_t>(lo - b * stats::kBatchBlockRows),
            static_cast<size_t>(hi - b * stats::kBatchBlockRows),
            noise.data());
        double* out = chunk->row_data(static_cast<size_t>(lo - record_begin));
        for (size_t i = 0; i < count * m; ++i) out[i] += noise[i];
      });
}

linalg::Vector InterpolateSpectra(const linalg::Vector& from,
                                  const linalg::Vector& to, double t) {
  RR_CHECK_EQ(from.size(), to.size());
  RR_CHECK(t >= 0.0 && t <= 1.0) << "interpolation parameter out of [0,1]";
  linalg::Vector out(from.size());
  for (size_t i = 0; i < from.size(); ++i) {
    out[i] = (1.0 - t) * from[i] + t * to[i];
  }
  return out;
}

}  // namespace perturb
}  // namespace randrecon
