// Randomization (data disguising) schemes: Y = X + R.
//
// `IndependentNoiseScheme` is the classic Agrawal-Srikant perturbation the
// paper attacks; `CorrelatedGaussianScheme` is the paper's §8 improvement
// where the noise correlation mimics the data correlation.

#ifndef RANDRECON_PERTURB_SCHEMES_H_
#define RANDRECON_PERTURB_SCHEMES_H_

#include <memory>

#include "common/result.h"
#include "data/dataset.h"
#include "perturb/noise_model.h"
#include "stats/mvn.h"
#include "stats/rng.h"

namespace randrecon {
namespace perturb {

/// Interface for an additive randomization scheme over m attributes.
class RandomizationScheme {
 public:
  virtual ~RandomizationScheme() = default;

  /// Number of attributes this scheme was configured for.
  virtual size_t num_attributes() const = 0;

  /// Draws an n x m noise matrix R.
  virtual linalg::Matrix GenerateNoise(size_t num_records,
                                       stats::Rng* rng) const = 0;

  /// True when AddNoiseAt's counter-based batch path is implemented.
  virtual bool SupportsBatchNoise() const { return false; }

  /// Batch entry point: adds the noise of the absolute records
  /// [record_begin, record_begin + rows) of the noise stream derived
  /// from `base` into the leading rows of `chunk`. The noise of record i
  /// is a pure function of (base, i): draws come from fixed
  /// stats::kBatchBlockRows record blocks with counter-derived per-block
  /// substreams, so chunking and threading never change the stream.
  /// RR_CHECK-fails unless SupportsBatchNoise().
  virtual void AddNoiseAt(const stats::Philox& base, uint64_t record_begin,
                          size_t rows, linalg::Matrix* chunk,
                          const ParallelOptions& options = {}) const;

  /// The public knowledge an adversary has about this scheme's noise.
  virtual const NoiseModel& noise_model() const = 0;

  /// Disguises a dataset: returns Y = X + R. Fails with InvalidArgument
  /// if the dataset's attribute count doesn't match the scheme's.
  Result<data::Dataset> Disguise(const data::Dataset& original,
                                 stats::Rng* rng) const;
};

/// Independent per-attribute noise (same scalar distribution on each
/// attribute): the randomization of [Agrawal & Srikant 2000].
class IndependentNoiseScheme final : public RandomizationScheme {
 public:
  /// Gaussian N(0, stddev²) noise on each of m attributes.
  static IndependentNoiseScheme Gaussian(size_t num_attributes, double stddev);

  /// Uniform[-half_width, half_width) noise on each of m attributes.
  static IndependentNoiseScheme Uniform(size_t num_attributes,
                                        double half_width);

  size_t num_attributes() const override {
    return noise_model_.num_attributes();
  }
  linalg::Matrix GenerateNoise(size_t num_records,
                               stats::Rng* rng) const override;
  bool SupportsBatchNoise() const override {
    return noise_model_.HasIdenticalMarginals() &&
           noise_model_.SupportsBatchSampling();
  }
  void AddNoiseAt(const stats::Philox& base, uint64_t record_begin,
                  size_t rows, linalg::Matrix* chunk,
                  const ParallelOptions& options = {}) const override;
  const NoiseModel& noise_model() const override { return noise_model_; }

 private:
  explicit IndependentNoiseScheme(NoiseModel model)
      : noise_model_(std::move(model)) {}

  NoiseModel noise_model_;
};

/// Jointly Gaussian noise N(0, Σr): the §8.1 improved randomization. Pass
/// Σr proportional to (or equal to) the data covariance to make the noise
/// correlation "similar" to the data.
class CorrelatedGaussianScheme final : public RandomizationScheme {
 public:
  /// Builds the scheme from an explicit noise covariance.
  static Result<CorrelatedGaussianScheme> Create(linalg::Matrix covariance);

  /// §8.1's headline recipe: Σr = scale · Σx, i.e. noise correlation
  /// identical to the data correlation. `scale` fixes the noise power
  /// (scale = σ²·m / trace(Σx) gives the same total noise energy as
  /// independent noise with variance σ²).
  static Result<CorrelatedGaussianScheme> MimicCovariance(
      const linalg::Matrix& data_covariance, double scale);

  /// Figure-4 recipe: noise shares the data's *eigenvectors* but has its
  /// own eigenvalue profile (reshaping eigenvalues tunes the correlation
  /// dissimilarity while the basis stays fixed).
  static Result<CorrelatedGaussianScheme> FromEigenstructure(
      const linalg::Matrix& eigenvectors,
      const linalg::Vector& noise_eigenvalues);

  size_t num_attributes() const override {
    return noise_model_.num_attributes();
  }
  linalg::Matrix GenerateNoise(size_t num_records,
                               stats::Rng* rng) const override;
  bool SupportsBatchNoise() const override { return true; }
  /// Straddled edge blocks are regenerated in full on every call (the
  /// price of statelessness); prefer chunk sizes >= stats::kBatchBlockRows
  /// when streaming correlated noise.
  void AddNoiseAt(const stats::Philox& base, uint64_t record_begin,
                  size_t rows, linalg::Matrix* chunk,
                  const ParallelOptions& options = {}) const override;
  const NoiseModel& noise_model() const override { return noise_model_; }

 private:
  CorrelatedGaussianScheme(NoiseModel model,
                           stats::MultivariateNormalSampler sampler)
      : noise_model_(std::move(model)), sampler_(std::move(sampler)) {}

  NoiseModel noise_model_;
  stats::MultivariateNormalSampler sampler_;
};

/// Linearly interpolates two eigenvalue profiles (Figure 4's sweep knob):
/// result[i] = (1-t)·from[i] + t·to[i]. RR_CHECKs equal lengths and
/// t ∈ [0, 1].
linalg::Vector InterpolateSpectra(const linalg::Vector& from,
                                  const linalg::Vector& to, double t);

}  // namespace perturb
}  // namespace randrecon

#endif  // RANDRECON_PERTURB_SCHEMES_H_
