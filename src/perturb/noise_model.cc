#include "perturb/noise_model.h"

#include <cmath>

#include "linalg/matrix_util.h"

namespace randrecon {
namespace perturb {
namespace {

std::vector<std::unique_ptr<stats::ScalarDistribution>> GaussianMarginals(
    const linalg::Matrix& covariance) {
  std::vector<std::unique_ptr<stats::ScalarDistribution>> marginals;
  marginals.reserve(covariance.rows());
  for (size_t j = 0; j < covariance.rows(); ++j) {
    const double var = covariance(j, j);
    marginals.push_back(std::make_unique<stats::NormalDistribution>(
        0.0, std::sqrt(var > 0.0 ? var : 1e-12)));
  }
  return marginals;
}

}  // namespace

NoiseModel NoiseModel::IndependentGaussian(size_t num_attributes,
                                           double stddev) {
  RR_CHECK_GT(stddev, 0.0);
  linalg::Vector diag(num_attributes, stddev * stddev);
  linalg::Matrix covariance = linalg::Matrix::Diagonal(diag);
  return NoiseModel(false, std::move(covariance),
                    GaussianMarginals(linalg::Matrix::Diagonal(diag)),
                    /*identical_marginals=*/true);
}

Result<NoiseModel> NoiseModel::Independent(
    std::unique_ptr<stats::ScalarDistribution> per_attribute,
    size_t num_attributes) {
  if (per_attribute == nullptr) {
    return Status::InvalidArgument("NoiseModel: null distribution");
  }
  if (num_attributes == 0) {
    return Status::InvalidArgument("NoiseModel: zero attributes");
  }
  if (std::fabs(per_attribute->Mean()) > 1e-9) {
    return Status::InvalidArgument(
        "NoiseModel: randomization noise must have zero mean, got " +
        std::to_string(per_attribute->Mean()));
  }
  const double var = per_attribute->Variance();
  linalg::Matrix covariance =
      linalg::Matrix::Diagonal(linalg::Vector(num_attributes, var));
  std::vector<std::unique_ptr<stats::ScalarDistribution>> marginals;
  marginals.reserve(num_attributes);
  for (size_t j = 0; j < num_attributes; ++j) {
    marginals.push_back(per_attribute->Clone());
  }
  return NoiseModel(false, std::move(covariance), std::move(marginals),
                    /*identical_marginals=*/true);
}

Result<NoiseModel> NoiseModel::CorrelatedGaussian(linalg::Matrix covariance) {
  if (covariance.rows() != covariance.cols()) {
    return Status::InvalidArgument("NoiseModel: covariance not square");
  }
  if (!linalg::IsSymmetric(covariance,
                           1e-8 * (1.0 + linalg::FrobeniusNorm(covariance)))) {
    return Status::InvalidArgument("NoiseModel: covariance not symmetric");
  }
  for (size_t j = 0; j < covariance.rows(); ++j) {
    if (covariance(j, j) <= 0.0) {
      return Status::InvalidArgument(
          "NoiseModel: non-positive noise variance on attribute " +
          std::to_string(j));
    }
  }
  auto marginals = GaussianMarginals(covariance);
  // Correlated noise is sampled jointly, not marginal-by-marginal, so the
  // identical-marginals fast path stays off even for equal variances.
  return NoiseModel(true, std::move(covariance), std::move(marginals),
                    /*identical_marginals=*/false);
}

NoiseModel::NoiseModel(const NoiseModel& other)
    : correlated_(other.correlated_),
      covariance_(other.covariance_),
      identical_marginals_(other.identical_marginals_) {
  marginals_.reserve(other.marginals_.size());
  for (const auto& marginal : other.marginals_) {
    marginals_.push_back(marginal->Clone());
  }
}

NoiseModel& NoiseModel::operator=(const NoiseModel& other) {
  if (this == &other) return *this;
  correlated_ = other.correlated_;
  covariance_ = other.covariance_;
  identical_marginals_ = other.identical_marginals_;
  marginals_.clear();
  marginals_.reserve(other.marginals_.size());
  for (const auto& marginal : other.marginals_) {
    marginals_.push_back(marginal->Clone());
  }
  return *this;
}

bool NoiseModel::HasUniformVariance(double tol) const {
  for (size_t j = 1; j < covariance_.rows(); ++j) {
    if (std::fabs(covariance_(j, j) - covariance_(0, 0)) > tol) return false;
  }
  return true;
}

const stats::ScalarDistribution& NoiseModel::Marginal(size_t j) const {
  RR_CHECK_LT(j, marginals_.size());
  return *marginals_[j];
}

bool NoiseModel::SupportsBatchSampling() const {
  for (const auto& marginal : marginals_) {
    if (!marginal->SupportsBatchSampling()) return false;
  }
  return !marginals_.empty();
}

void NoiseModel::SampleMarginalSliceAt(size_t j, const stats::Philox& stream,
                                       uint64_t elem_begin, double* out,
                                       size_t n) const {
  RR_CHECK_LT(j, marginals_.size());
  marginals_[j]->SampleSliceAt(stream, elem_begin, out, n);
}

}  // namespace perturb
}  // namespace randrecon
