// Free functions on linalg::Vector used throughout the library.

#ifndef RANDRECON_LINALG_VECTOR_OPS_H_
#define RANDRECON_LINALG_VECTOR_OPS_H_

#include "linalg/matrix.h"

namespace randrecon {
namespace linalg {

/// Inner product <a, b>; sizes must match.
double Dot(const Vector& a, const Vector& b);

/// Euclidean norm ||a||₂.
double Norm(const Vector& a);

/// Element-wise a + b.
Vector Add(const Vector& a, const Vector& b);

/// Element-wise a - b.
Vector Subtract(const Vector& a, const Vector& b);

/// Scalar multiple s * a.
Vector Scale(const Vector& a, double s);

/// In-place a += s * b (axpy).
void AddScaled(Vector* a, double s, const Vector& b);

/// Outer product a bᵀ as an (a.size() x b.size()) matrix.
Matrix Outer(const Vector& a, const Vector& b);

/// Arithmetic mean of the entries.
double Mean(const Vector& a);

/// Population variance (divide by n); 0 for n < 1.
double Variance(const Vector& a);

/// Sum of entries.
double Sum(const Vector& a);

/// Largest absolute entry; 0 for an empty vector.
double MaxAbs(const Vector& a);

}  // namespace linalg
}  // namespace randrecon

#endif  // RANDRECON_LINALG_VECTOR_OPS_H_
