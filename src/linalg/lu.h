// LU factorization with partial pivoting: general square solves, inverses
// and determinants. The Bayes-estimate reconstructor inverts
// (Σx⁻¹ + Σr⁻¹)-style matrices that are symmetric but may be produced by
// user-supplied covariances, so a pivoted general-purpose solver is the
// safe default.

#ifndef RANDRECON_LINALG_LU_H_
#define RANDRECON_LINALG_LU_H_

#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"

namespace randrecon {
namespace linalg {

/// PA = LU factorization with partial (row) pivoting.
class LuFactorization {
 public:
  /// Factors a square matrix. Returns NumericalError for singular input.
  static Result<LuFactorization> Compute(const Matrix& a);

  /// Solves A x = b.
  Vector Solve(const Vector& b) const;

  /// Solves A X = B column-by-column.
  Matrix Solve(const Matrix& b) const;

  /// A⁻¹ (solves against the identity).
  Matrix Inverse() const;

  /// det(A), including the pivot sign.
  double Determinant() const;

 private:
  LuFactorization(Matrix lu, std::vector<size_t> perm, int sign)
      : lu_(std::move(lu)), perm_(std::move(perm)), pivot_sign_(sign) {}

  Matrix lu_;                 // L (unit diagonal, below) and U (on/above).
  std::vector<size_t> perm_;  // Row permutation: solves use b[perm_[i]].
  int pivot_sign_;            // +1 / -1 from row swaps, for Determinant().
};

/// Convenience: solves A x = b in one call (factor + solve).
Result<Vector> SolveLinearSystem(const Matrix& a, const Vector& b);

/// Convenience: A⁻¹ in one call. Prefer keeping the factorization when
/// solving repeatedly.
Result<Matrix> InvertMatrix(const Matrix& a);

}  // namespace linalg
}  // namespace randrecon

#endif  // RANDRECON_LINALG_LU_H_
