#include "linalg/orthogonal.h"

#include <cmath>

#include "linalg/vector_ops.h"

namespace randrecon {
namespace linalg {

Result<Matrix> GramSchmidtOrthonormalize(const Matrix& a,
                                         double rank_tolerance) {
  if (a.rows() < a.cols()) {
    return Status::InvalidArgument(
        "GramSchmidt: cannot orthonormalize more columns than rows");
  }
  const size_t m = a.rows();
  const size_t k = a.cols();
  Matrix q = a;
  for (size_t j = 0; j < k; ++j) {
    Vector col = q.Col(j);
    const double original_norm = Norm(col);
    // Modified Gram-Schmidt: subtract projections one at a time against
    // the already-orthonormalized columns.
    for (size_t prev = 0; prev < j; ++prev) {
      const Vector basis = q.Col(prev);
      const double coeff = Dot(col, basis);
      AddScaled(&col, -coeff, basis);
    }
    const double norm = Norm(col);
    if (norm <= rank_tolerance * (original_norm > 0.0 ? original_norm : 1.0)) {
      return Status::NumericalError(
          "GramSchmidt: rank-deficient input at column " + std::to_string(j));
    }
    for (size_t i = 0; i < m; ++i) q(i, j) = col[i] / norm;
  }
  return q;
}

Vector ProjectOntoColumns(const Matrix& q, size_t k, const Vector& v) {
  RR_CHECK_LE(k, q.cols());
  RR_CHECK_EQ(v.size(), q.rows());
  Vector out(v.size(), 0.0);
  for (size_t col = 0; col < k; ++col) {
    const Vector basis = q.Col(col);
    const double coeff = Dot(v, basis);
    AddScaled(&out, coeff, basis);
  }
  return out;
}

}  // namespace linalg
}  // namespace randrecon
