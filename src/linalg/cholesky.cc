#include "linalg/cholesky.h"

#include <cmath>

#include "linalg/matrix_util.h"

namespace randrecon {
namespace linalg {

Result<CholeskyFactorization> CholeskyFactorization::Compute(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky: matrix is not square");
  }
  if (!IsSymmetric(a, 1e-8 * (1.0 + FrobeniusNorm(a)))) {
    return Status::InvalidArgument("Cholesky: matrix is not symmetric");
  }
  const size_t m = a.rows();
  Matrix l(m, m);
  for (size_t j = 0; j < m; ++j) {
    double diag = a(j, j);
    for (size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return Status::NumericalError(
          "Cholesky: non-positive pivot at column " + std::to_string(j) +
          " (matrix not positive definite)");
    }
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (size_t i = j + 1; i < m; ++i) {
      double sum = a(i, j);
      for (size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      l(i, j) = sum / ljj;
    }
  }
  return CholeskyFactorization(std::move(l));
}

Result<CholeskyFactorization> CholeskyFactorization::ComputeWithJitter(
    const Matrix& a, double jitter, int attempts) {
  Result<CholeskyFactorization> plain = Compute(a);
  if (plain.ok()) return plain;

  double mean_diag = 0.0;
  for (size_t i = 0; i < a.rows(); ++i) mean_diag += a(i, i);
  mean_diag /= static_cast<double>(a.rows() > 0 ? a.rows() : 1);
  if (mean_diag <= 0.0) mean_diag = 1.0;

  double eps = jitter * mean_diag;
  for (int attempt = 0; attempt < attempts; ++attempt, eps *= 10.0) {
    Matrix jittered = a;
    for (size_t i = 0; i < a.rows(); ++i) jittered(i, i) += eps;
    Result<CholeskyFactorization> result = Compute(jittered);
    if (result.ok()) return result;
  }
  return Status::NumericalError(
      "Cholesky: matrix not positive definite even after jitter");
}

Vector CholeskyFactorization::Solve(const Vector& b) const {
  const size_t m = lower_.rows();
  RR_CHECK_EQ(b.size(), m);
  // Forward substitution: L y = b.
  Vector y(m);
  for (size_t i = 0; i < m; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= lower_(i, k) * y[k];
    y[i] = sum / lower_(i, i);
  }
  // Back substitution: Lᵀ x = y.
  Vector x(m);
  for (size_t ii = m; ii-- > 0;) {
    double sum = y[ii];
    for (size_t k = ii + 1; k < m; ++k) sum -= lower_(k, ii) * x[k];
    x[ii] = sum / lower_(ii, ii);
  }
  return x;
}

Matrix CholeskyFactorization::Solve(const Matrix& b) const {
  RR_CHECK_EQ(b.rows(), lower_.rows());
  Matrix x(b.rows(), b.cols());
  for (size_t j = 0; j < b.cols(); ++j) {
    x.SetCol(j, Solve(b.Col(j)));
  }
  return x;
}

Matrix CholeskyFactorization::Inverse() const {
  return Solve(Matrix::Identity(lower_.rows()));
}

double CholeskyFactorization::LogDeterminant() const {
  double sum = 0.0;
  for (size_t i = 0; i < lower_.rows(); ++i) sum += std::log(lower_(i, i));
  return 2.0 * sum;
}

}  // namespace linalg
}  // namespace randrecon
