// High-performance dense kernels under the Matrix API.
//
// Every attack in the paper funnels into three primitives — dense matrix
// products, sample covariance (a Gram matrix of centered data), and
// symmetric eigendecomposition — so those primitives get a dedicated
// kernel layer: cache-blocked, register-tiled loops over raw row-major
// pointers (no bounds checks inside), parallelized over row ranges via
// common/parallel.h once the operand sizes justify waking the pool.
//
// Layout of the layer:
//   * Pointer kernels (MatMul, MatMulABt, GramAtA, TransposeInto): the
//     actual blocked implementations. Small problems fall through to the
//     plain loops the kernels replaced, so tiny matrices never pay
//     packing overhead.
//   * Matrix-level wrappers (MatMul, MatMulTransposed, ProjectOntoBasis,
//     GramMatrix): shape-checked conveniences used by Matrix::operator*,
//     stats::SampleCovariance and the reconstruction hot paths.
//
// Determinism: for a fixed build, results are bitwise identical for any
// thread count — work is partitioned by output rows/tiles and every
// output element's floating-point accumulation order is independent of
// the partition.

#ifndef RANDRECON_LINALG_KERNELS_H_
#define RANDRECON_LINALG_KERNELS_H_

#include <cstddef>

#include "common/parallel.h"
#include "linalg/matrix.h"

namespace randrecon {
namespace linalg {
namespace kernels {

/// c(m x n) = a(m x k) · b(k x n). All row-major; c is overwritten.
void MatMul(const double* a, const double* b, double* c, size_t m, size_t k,
            size_t n, const ParallelOptions& options = {});

/// c(m x n) = a(m x k) · b(n x k)ᵀ without materializing the transpose.
/// The projection step X Q̂ Q̂ᵀ of PCA-DR/SF and the Q Λ Qᵀ recomposition
/// are exactly this shape.
void MatMulABt(const double* a, const double* b, double* c, size_t m, size_t k,
               size_t n, const ParallelOptions& options = {});

/// Fixed record-chunk size of GramAtA's accumulation order. Chunk
/// boundaries always fall at record indices that are multiples of this
/// constant, so an out-of-core accumulator that flushes kGramChunkRows
/// records at a time (stats::StreamingMoments) reproduces the in-memory
/// Gram matrix bitwise.
constexpr size_t kGramChunkRows = 4096;

/// partial(m x m) = a(rows x m)ᵀ · a(rows x m) for ONE record chunk:
/// fills the upper triangle (p <= q); the strict lower triangle is
/// UNSPECIFIED (zero on the small-size path, diagonal-straddling tile
/// spill on the blocked path) — read p <= q only, or mirror it yourself.
/// `partial` is overwritten. The floating-point accumulation order of
/// every upper-triangle element is a pure function of (rows, m) —
/// independent of the thread count — so merging chunk partials in chunk
/// order is bitwise deterministic.
void GramAtAChunk(const double* a, size_t rows, size_t m, double* partial,
                  const ParallelOptions& options = {});

/// c(m x m) = a(n x m)ᵀ · a(n x m): the Gram matrix of the columns of `a`
/// (syrk-style). The result is exactly symmetric by construction.
/// Internally the record dimension is processed in fixed chunks of
/// kGramChunkRows rows (GramAtAChunk partials folded into c in chunk
/// order), which parallelizes the tall-skinny case (huge n, small m) and
/// pins one accumulation order for in-memory and streaming callers alike.
void GramAtA(const double* a, size_t n, size_t m, double* c,
             const ParallelOptions& options = {});

/// out(cols x rows) = in(rows x cols)ᵀ, cache-blocked.
void TransposeInto(const double* in, size_t rows, size_t cols, double* out);

/// Shape-checked Matrix products routed through the pointer kernels.
Matrix MatMul(const Matrix& a, const Matrix& b,
              const ParallelOptions& options = {});

/// a · bᵀ (a.cols() must equal b.cols()).
Matrix MatMulTransposed(const Matrix& a, const Matrix& b,
                        const ParallelOptions& options = {});

/// x · basis · basisᵀ — the rank-p projection of the rows of `x` onto the
/// column span of `basis` (x: n x m, basis: m x p, result: n x m).
Matrix ProjectOntoBasis(const Matrix& x, const Matrix& basis,
                        const ParallelOptions& options = {});

/// centeredᵀ · centered / denom — the sample covariance of pre-centered
/// data in one blocked pass (denom = n or n-1 depending on ddof).
Matrix GramMatrix(const Matrix& centered, double denom,
                  const ParallelOptions& options = {});

}  // namespace kernels
}  // namespace linalg
}  // namespace randrecon

#endif  // RANDRECON_LINALG_KERNELS_H_
