// Thin singular value decomposition via one-sided Jacobi rotations.
//
// A = U Σ Vᵀ with U (n x m, orthonormal columns), Σ (m singular values,
// descending) and V (m x m, orthogonal), for n >= m. PCA on a centered
// record matrix can be done through the SVD of Y/√n without ever forming
// the covariance matrix — numerically preferable when attributes are
// near-collinear; matrix_util's eigen-based path and this one are
// cross-checked in tests.

#ifndef RANDRECON_LINALG_SVD_H_
#define RANDRECON_LINALG_SVD_H_

#include "common/result.h"
#include "linalg/matrix.h"

namespace randrecon {
namespace linalg {

/// Result of a thin SVD.
struct SvdDecomposition {
  /// Left singular vectors as columns (n x m). Columns whose singular
  /// value is (numerically) zero are filled with zeros.
  Matrix u;
  /// Singular values, descending, all >= 0.
  Vector singular_values;
  /// Right singular vectors as columns (m x m).
  Matrix v;
};

/// Options for the one-sided Jacobi sweep loop.
struct SvdOptions {
  /// Convergence threshold on column-pair orthogonality, relative to the
  /// product of column norms.
  double tolerance = 1e-12;
  /// Hard cap on full sweeps.
  int max_sweeps = 64;
};

/// Computes the thin SVD of an n x m matrix with n >= m. Fails with
/// InvalidArgument when n < m and NumericalError if the sweep cap is hit.
Result<SvdDecomposition> ThinSvd(const Matrix& a, const SvdOptions& options = {});

/// Rebuilds U Σ Vᵀ (test/diagnostic helper).
Matrix ComposeFromSvd(const SvdDecomposition& svd);

}  // namespace linalg
}  // namespace randrecon

#endif  // RANDRECON_LINALG_SVD_H_
