#include "linalg/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace randrecon {
namespace linalg {

Result<SvdDecomposition> ThinSvd(const Matrix& a, const SvdOptions& options) {
  const size_t n = a.rows();
  const size_t m = a.cols();
  if (n < m) {
    return Status::InvalidArgument(
        "ThinSvd: needs rows >= cols (got " + std::to_string(n) + " x " +
        std::to_string(m) + "); pass the transpose instead");
  }
  if (m == 0) {
    return SvdDecomposition{Matrix(), Vector{}, Matrix()};
  }

  // One-sided Jacobi: rotate column pairs of W (a working copy of A)
  // until all pairs are orthogonal; accumulate the rotations in V.
  Matrix w = a;
  Matrix v = Matrix::Identity(m);

  bool converged = false;
  for (int sweep = 0; sweep < options.max_sweeps && !converged; ++sweep) {
    converged = true;
    for (size_t p = 0; p + 1 < m; ++p) {
      for (size_t q = p + 1; q < m; ++q) {
        // Gram entries for columns p, q.
        double app = 0.0, aqq = 0.0, apq = 0.0;
        for (size_t i = 0; i < n; ++i) {
          const double wip = w(i, p);
          const double wiq = w(i, q);
          app += wip * wip;
          aqq += wiq * wiq;
          apq += wip * wiq;
        }
        if (std::fabs(apq) <=
            options.tolerance * std::sqrt(app * aqq) + 1e-300) {
          continue;
        }
        converged = false;
        // Jacobi rotation annihilating the (p, q) Gram entry.
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (size_t i = 0; i < n; ++i) {
          const double wip = w(i, p);
          const double wiq = w(i, q);
          w(i, p) = c * wip - s * wiq;
          w(i, q) = s * wip + c * wiq;
        }
        for (size_t i = 0; i < m; ++i) {
          const double vip = v(i, p);
          const double viq = v(i, q);
          v(i, p) = c * vip - s * viq;
          v(i, q) = s * vip + c * viq;
        }
      }
    }
  }
  if (!converged) {
    return Status::NumericalError("ThinSvd: Jacobi did not converge");
  }

  // Singular values are the column norms of W; U's columns are the
  // normalized columns.
  Vector sigma(m);
  for (size_t j = 0; j < m; ++j) {
    double norm = 0.0;
    for (size_t i = 0; i < n; ++i) norm += w(i, j) * w(i, j);
    sigma[j] = std::sqrt(norm);
  }

  // Sort descending.
  std::vector<size_t> order(m);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t lhs, size_t rhs) { return sigma[lhs] > sigma[rhs]; });

  SvdDecomposition out;
  out.singular_values.resize(m);
  out.u = Matrix(n, m);
  out.v = Matrix(m, m);
  const double scale =
      *std::max_element(sigma.begin(), sigma.end()) + 1e-300;
  for (size_t k = 0; k < m; ++k) {
    const size_t src = order[k];
    out.singular_values[k] = sigma[src];
    for (size_t i = 0; i < m; ++i) out.v(i, k) = v(i, src);
    if (sigma[src] > 1e-14 * scale) {
      for (size_t i = 0; i < n; ++i) out.u(i, k) = w(i, src) / sigma[src];
    }
    // else: leave the U column zero — the component carries no mass.
  }
  return out;
}

Matrix ComposeFromSvd(const SvdDecomposition& svd) {
  Matrix scaled = svd.u;
  for (size_t j = 0; j < scaled.cols(); ++j) {
    for (size_t i = 0; i < scaled.rows(); ++i) {
      scaled(i, j) *= svd.singular_values[j];
    }
  }
  return scaled * svd.v.Transpose();
}

}  // namespace linalg
}  // namespace randrecon
