// Cholesky factorization A = L Lᵀ for symmetric positive-(semi)definite
// matrices. Used by the multivariate-normal sampler and by SPD solves in
// the Bayes-estimate reconstructor.

#ifndef RANDRECON_LINALG_CHOLESKY_H_
#define RANDRECON_LINALG_CHOLESKY_H_

#include "common/result.h"
#include "linalg/matrix.h"

namespace randrecon {
namespace linalg {

/// Lower-triangular Cholesky factor with solve support.
class CholeskyFactorization {
 public:
  /// Factors a symmetric positive-definite matrix. Returns NumericalError
  /// if a non-positive pivot is hit (matrix not PD to working precision).
  static Result<CholeskyFactorization> Compute(const Matrix& a);

  /// Like Compute, but first adds `jitter` * mean(diag) * I when the plain
  /// factorization fails, retrying with 10x larger jitter up to `attempts`
  /// times. Sample covariance matrices that are PSD-but-singular (e.g. the
  /// Theorem 5.1 estimate after clipping) factor reliably this way.
  static Result<CholeskyFactorization> ComputeWithJitter(const Matrix& a,
                                                         double jitter = 1e-10,
                                                         int attempts = 8);

  /// The lower-triangular factor L with A = L Lᵀ.
  const Matrix& lower() const { return lower_; }

  /// Solves A x = b via forward + back substitution.
  Vector Solve(const Vector& b) const;

  /// Solves A X = B column-by-column.
  Matrix Solve(const Matrix& b) const;

  /// Inverse of A (solves against the identity). Prefer Solve for systems.
  Matrix Inverse() const;

  /// log(det A) = 2 Σ log(Lᵢᵢ).
  double LogDeterminant() const;

 private:
  explicit CholeskyFactorization(Matrix lower) : lower_(std::move(lower)) {}

  Matrix lower_;
};

}  // namespace linalg
}  // namespace randrecon

#endif  // RANDRECON_LINALG_CHOLESKY_H_
