// Symmetric eigendecomposition via the cyclic Jacobi rotation method.
//
// Every matrix the paper decomposes is a (sample) covariance matrix of at
// most 100x100, for which Jacobi is simple, numerically robust, and fast
// enough (milliseconds). Eigenpairs are returned in descending eigenvalue
// order, the convention PCA expects.

#ifndef RANDRECON_LINALG_EIGEN_H_
#define RANDRECON_LINALG_EIGEN_H_

#include "common/result.h"
#include "linalg/matrix.h"

namespace randrecon {
namespace linalg {

/// Result of a symmetric eigendecomposition A = Q Λ Qᵀ.
struct EigenDecomposition {
  /// Eigenvalues, sorted descending: λ₁ ≥ λ₂ ≥ ... ≥ λₘ.
  Vector eigenvalues;
  /// Orthonormal eigenvectors as *columns*, in the same order: column k of
  /// `eigenvectors` pairs with eigenvalues[k].
  Matrix eigenvectors;
};

/// Options for the Jacobi sweep loop.
struct JacobiOptions {
  /// Convergence threshold on the off-diagonal Frobenius norm relative to
  /// the matrix's own scale.
  double tolerance = 1e-12;
  /// Hard cap on full sweeps; 100x100 covariance matrices converge in ~10.
  int max_sweeps = 64;
};

/// Decomposes a symmetric matrix. Fails with InvalidArgument if `a` is not
/// square/symmetric and NumericalError if the sweep cap is hit before
/// convergence.
Result<EigenDecomposition> SymmetricEigen(const Matrix& a,
                                          const JacobiOptions& options = {});

/// Reconstructs Q Λ Qᵀ from an eigendecomposition (test/diagnostic helper,
/// and the §7.1 covariance synthesizer).
Matrix ComposeFromEigen(const Vector& eigenvalues, const Matrix& eigenvectors);

}  // namespace linalg
}  // namespace randrecon

#endif  // RANDRECON_LINALG_EIGEN_H_
