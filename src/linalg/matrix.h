// Dense row-major matrix of doubles.
//
// This is the workhorse type of the library: datasets (n records x m
// attributes), covariance matrices (m x m) and eigenvector bases are all
// Matrix values. The class is deliberately small; algorithms live in free
// functions (eigen.h, cholesky.h, lu.h, orthogonal.h, matrix_util.h).

#ifndef RANDRECON_LINALG_MATRIX_H_
#define RANDRECON_LINALG_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/check.h"

namespace randrecon {
namespace linalg {

/// A column vector / 1-D array of doubles. Row extraction, mean vectors and
/// single records use this alias.
using Vector = std::vector<double>;

/// Dense row-major matrix. Entry (i, j) lives at data()[i * cols() + j].
class Matrix {
 public:
  /// An empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// A rows x cols matrix, zero-initialized.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// A rows x cols matrix with every entry set to `fill`.
  Matrix(size_t rows, size_t cols, double fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Constructs from nested initializer lists:
  ///   Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  /// All rows must have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Builds a matrix from a flat row-major buffer (size must be rows*cols).
  static Matrix FromRowMajor(size_t rows, size_t cols, std::vector<double> data);

  /// The k x k identity matrix.
  static Matrix Identity(size_t k);

  /// A square matrix with `diag` on the diagonal, zero elsewhere.
  static Matrix Diagonal(const Vector& diag);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Mutable entry access. Bounds-checked via RR_CHECK.
  double& operator()(size_t i, size_t j) {
    RR_CHECK(i < rows_ && j < cols_)
        << "index (" << i << "," << j << ") out of " << rows_ << "x" << cols_;
    return data_[i * cols_ + j];
  }

  /// Const entry access. Bounds-checked via RR_CHECK.
  double operator()(size_t i, size_t j) const {
    RR_CHECK(i < rows_ && j < cols_)
        << "index (" << i << "," << j << ") out of " << rows_ << "x" << cols_;
    return data_[i * cols_ + j];
  }

  /// Raw row-major storage (for tight inner loops).
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Pointer to the start of row i.
  double* row_data(size_t i) { return data_.data() + i * cols_; }
  const double* row_data(size_t i) const { return data_.data() + i * cols_; }

  /// Copies row i into a Vector.
  Vector Row(size_t i) const;

  /// Copies column j into a Vector.
  Vector Col(size_t j) const;

  /// Overwrites row i from `values` (size must equal cols()).
  void SetRow(size_t i, const Vector& values);

  /// Overwrites column j from `values` (size must equal rows()).
  void SetCol(size_t j, const Vector& values);

  /// Returns the transpose.
  Matrix Transpose() const;

  /// Returns the sub-block of the first `num_cols` columns (used to form
  /// the principal-eigenvector matrix Q-hat in PCA-DR).
  Matrix LeftColumns(size_t num_cols) const;

  /// Returns the sub-block [row_begin, row_end) x [col_begin, col_end).
  Matrix Block(size_t row_begin, size_t row_end, size_t col_begin,
               size_t col_end) const;

  /// Element-wise in-place operations.
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);

  /// Exact element-wise equality (for round-trip tests; use
  /// MaxAbsDifference from matrix_util.h for tolerance comparisons).
  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ && data_ == other.data_;
  }

  /// Human-readable rendering, one row per line (debugging aid).
  std::string ToString(int precision = 4) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// Element-wise sum; shapes must match.
Matrix operator+(const Matrix& a, const Matrix& b);

/// Element-wise difference; shapes must match.
Matrix operator-(const Matrix& a, const Matrix& b);

/// Matrix product (a.cols() must equal b.rows()).
Matrix operator*(const Matrix& a, const Matrix& b);

/// Scalar product.
Matrix operator*(const Matrix& a, double scalar);
Matrix operator*(double scalar, const Matrix& a);

/// Matrix-vector product (a.cols() must equal x.size()).
Vector operator*(const Matrix& a, const Vector& x);

/// Row-vector-matrix product xᵀA (x.size() must equal a.rows()).
Vector MultiplyVectorMatrix(const Vector& x, const Matrix& a);

}  // namespace linalg
}  // namespace randrecon

#endif  // RANDRECON_LINALG_MATRIX_H_
