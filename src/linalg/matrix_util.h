// Matrix-level utilities: norms, symmetry helpers, PSD repair.

#ifndef RANDRECON_LINALG_MATRIX_UTIL_H_
#define RANDRECON_LINALG_MATRIX_UTIL_H_

#include "common/result.h"
#include "linalg/matrix.h"

namespace randrecon {
namespace linalg {

/// Sum of the diagonal entries (square matrices only).
double Trace(const Matrix& a);

/// Frobenius norm sqrt(Σ aᵢⱼ²).
double FrobeniusNorm(const Matrix& a);

/// Largest |aᵢⱼ - bᵢⱼ|; shapes must match.
double MaxAbsDifference(const Matrix& a, const Matrix& b);

/// True iff |aᵢⱼ - aⱼᵢ| ≤ tol for all i, j.
bool IsSymmetric(const Matrix& a, double tol = 1e-9);

/// Replaces a with (a + aᵀ)/2 — removes the tiny asymmetry that floating
/// point accumulation introduces in sample covariance matrices.
Matrix Symmetrize(const Matrix& a);

/// Projects a symmetric matrix onto the PSD cone by clipping negative
/// eigenvalues to `floor` (>= 0). Needed because the Theorem 5.1 estimator
/// Cov(Y) - σ²I can dip below PSD at finite sample sizes. Fails with the
/// eigensolver's status on non-finite or asymmetric input.
Result<Matrix> ClipToPositiveSemiDefinite(const Matrix& a, double floor = 0.0);

/// True iff the matrix has orthonormal columns: ||QᵀQ - I||max ≤ tol.
bool HasOrthonormalColumns(const Matrix& q, double tol = 1e-8);

/// Converts a covariance matrix to the matrix of correlation coefficients:
/// corr(i,j) = cov(i,j) / sqrt(cov(i,i) cov(j,j)). Zero-variance rows map
/// to zero correlation (diagonal stays 1).
Matrix CovarianceToCorrelation(const Matrix& cov);

}  // namespace linalg
}  // namespace randrecon

#endif  // RANDRECON_LINALG_MATRIX_UTIL_H_
