#include "linalg/vector_ops.h"

#include <cmath>

namespace randrecon {
namespace linalg {

double Dot(const Vector& a, const Vector& b) {
  RR_CHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double Norm(const Vector& a) { return std::sqrt(Dot(a, a)); }

Vector Add(const Vector& a, const Vector& b) {
  RR_CHECK_EQ(a.size(), b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector Subtract(const Vector& a, const Vector& b) {
  RR_CHECK_EQ(a.size(), b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector Scale(const Vector& a, double s) {
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] * s;
  return out;
}

void AddScaled(Vector* a, double s, const Vector& b) {
  RR_CHECK_EQ(a->size(), b.size());
  for (size_t i = 0; i < b.size(); ++i) (*a)[i] += s * b[i];
}

Matrix Outer(const Vector& a, const Vector& b) {
  Matrix out(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    double* row = out.row_data(i);
    for (size_t j = 0; j < b.size(); ++j) row[j] = a[i] * b[j];
  }
  return out;
}

double Mean(const Vector& a) {
  if (a.empty()) return 0.0;
  return Sum(a) / static_cast<double>(a.size());
}

double Variance(const Vector& a) {
  if (a.size() < 1) return 0.0;
  const double mu = Mean(a);
  double sum = 0.0;
  for (double v : a) sum += (v - mu) * (v - mu);
  return sum / static_cast<double>(a.size());
}

double Sum(const Vector& a) {
  double sum = 0.0;
  for (double v : a) sum += v;
  return sum;
}

double MaxAbs(const Vector& a) {
  double best = 0.0;
  for (double v : a) best = std::max(best, std::fabs(v));
  return best;
}

}  // namespace linalg
}  // namespace randrecon
