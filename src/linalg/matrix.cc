#include "linalg/matrix.h"

#include <sstream>

#include "common/string_util.h"
#include "linalg/kernels.h"

namespace randrecon {
namespace linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
    : rows_(rows.size()), cols_(rows.size() == 0 ? 0 : rows.begin()->size()) {
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    RR_CHECK_EQ(row.size(), cols_) << "ragged initializer list";
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::FromRowMajor(size_t rows, size_t cols, std::vector<double> data) {
  RR_CHECK_EQ(data.size(), rows * cols);
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.data_ = std::move(data);
  return m;
}

Matrix Matrix::Identity(size_t k) {
  Matrix m(k, k);
  for (size_t i = 0; i < k; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Diagonal(const Vector& diag) {
  Matrix m(diag.size(), diag.size());
  for (size_t i = 0; i < diag.size(); ++i) m(i, i) = diag[i];
  return m;
}

Vector Matrix::Row(size_t i) const {
  RR_CHECK_LT(i, rows_);
  return Vector(row_data(i), row_data(i) + cols_);
}

Vector Matrix::Col(size_t j) const {
  RR_CHECK_LT(j, cols_);
  Vector out(rows_);
  for (size_t i = 0; i < rows_; ++i) out[i] = data_[i * cols_ + j];
  return out;
}

void Matrix::SetRow(size_t i, const Vector& values) {
  RR_CHECK_LT(i, rows_);
  RR_CHECK_EQ(values.size(), cols_);
  std::copy(values.begin(), values.end(), row_data(i));
}

void Matrix::SetCol(size_t j, const Vector& values) {
  RR_CHECK_LT(j, cols_);
  RR_CHECK_EQ(values.size(), rows_);
  for (size_t i = 0; i < rows_; ++i) data_[i * cols_ + j] = values[i];
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  kernels::TransposeInto(data_.data(), rows_, cols_, t.data_.data());
  return t;
}

Matrix Matrix::LeftColumns(size_t num_cols) const {
  RR_CHECK_LE(num_cols, cols_);
  return Block(0, rows_, 0, num_cols);
}

Matrix Matrix::Block(size_t row_begin, size_t row_end, size_t col_begin,
                     size_t col_end) const {
  RR_CHECK(row_begin <= row_end && row_end <= rows_);
  RR_CHECK(col_begin <= col_end && col_end <= cols_);
  Matrix out(row_end - row_begin, col_end - col_begin);
  for (size_t i = row_begin; i < row_end; ++i) {
    const double* src = row_data(i) + col_begin;
    std::copy(src, src + (col_end - col_begin), out.row_data(i - row_begin));
  }
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  RR_CHECK(rows_ == other.rows_ && cols_ == other.cols_) << "shape mismatch";
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  RR_CHECK(rows_ == other.rows_ && cols_ == other.cols_) << "shape mismatch";
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (double& v : data_) v *= scalar;
  return *this;
}

std::string Matrix::ToString(int precision) const {
  std::ostringstream out;
  for (size_t i = 0; i < rows_; ++i) {
    out << "[";
    for (size_t j = 0; j < cols_; ++j) {
      if (j > 0) out << ", ";
      out << FormatDouble((*this)(i, j), precision);
    }
    out << "]\n";
  }
  return out.str();
}

Matrix operator+(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out += b;
  return out;
}

Matrix operator-(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out -= b;
  return out;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  return kernels::MatMul(a, b);
}

Matrix operator*(const Matrix& a, double scalar) {
  Matrix out = a;
  out *= scalar;
  return out;
}

Matrix operator*(double scalar, const Matrix& a) { return a * scalar; }

Vector operator*(const Matrix& a, const Vector& x) {
  RR_CHECK_EQ(a.cols(), x.size()) << "matvec shape mismatch";
  Vector out(a.rows(), 0.0);
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* row = a.row_data(i);
    double sum = 0.0;
    for (size_t j = 0; j < a.cols(); ++j) sum += row[j] * x[j];
    out[i] = sum;
  }
  return out;
}

Vector MultiplyVectorMatrix(const Vector& x, const Matrix& a) {
  RR_CHECK_EQ(x.size(), a.rows()) << "vecmat shape mismatch";
  Vector out(a.cols(), 0.0);
  for (size_t i = 0; i < a.rows(); ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    const double* row = a.row_data(i);
    for (size_t j = 0; j < a.cols(); ++j) out[j] += xi * row[j];
  }
  return out;
}

}  // namespace linalg
}  // namespace randrecon
