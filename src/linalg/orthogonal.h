// Gram-Schmidt orthonormalization. The §7.1 synthetic-data generator
// produces its random eigenvector basis Q by orthonormalizing a random
// Gaussian matrix, exactly as the paper describes ("By using Gram-Schmidt
// orthonormalization process, we generate an orthogonal matrix Q").

#ifndef RANDRECON_LINALG_ORTHOGONAL_H_
#define RANDRECON_LINALG_ORTHOGONAL_H_

#include "common/result.h"
#include "linalg/matrix.h"

namespace randrecon {
namespace linalg {

/// Orthonormalizes the *columns* of `a` using modified Gram-Schmidt (the
/// numerically stable variant). Returns NumericalError if the columns are
/// rank-deficient (a column collapses below `rank_tolerance` of its
/// original norm). The result has the same shape as `a` and satisfies
/// QᵀQ = I.
Result<Matrix> GramSchmidtOrthonormalize(const Matrix& a,
                                         double rank_tolerance = 1e-10);

/// Projects vector `v` onto the span of the first `k` columns of the
/// orthonormal basis `q`: returns Q̂ Q̂ᵀ v. Helper shared by PCA-DR and SF.
Vector ProjectOntoColumns(const Matrix& q, size_t k, const Vector& v);

}  // namespace linalg
}  // namespace randrecon

#endif  // RANDRECON_LINALG_ORTHOGONAL_H_
