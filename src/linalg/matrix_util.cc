#include "linalg/matrix_util.h"

#include <cmath>

#include "linalg/eigen.h"
#include "linalg/kernels.h"

namespace randrecon {
namespace linalg {

double Trace(const Matrix& a) {
  RR_CHECK_EQ(a.rows(), a.cols()) << "Trace needs a square matrix";
  double sum = 0.0;
  for (size_t i = 0; i < a.rows(); ++i) sum += a(i, i);
  return sum;
}

double FrobeniusNorm(const Matrix& a) {
  double sum = 0.0;
  const double* p = a.data();
  for (size_t i = 0; i < a.size(); ++i) sum += p[i] * p[i];
  return std::sqrt(sum);
}

double MaxAbsDifference(const Matrix& a, const Matrix& b) {
  RR_CHECK(a.rows() == b.rows() && a.cols() == b.cols()) << "shape mismatch";
  double best = 0.0;
  const double* pa = a.data();
  const double* pb = b.data();
  for (size_t i = 0; i < a.size(); ++i) {
    best = std::max(best, std::fabs(pa[i] - pb[i]));
  }
  return best;
}

bool IsSymmetric(const Matrix& a, double tol) {
  if (a.rows() != a.cols()) return false;
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = i + 1; j < a.cols(); ++j) {
      if (std::fabs(a(i, j) - a(j, i)) > tol) return false;
    }
  }
  return true;
}

Matrix Symmetrize(const Matrix& a) {
  RR_CHECK_EQ(a.rows(), a.cols());
  Matrix out(a.rows(), a.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      out(i, j) = 0.5 * (a(i, j) + a(j, i));
    }
  }
  return out;
}

Result<Matrix> ClipToPositiveSemiDefinite(const Matrix& a, double floor) {
  RR_CHECK_GE(floor, 0.0);
  RR_ASSIGN_OR_RETURN(EigenDecomposition eig, SymmetricEigen(a));
  Vector clipped = eig.eigenvalues;
  bool changed = false;
  for (double& lambda : clipped) {
    if (lambda < floor) {
      lambda = floor;
      changed = true;
    }
  }
  if (!changed) return Symmetrize(a);
  return ComposeFromEigen(clipped, eig.eigenvectors);
}

bool HasOrthonormalColumns(const Matrix& q, double tol) {
  // qᵀq is a column Gram matrix: one blocked pass, no transpose copy.
  const Matrix gram = kernels::GramMatrix(q, 1.0);
  const Matrix identity = Matrix::Identity(q.cols());
  return MaxAbsDifference(gram, identity) <= tol;
}

Matrix CovarianceToCorrelation(const Matrix& cov) {
  RR_CHECK_EQ(cov.rows(), cov.cols());
  const size_t m = cov.rows();
  Matrix corr(m, m);
  Vector stddev(m);
  for (size_t i = 0; i < m; ++i) {
    stddev[i] = cov(i, i) > 0.0 ? std::sqrt(cov(i, i)) : 0.0;
  }
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < m; ++j) {
      if (i == j) {
        corr(i, j) = 1.0;
      } else if (stddev[i] > 0.0 && stddev[j] > 0.0) {
        corr(i, j) = cov(i, j) / (stddev[i] * stddev[j]);
      } else {
        corr(i, j) = 0.0;
      }
    }
  }
  return corr;
}

}  // namespace linalg
}  // namespace randrecon
