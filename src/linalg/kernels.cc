#include "linalg/kernels.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/check.h"

namespace randrecon {
namespace linalg {
namespace kernels {
namespace {

// ---------------------------------------------------------------------------
// Micro-kernel configuration.
//
// The inner loop is written with GCC/Clang vector extensions so one source
// compiles to whatever SIMD the build enables. The register tile is
// kMr rows x (2 vectors) columns; sizes are chosen so the accumulator
// tile plus a couple of working vectors fits the architectural register
// file (32 zmm / 16 ymm / 16 xmm).
// ---------------------------------------------------------------------------
#if defined(__AVX512F__)
#define RR_SIMD_BYTES 64
constexpr size_t kMr = 6;  // 12 zmm accumulators.
#elif defined(__AVX__)
#define RR_SIMD_BYTES 32
constexpr size_t kMr = 4;  // 8 ymm accumulators.
#else
#define RR_SIMD_BYTES 16
constexpr size_t kMr = 4;  // 8 xmm accumulators.
#endif

typedef double vreal __attribute__((vector_size(RR_SIMD_BYTES)));
constexpr size_t kVecLen = RR_SIMD_BYTES / sizeof(double);
constexpr size_t kNr = 2 * kVecLen;

// Cache blocking: a kKc x kNr B panel slice stays in L1 across the row
// sweep, a kMc x kKc packed A block stays in L2, and a kKc x kNc packed B
// block stays in L2/L3.
constexpr size_t kKc = 256;
constexpr size_t kMc = 96;  // Divisible by every kMr above.
constexpr size_t kNc = 2048;

// Below this many multiply-adds the packed path costs more than it saves
// (measured cutover on AVX-512 is near 110^3); run the plain loops.
constexpr size_t kBlockedFlopCutoff = size_t{1} << 20;
// Engage the thread pool only when there is enough work to amortize it.
constexpr size_t kParallelFlopCutoff = size_t{8} << 20;

/// Packs rows [row0, row0+mc) x depth [k0, k0+kc) of an m x k operand into
/// kMr-row panels: panel p holds rows [p*kMr, (p+1)*kMr), laid out
/// depth-major (out[kk*kMr + r]), zero-padded to a full panel. When
/// `transposed`, the logical operand is aᵀ and element (row, kk) is read
/// from a[kk*lda + row] instead — this is how GramAtA consumes the data
/// matrix without materializing its transpose. The flag is a template
/// parameter so the hot non-transposed copy loop vectorizes cleanly.
template <bool transposed>
void PackA(const double* a, size_t lda, size_t row0, size_t k0, size_t mc,
           size_t kc, double* out) {
  for (size_t p = 0; p < mc; p += kMr) {
    const size_t pr = std::min(kMr, mc - p);
    for (size_t kk = 0; kk < kc; ++kk) {
      for (size_t r = 0; r < pr; ++r) {
        out[kk * kMr + r] = transposed
                                ? a[(k0 + kk) * lda + (row0 + p + r)]
                                : a[(row0 + p + r) * lda + (k0 + kk)];
      }
      for (size_t r = pr; r < kMr; ++r) out[kk * kMr + r] = 0.0;
    }
    out += kKc * kMr;
  }
}

/// Packs depth [k0, k0+kc) x columns [col0, col0+nc) of a k x n operand
/// into kNr-column panels laid out depth-major (out[kk*kNr + u]),
/// zero-padded. When `transposed`, the logical operand is bᵀ with b stored
/// n x k, so element (kk, col) is read from b[col*ldb + kk] — this is how
/// MatMulABt consumes the second factor's rows directly.
template <bool transposed>
void PackB(const double* b, size_t ldb, size_t k0, size_t col0, size_t kc,
           size_t nc, double* out) {
  for (size_t q = 0; q < nc; q += kNr) {
    const size_t qn = std::min(kNr, nc - q);
    for (size_t kk = 0; kk < kc; ++kk) {
      for (size_t u = 0; u < qn; ++u) {
        out[kk * kNr + u] = transposed ? b[(col0 + q + u) * ldb + (k0 + kk)]
                                       : b[(k0 + kk) * ldb + (col0 + q + u)];
      }
      for (size_t u = qn; u < kNr; ++u) out[kk * kNr + u] = 0.0;
    }
    out += kKc * kNr;
  }
}

/// The register-tiled core: accumulates a kMr x kNr tile of C from packed
/// panels, then adds it into C (respecting the pr x qn valid region of
/// edge tiles).
inline void MicroKernel(const double* __restrict ap, const double* __restrict bp,
                        size_t kc, double* __restrict c, size_t ldc, size_t pr,
                        size_t qn) {
  vreal acc[kMr][2];
  for (size_t r = 0; r < kMr; ++r) {
    acc[r][0] = vreal{};
    acc[r][1] = vreal{};
  }
  for (size_t kk = 0; kk < kc; ++kk) {
    vreal b0, b1;
    __builtin_memcpy(&b0, bp + kk * kNr, sizeof(vreal));
    __builtin_memcpy(&b1, bp + kk * kNr + kVecLen, sizeof(vreal));
    for (size_t r = 0; r < kMr; ++r) {
      const double av = ap[kk * kMr + r];
      acc[r][0] += av * b0;
      acc[r][1] += av * b1;
    }
  }
  if (pr == kMr && qn == kNr) {
    for (size_t r = 0; r < kMr; ++r) {
      for (size_t h = 0; h < 2; ++h) {
        for (size_t u = 0; u < kVecLen; ++u) {
          c[r * ldc + h * kVecLen + u] += acc[r][h][u];
        }
      }
    }
  } else {
    for (size_t r = 0; r < pr; ++r) {
      for (size_t u = 0; u < qn; ++u) {
        c[r * ldc + u] += acc[r][u / kVecLen][u % kVecLen];
      }
    }
  }
}

/// Blocked GEMM driver: C(m x n) = op_a(a) · op_b(b) with C pre-zeroed by
/// the caller. The k0 loop is outermost and sequential, so each C element
/// accumulates its k-blocks in a fixed order; parallelism splits the i0
/// row-blocks, whose C tiles are disjoint — together this makes the
/// result independent of the thread count.
/// With `upper_only`, micro-tiles lying strictly below the diagonal of C
/// are skipped (the caller mirrors them from the upper triangle): a syrk
/// for symmetric outputs at half the flops. The tile set is a pure
/// function of the geometry, so determinism is unaffected.
template <bool a_trans, bool b_trans>
void GemmBlocked(const double* a, size_t lda, const double* b, size_t ldb,
                 double* c, size_t m, size_t k, size_t n,
                 const ParallelOptions& options, bool upper_only = false) {
  const size_t nc_max = std::min(kNc, (n + kNr - 1) / kNr * kNr);
  std::vector<double> bpack(nc_max * kKc);
  const size_t num_iblocks = (m + kMc - 1) / kMc;

  ParallelOptions block_options = options;
  if (m * k * n < kParallelFlopCutoff) block_options.num_threads = 1;

  for (size_t k0 = 0; k0 < k; k0 += kKc) {
    const size_t kc = std::min(kKc, k - k0);
    for (size_t j0 = 0; j0 < n; j0 += kNc) {
      const size_t nc = std::min(kNc, n - j0);
      PackB<b_trans>(b, ldb, k0, j0, kc, nc, bpack.data());
      ParallelFor(
          0, num_iblocks,
          [&](size_t ib_begin, size_t ib_end) {
            std::vector<double> apack(kMc * kKc);
            for (size_t ib = ib_begin; ib < ib_end; ++ib) {
              const size_t i0 = ib * kMc;
              const size_t mc = std::min(kMc, m - i0);
              PackA<a_trans>(a, lda, i0, k0, mc, kc, apack.data());
              for (size_t p = 0; p < mc; p += kMr) {
                const size_t pr = std::min(kMr, mc - p);
                const double* ap = apack.data() + (p / kMr) * kKc * kMr;
                for (size_t q = 0; q < nc; q += kNr) {
                  const size_t qn = std::min(kNr, nc - q);
                  // Tile columns [j0+q, j0+q+qn) all below row i0+p → the
                  // whole tile is strictly lower-triangle; skip it.
                  if (upper_only && j0 + q + qn <= i0 + p) continue;
                  const double* bp = bpack.data() + (q / kNr) * kKc * kNr;
                  MicroKernel(ap, bp, kc, c + (i0 + p) * n + j0 + q, n, pr,
                              qn);
                }
              }
            }
          },
          block_options);
    }
  }
}

}  // namespace

void MatMul(const double* a, const double* b, double* c, size_t m, size_t k,
            size_t n, const ParallelOptions& options) {
  if (m == 0 || n == 0) return;
  std::memset(c, 0, m * n * sizeof(double));
  if (k == 0) return;
  if (m * k * n < kBlockedFlopCutoff) {
    // The plain i-k-j loop the kernel layer replaced; still the fastest
    // shape for small operands. No zero-skip (the old loop had one): a
    // 0.0 factor must multiply — and so propagate — a NaN/Inf partner,
    // exactly as the blocked path does, so semantics don't flip with
    // operand size.
    for (size_t i = 0; i < m; ++i) {
      const double* a_row = a + i * k;
      double* c_row = c + i * n;
      for (size_t kk = 0; kk < k; ++kk) {
        const double a_ik = a_row[kk];
        const double* b_row = b + kk * n;
        for (size_t j = 0; j < n; ++j) c_row[j] += a_ik * b_row[j];
      }
    }
    return;
  }
  GemmBlocked<false, false>(a, k, b, n, c, m, k, n, options);
}

void MatMulABt(const double* a, const double* b, double* c, size_t m, size_t k,
               size_t n, const ParallelOptions& options) {
  if (m == 0 || n == 0) return;
  std::memset(c, 0, m * n * sizeof(double));
  if (k == 0) return;
  if (m * k * n < kBlockedFlopCutoff) {
    // Row-by-row dot products: both operands are walked contiguously.
    for (size_t i = 0; i < m; ++i) {
      const double* a_row = a + i * k;
      double* c_row = c + i * n;
      for (size_t j = 0; j < n; ++j) {
        const double* b_row = b + j * k;
        double sum = 0.0;
        for (size_t kk = 0; kk < k; ++kk) sum += a_row[kk] * b_row[kk];
        c_row[j] = sum;
      }
    }
    return;
  }
  GemmBlocked<false, true>(a, k, b, k, c, m, k, n, options);
}

void GramAtAChunk(const double* a, size_t rows, size_t m, double* partial,
                  const ParallelOptions& options) {
  if (m == 0) return;
  std::memset(partial, 0, m * m * sizeof(double));
  if (rows == 0) return;
  if (m * m * rows < kBlockedFlopCutoff) {
    // Column-pair accumulation exploiting symmetry (the loop
    // stats::SampleCovariance used to run inline). No zero-skip: a 0.0
    // factor must still multiply (and so propagate) a NaN/Inf partner.
    for (size_t i = 0; i < rows; ++i) {
      const double* row = a + i * m;
      for (size_t p = 0; p < m; ++p) {
        const double v = row[p];
        double* partial_row = partial + p * m;
        for (size_t q = p; q < m; ++q) partial_row[q] += v * row[q];
      }
    }
    return;
  }
  // partial = aᵀ · a through the blocked driver, syrk-style: only the
  // upper block-triangle of tiles is computed (the first operand is the
  // chunk read transposed, lda = m; the second is the chunk as-is) at
  // half the flops of a full product. GemmBlocked partitions disjoint
  // output tiles only, so the accumulation order per element does not
  // depend on the thread count.
  GemmBlocked<true, false>(a, m, a, m, partial, m, rows, m, options,
                           /*upper_only=*/true);
}

void GramAtA(const double* a, size_t n, size_t m, double* c,
             const ParallelOptions& options) {
  if (m == 0) return;
  const size_t num_chunks = (n + kGramChunkRows - 1) / kGramChunkRows;
  if (num_chunks <= 1) {
    // One chunk: write the partial straight into c. Bitwise identical to
    // the buffered merge below (and to a streaming accumulator's
    // "partial added into a zeroed scatter"): the accumulators start at
    // +0.0 and never produce -0.0, so 0.0 + x == x for every element.
    GramAtAChunk(a, n, m, c, options);
  } else {
    std::memset(c, 0, m * m * sizeof(double));
    // Record-dimension (k) parallelism: chunk partials are computed wave
    // by wave — across chunks when m fits a single output-row block of
    // the GEMM driver (the tall-skinny case that used to run
    // single-threaded), within each chunk otherwise — and folded into c
    // strictly in chunk order. Each element's floating-point order is
    // therefore a pure function of n alone: bitwise identical for any
    // thread count and for any out-of-core caller flushing
    // kGramChunkRows records at a time.
    const size_t threads = EffectiveThreadCount(options, num_chunks);
    const size_t wave = m > kMc ? 1 : std::min(num_chunks, threads);
    std::vector<double> partials(wave * m * m);
    ParallelOptions chunk_options = options;
    if (wave > 1) chunk_options.num_threads = 1;
    for (size_t wave_begin = 0; wave_begin < num_chunks; wave_begin += wave) {
      const size_t wave_end = std::min(wave_begin + wave, num_chunks);
      ParallelFor(
          wave_begin, wave_end,
          [&](size_t chunk_begin, size_t chunk_end) {
            for (size_t chunk = chunk_begin; chunk < chunk_end; ++chunk) {
              const size_t row0 = chunk * kGramChunkRows;
              const size_t rows = std::min(kGramChunkRows, n - row0);
              GramAtAChunk(a + row0 * m, rows, m,
                           partials.data() + (chunk - wave_begin) * m * m,
                           chunk_options);
            }
          },
          options);
      for (size_t chunk = wave_begin; chunk < wave_end; ++chunk) {
        const double* partial = partials.data() + (chunk - wave_begin) * m * m;
        for (size_t p = 0; p < m; ++p) {
          double* c_row = c + p * m;
          const double* partial_row = partial + p * m;
          for (size_t q = p; q < m; ++q) c_row[q] += partial_row[q];
        }
      }
    }
  }
  for (size_t p = 0; p < m; ++p) {
    for (size_t q = p + 1; q < m; ++q) c[q * m + p] = c[p * m + q];
  }
}

void TransposeInto(const double* in, size_t rows, size_t cols, double* out) {
  constexpr size_t kTile = 32;  // 32x32 doubles = 8 KiB working set.
  if (rows * cols < kTile * kTile) {
    for (size_t i = 0; i < rows; ++i) {
      const double* src = in + i * cols;
      for (size_t j = 0; j < cols; ++j) out[j * rows + i] = src[j];
    }
    return;
  }
  for (size_t i0 = 0; i0 < rows; i0 += kTile) {
    const size_t i1 = std::min(i0 + kTile, rows);
    for (size_t j0 = 0; j0 < cols; j0 += kTile) {
      const size_t j1 = std::min(j0 + kTile, cols);
      for (size_t i = i0; i < i1; ++i) {
        const double* src = in + i * cols;
        for (size_t j = j0; j < j1; ++j) out[j * rows + i] = src[j];
      }
    }
  }
}

Matrix MatMul(const Matrix& a, const Matrix& b, const ParallelOptions& options) {
  RR_CHECK_EQ(a.cols(), b.rows()) << "matmul shape mismatch";
  Matrix out(a.rows(), b.cols());
  MatMul(a.data(), b.data(), out.data(), a.rows(), a.cols(), b.cols(),
         options);
  return out;
}

Matrix MatMulTransposed(const Matrix& a, const Matrix& b,
                        const ParallelOptions& options) {
  RR_CHECK_EQ(a.cols(), b.cols()) << "matmul-ABt shape mismatch";
  Matrix out(a.rows(), b.rows());
  MatMulABt(a.data(), b.data(), out.data(), a.rows(), a.cols(), b.rows(),
            options);
  return out;
}

Matrix ProjectOntoBasis(const Matrix& x, const Matrix& basis,
                        const ParallelOptions& options) {
  RR_CHECK_EQ(x.cols(), basis.rows()) << "projection shape mismatch";
  const Matrix scores = MatMul(x, basis, options);
  return MatMulTransposed(scores, basis, options);
}

Matrix GramMatrix(const Matrix& centered, double denom,
                  const ParallelOptions& options) {
  RR_CHECK_GT(denom, 0.0);
  Matrix out(centered.cols(), centered.cols());
  GramAtA(centered.data(), centered.rows(), centered.cols(), out.data(),
          options);
  double* c = out.data();
  for (size_t i = 0; i < out.size(); ++i) c[i] /= denom;
  return out;
}

}  // namespace kernels
}  // namespace linalg
}  // namespace randrecon
