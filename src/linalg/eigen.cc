#include "linalg/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/kernels.h"
#include "linalg/matrix_util.h"

namespace randrecon {
namespace linalg {
namespace {

/// Sum of squares of the strictly-upper-triangle entries, via raw row
/// pointers. Used once to seed the incremental off-diagonal tracker and
/// once per apparent convergence to confirm it against accumulated
/// floating-point drift.
double UpperOffDiagonalSquaredSum(const double* a, size_t m) {
  double sum = 0.0;
  for (size_t i = 0; i < m; ++i) {
    const double* row = a + i * m;
    for (size_t j = i + 1; j < m; ++j) sum += row[j] * row[j];
  }
  return sum;
}

/// Applies the plane rotation (x, y) <- (c x - s y, s x + c y) to the
/// element pair, in the drift-resistant form of Numerical Recipes
/// (tau = s / (1 + c), so c x - s y == x - s (y + tau x)).
inline void Rotate(double& x, double& y, double s, double tau) {
  const double g = x;
  const double h = y;
  x = g - s * (h + g * tau);
  y = h + s * (g - h * tau);
}

}  // namespace

Result<EigenDecomposition> SymmetricEigen(const Matrix& input,
                                          const JacobiOptions& options) {
  if (input.rows() != input.cols()) {
    return Status::InvalidArgument("SymmetricEigen: matrix is not square");
  }
  const double input_norm = FrobeniusNorm(input);
  if (!std::isfinite(input_norm)) {
    // NaN/Inf entries (or a norm that overflows) can masquerade as a
    // converged diagonal once rotations force pivots to zero; reject
    // up front instead of sweeping 64 times over garbage.
    return Status::InvalidArgument(
        "SymmetricEigen: matrix has non-finite entries or overflowing norm");
  }
  if (!IsSymmetric(input, 1e-8 * (1.0 + input_norm))) {
    return Status::InvalidArgument("SymmetricEigen: matrix is not symmetric");
  }
  const size_t m = input.rows();
  if (m == 0) {
    return EigenDecomposition{Vector{}, Matrix{}};
  }
  Matrix a_mat = Symmetrize(input);  // Scrub tiny floating-point asymmetry.
  // The eigenvector basis is accumulated transposed (row k = candidate
  // eigenvector k) so each rotation touches two contiguous rows instead of
  // two strided columns.
  Matrix qt_mat = Matrix::Identity(m);
  double* a = a_mat.data();
  double* qt = qt_mat.data();

  const double scale = FrobeniusNorm(a_mat);
  // Same criterion as the historical full-matrix rescan: the full
  // off-diagonal square sum is twice the upper-triangle sum, so halve the
  // threshold instead of doubling the scan.
  const double threshold = 0.5 * options.tolerance * options.tolerance *
                           (scale > 0.0 ? scale * scale : 1.0);

  // `off` tracks the upper-triangle off-diagonal square sum incrementally:
  // a Jacobi rotation at (p, r) zeroes a_pr and rotates every other
  // affected pair orthogonally (preserving its square sum), so the total
  // drops by exactly a_pr^2 per rotation — no O(m^2) rescan per sweep.
  // The tracker accumulates one rounding error per rotation, which can
  // exceed the (tiny) threshold itself, so `drift` carries a running
  // bound on that error: whenever the true sum could be below threshold
  // (off <= threshold + drift), an exact scan decides.
  constexpr double kEps = 2.3e-16;
  double off = UpperOffDiagonalSquaredSum(a, m);
  double drift = kEps * off * static_cast<double>(m * m);
  bool converged = off <= threshold;
  for (int sweep = 0; sweep < options.max_sweeps && !converged; ++sweep) {
    // One cyclic sweep over all (p, r) pairs above the diagonal. Only the
    // upper triangle is stored/updated; symmetry supplies the rest.
    for (size_t p = 0; p + 1 < m; ++p) {
      double* row_p = a + p * m;
      for (size_t r = p + 1; r < m; ++r) {
        const double apr = row_p[r];
        if (std::fabs(apr) < 1e-300) continue;
        const double app = row_p[p];
        const double arr = a[r * m + r];
        // Classic Jacobi rotation angle: stable computation of t = tan θ.
        const double theta = (arr - app) / (2.0 * apr);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        const double tau = s / (1.0 + c);

        // One rounding error from the subtraction plus ~2 ulp per rotated
        // pair (the pairs' square sums are themselves part of `off`), so
        // grow the bound by a few eps of the current total.
        drift += 4.0 * kEps * off;
        off -= apr * apr;
        if (off < 0.0) off = 0.0;
        row_p[p] = app - t * apr;
        a[r * m + r] = arr + t * apr;
        row_p[r] = 0.0;

        double* row_r = a + r * m;
        // The three upper-triangle segments of rows/columns p and r:
        // pairs (a_jp, a_jr) for j < p, (a_pj, a_jr) for p < j < r, and
        // (a_pj, a_rj) for j > r — the last one is fully contiguous.
        for (size_t j = 0; j < p; ++j) {
          Rotate(a[j * m + p], a[j * m + r], s, tau);
        }
        for (size_t j = p + 1; j < r; ++j) {
          Rotate(row_p[j], a[j * m + r], s, tau);
        }
        for (size_t j = r + 1; j < m; ++j) {
          Rotate(row_p[j], row_r[j], s, tau);
        }
        // Accumulate the basis: Q <- Q J is a contiguous row pair of Qᵀ.
        double* qrow_p = qt + p * m;
        double* qrow_r = qt + r * m;
        for (size_t j = 0; j < m; ++j) {
          Rotate(qrow_p[j], qrow_r[j], s, tau);
        }
      }
    }
    if (off <= threshold + drift) {
      // The true sum may be at or below threshold: decide with an exact
      // scan and restart the tracker from it.
      off = UpperOffDiagonalSquaredSum(a, m);
      drift = kEps * off * static_cast<double>(m * m);
      converged = off <= threshold;
    }
  }
  if (!converged) {
    // The tracker only gates *when* exact scans run; never let its drift
    // estimate turn a converged matrix into a failure. One last exact
    // scan decides, exactly as the historical per-sweep rescan would.
    converged = UpperOffDiagonalSquaredSum(a, m) <= threshold;
  }
  if (!converged) {
    return Status::NumericalError("SymmetricEigen: Jacobi did not converge");
  }

  // Extract eigenvalues and sort eigenpairs descending.
  Vector eigenvalues(m);
  for (size_t i = 0; i < m; ++i) eigenvalues[i] = a[i * m + i];

  std::vector<size_t> order(m);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t lhs, size_t rhs) {
    return eigenvalues[lhs] > eigenvalues[rhs];
  });

  EigenDecomposition out;
  out.eigenvalues.resize(m);
  out.eigenvectors = Matrix(m, m);
  for (size_t k = 0; k < m; ++k) {
    out.eigenvalues[k] = eigenvalues[order[k]];
    const double* qrow = qt + order[k] * m;
    for (size_t i = 0; i < m; ++i) {
      out.eigenvectors(i, k) = qrow[i];
    }
  }
  return out;
}

Matrix ComposeFromEigen(const Vector& eigenvalues, const Matrix& eigenvectors) {
  RR_CHECK_EQ(eigenvalues.size(), eigenvectors.cols());
  const size_t m = eigenvectors.rows();
  const size_t k = eigenvectors.cols();
  // Q Λ Qᵀ computed as (Q Λ) Qᵀ without materializing Λ (or Qᵀ: the
  // second factor goes through the ABt kernel).
  Matrix scaled = eigenvectors;
  for (size_t i = 0; i < m; ++i) {
    double* row = scaled.row_data(i);
    for (size_t j = 0; j < k; ++j) {
      row[j] *= eigenvalues[j];
    }
  }
  return kernels::MatMulTransposed(scaled, eigenvectors);
}

}  // namespace linalg
}  // namespace randrecon
