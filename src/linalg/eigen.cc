#include "linalg/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/matrix_util.h"

namespace randrecon {
namespace linalg {
namespace {

/// Sum of squares of the strictly-off-diagonal entries.
double OffDiagonalSquaredSum(const Matrix& a) {
  double sum = 0.0;
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      if (i != j) sum += a(i, j) * a(i, j);
    }
  }
  return sum;
}

}  // namespace

Result<EigenDecomposition> SymmetricEigen(const Matrix& input,
                                          const JacobiOptions& options) {
  if (input.rows() != input.cols()) {
    return Status::InvalidArgument("SymmetricEigen: matrix is not square");
  }
  if (!IsSymmetric(input, 1e-8 * (1.0 + FrobeniusNorm(input)))) {
    return Status::InvalidArgument("SymmetricEigen: matrix is not symmetric");
  }
  const size_t m = input.rows();
  Matrix a = Symmetrize(input);  // Scrub tiny floating-point asymmetry.
  Matrix q = Matrix::Identity(m);

  if (m == 0) {
    return EigenDecomposition{Vector{}, Matrix{}};
  }

  const double scale = FrobeniusNorm(a);
  const double threshold =
      options.tolerance * options.tolerance * (scale > 0.0 ? scale * scale : 1.0);

  bool converged = OffDiagonalSquaredSum(a) <= threshold;
  for (int sweep = 0; sweep < options.max_sweeps && !converged; ++sweep) {
    // One cyclic sweep over all (p, r) pairs above the diagonal.
    for (size_t p = 0; p + 1 < m; ++p) {
      for (size_t r = p + 1; r < m; ++r) {
        const double apr = a(p, r);
        if (std::fabs(apr) < 1e-300) continue;
        const double app = a(p, p);
        const double arr = a(r, r);
        // Classic Jacobi rotation angle: stable computation of t = tan θ.
        const double theta = (arr - app) / (2.0 * apr);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        // Apply the rotation A <- JᵀAJ, touching only rows/cols p and r.
        for (size_t k = 0; k < m; ++k) {
          const double akp = a(k, p);
          const double akr = a(k, r);
          a(k, p) = c * akp - s * akr;
          a(k, r) = s * akp + c * akr;
        }
        for (size_t k = 0; k < m; ++k) {
          const double apk = a(p, k);
          const double ark = a(r, k);
          a(p, k) = c * apk - s * ark;
          a(r, k) = s * apk + c * ark;
        }
        // Accumulate the eigenvector basis Q <- Q J.
        for (size_t k = 0; k < m; ++k) {
          const double qkp = q(k, p);
          const double qkr = q(k, r);
          q(k, p) = c * qkp - s * qkr;
          q(k, r) = s * qkp + c * qkr;
        }
      }
    }
    converged = OffDiagonalSquaredSum(a) <= threshold;
  }
  if (!converged) {
    return Status::NumericalError("SymmetricEigen: Jacobi did not converge");
  }

  // Extract eigenvalues and sort eigenpairs descending.
  Vector eigenvalues(m);
  for (size_t i = 0; i < m; ++i) eigenvalues[i] = a(i, i);

  std::vector<size_t> order(m);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t lhs, size_t rhs) {
    return eigenvalues[lhs] > eigenvalues[rhs];
  });

  EigenDecomposition out;
  out.eigenvalues.resize(m);
  out.eigenvectors = Matrix(m, m);
  for (size_t k = 0; k < m; ++k) {
    out.eigenvalues[k] = eigenvalues[order[k]];
    for (size_t i = 0; i < m; ++i) {
      out.eigenvectors(i, k) = q(i, order[k]);
    }
  }
  return out;
}

Matrix ComposeFromEigen(const Vector& eigenvalues, const Matrix& eigenvectors) {
  RR_CHECK_EQ(eigenvalues.size(), eigenvectors.cols());
  const size_t m = eigenvectors.rows();
  const size_t k = eigenvectors.cols();
  // Q Λ Qᵀ computed as (Q Λ) Qᵀ without materializing Λ.
  Matrix scaled = eigenvectors;
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < k; ++j) {
      scaled(i, j) *= eigenvalues[j];
    }
  }
  return scaled * eigenvectors.Transpose();
}

}  // namespace linalg
}  // namespace randrecon
