#include "linalg/lu.h"

#include <cmath>

namespace randrecon {
namespace linalg {

Result<LuFactorization> LuFactorization::Compute(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("LU: matrix is not square");
  }
  const size_t m = a.rows();
  Matrix lu = a;
  std::vector<size_t> perm(m);
  for (size_t i = 0; i < m; ++i) perm[i] = i;
  int sign = 1;

  for (size_t col = 0; col < m; ++col) {
    // Partial pivoting: bring the largest remaining entry in this column
    // to the diagonal.
    size_t pivot_row = col;
    double pivot_mag = std::fabs(lu(col, col));
    for (size_t i = col + 1; i < m; ++i) {
      const double mag = std::fabs(lu(i, col));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = i;
      }
    }
    if (pivot_mag == 0.0 || !std::isfinite(pivot_mag)) {
      return Status::NumericalError("LU: matrix is singular at column " +
                                    std::to_string(col));
    }
    if (pivot_row != col) {
      for (size_t j = 0; j < m; ++j) std::swap(lu(col, j), lu(pivot_row, j));
      std::swap(perm[col], perm[pivot_row]);
      sign = -sign;
    }
    const double pivot = lu(col, col);
    for (size_t i = col + 1; i < m; ++i) {
      const double factor = lu(i, col) / pivot;
      lu(i, col) = factor;
      if (factor == 0.0) continue;
      for (size_t j = col + 1; j < m; ++j) {
        lu(i, j) -= factor * lu(col, j);
      }
    }
  }
  return LuFactorization(std::move(lu), std::move(perm), sign);
}

Vector LuFactorization::Solve(const Vector& b) const {
  const size_t m = lu_.rows();
  RR_CHECK_EQ(b.size(), m);
  // Forward substitution with implicit unit diagonal, applying P to b.
  Vector y(m);
  for (size_t i = 0; i < m; ++i) {
    double sum = b[perm_[i]];
    for (size_t k = 0; k < i; ++k) sum -= lu_(i, k) * y[k];
    y[i] = sum;
  }
  // Back substitution on U.
  Vector x(m);
  for (size_t ii = m; ii-- > 0;) {
    double sum = y[ii];
    for (size_t k = ii + 1; k < m; ++k) sum -= lu_(ii, k) * x[k];
    x[ii] = sum / lu_(ii, ii);
  }
  return x;
}

Matrix LuFactorization::Solve(const Matrix& b) const {
  RR_CHECK_EQ(b.rows(), lu_.rows());
  Matrix x(b.rows(), b.cols());
  for (size_t j = 0; j < b.cols(); ++j) {
    x.SetCol(j, Solve(b.Col(j)));
  }
  return x;
}

Matrix LuFactorization::Inverse() const {
  return Solve(Matrix::Identity(lu_.rows()));
}

double LuFactorization::Determinant() const {
  double det = static_cast<double>(pivot_sign_);
  for (size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

Result<Vector> SolveLinearSystem(const Matrix& a, const Vector& b) {
  RR_ASSIGN_OR_RETURN(LuFactorization lu, LuFactorization::Compute(a));
  return lu.Solve(b);
}

Result<Matrix> InvertMatrix(const Matrix& a) {
  RR_ASSIGN_OR_RETURN(LuFactorization lu, LuFactorization::Compute(a));
  return lu.Inverse();
}

}  // namespace linalg
}  // namespace randrecon
