#include "stats/random_orthogonal.h"

#include "common/check.h"
#include "linalg/orthogonal.h"

namespace randrecon {
namespace stats {

linalg::Matrix RandomOrthogonalMatrix(size_t m, Rng* rng) {
  RR_CHECK_GT(m, 0u);
  constexpr int kMaxAttempts = 8;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    linalg::Matrix candidate = rng->GaussianMatrix(m, m);
    Result<linalg::Matrix> q = linalg::GramSchmidtOrthonormalize(candidate);
    if (q.ok()) return q.value();
  }
  RR_CHECK(false) << "RandomOrthogonalMatrix: repeated rank-deficient draws";
  return linalg::Matrix::Identity(m);  // Unreachable.
}

}  // namespace stats
}  // namespace randrecon
