// Histogram and Gaussian kernel density estimation. Used by UDR when the
// observed (disguised) marginal fY is needed, by tests that compare
// reconstructed densities against empirical ones, and by the examples to
// show that the *distribution* of the data survives randomization even
// when individual records do not.

#ifndef RANDRECON_STATS_HISTOGRAM_H_
#define RANDRECON_STATS_HISTOGRAM_H_

#include <cstddef>

#include "common/result.h"
#include "linalg/matrix.h"

namespace randrecon {
namespace stats {

/// Fixed-width histogram over [lo, hi).
class Histogram {
 public:
  /// Builds a histogram with `num_bins` equal bins spanning [lo, hi).
  /// Fails with InvalidArgument for num_bins == 0 or lo >= hi.
  static Result<Histogram> Create(double lo, double hi, size_t num_bins);

  /// Builds a histogram spanning the sample range and fills it.
  static Result<Histogram> FromSamples(const linalg::Vector& samples,
                                       size_t num_bins);

  /// Adds one observation; values outside [lo, hi) are clamped into the
  /// first/last bin so total mass is preserved.
  void Add(double value);

  /// Adds every entry of `samples`.
  void AddAll(const linalg::Vector& samples);

  size_t num_bins() const { return counts_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double bin_width() const { return width_; }
  size_t total_count() const { return total_; }

  /// Raw count in bin k.
  size_t Count(size_t k) const;

  /// Center of bin k.
  double BinCenter(size_t k) const;

  /// Normalized density estimate at bin k (integrates to 1).
  double Density(size_t k) const;

  /// L1 distance between the normalized densities of two histograms with
  /// identical binning (test/diagnostic helper).
  static Result<double> L1Distance(const Histogram& a, const Histogram& b);

 private:
  Histogram(double lo, double hi, size_t num_bins)
      : lo_(lo),
        hi_(hi),
        width_((hi - lo) / static_cast<double>(num_bins)),
        counts_(num_bins, 0),
        total_(0) {}

  double lo_;
  double hi_;
  double width_;
  std::vector<size_t> counts_;
  size_t total_;
};

/// Gaussian kernel density estimate at point x, with Silverman's
/// rule-of-thumb bandwidth when `bandwidth` <= 0.
double GaussianKde(const linalg::Vector& samples, double x,
                   double bandwidth = 0.0);

/// Silverman bandwidth: 1.06 σ̂ n^{-1/5}.
double SilvermanBandwidth(const linalg::Vector& samples);

}  // namespace stats
}  // namespace randrecon

#endif  // RANDRECON_STATS_HISTOGRAM_H_
