#include "stats/rng.h"

namespace randrecon {
namespace stats {

linalg::Matrix Rng::GaussianMatrix(size_t rows, size_t cols) {
  linalg::Matrix m(rows, cols);
  double* p = m.data();
  for (size_t i = 0; i < m.size(); ++i) p[i] = Gaussian();
  return m;
}

linalg::Vector Rng::GaussianVector(size_t n, double mean, double stddev) {
  linalg::Vector v(n);
  for (size_t i = 0; i < n; ++i) v[i] = Gaussian(mean, stddev);
  return v;
}

}  // namespace stats
}  // namespace randrecon
