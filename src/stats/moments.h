// Sample-moment estimators over record matrices (n records x m
// attributes). These implement the estimation side of Theorem 5.1 and
// Theorem 8.2: the attacker only sees the disguised matrix Y and derives
// mean vectors and covariance matrices from it.

#ifndef RANDRECON_STATS_MOMENTS_H_
#define RANDRECON_STATS_MOMENTS_H_

#include "linalg/matrix.h"

namespace randrecon {
namespace stats {

/// Column means of `data` (length = cols).
linalg::Vector ColumnMeans(const linalg::Matrix& data);

/// Column variances (population convention, divide by n).
linalg::Vector ColumnVariances(const linalg::Matrix& data);

/// Returns `data` with each column's mean subtracted. `means_out`, if
/// non-null, receives the subtracted means so callers can add them back.
linalg::Matrix CenterColumns(const linalg::Matrix& data,
                             linalg::Vector* means_out = nullptr);

/// Sample covariance matrix (m x m). `ddof` = 0 for the population
/// convention (divide by n, matching the paper's large-n analysis),
/// 1 for the unbiased estimator (divide by n-1).
linalg::Matrix SampleCovariance(const linalg::Matrix& data, int ddof = 0);

/// Matrix of sample correlation coefficients (diagonal = 1).
linalg::Matrix SampleCorrelation(const linalg::Matrix& data);

/// Root-mean-square difference over all n*m entries of two equally-shaped
/// record matrices — the paper's privacy measure (lower = more disclosure).
double RootMeanSquareError(const linalg::Matrix& a, const linalg::Matrix& b);

/// Mean square error over all entries (RMSE²).
double MeanSquareError(const linalg::Matrix& a, const linalg::Matrix& b);

/// Per-attribute RMSE: entry j is the RMSE restricted to column j.
linalg::Vector PerAttributeRmse(const linalg::Matrix& a,
                                const linalg::Matrix& b);

}  // namespace stats
}  // namespace randrecon

#endif  // RANDRECON_STATS_MOMENTS_H_
