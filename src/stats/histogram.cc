#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "linalg/vector_ops.h"
#include "stats/distribution.h"

namespace randrecon {
namespace stats {

Result<Histogram> Histogram::Create(double lo, double hi, size_t num_bins) {
  if (num_bins == 0) {
    return Status::InvalidArgument("Histogram: num_bins must be positive");
  }
  if (!(lo < hi)) {
    return Status::InvalidArgument("Histogram: lo must be < hi");
  }
  return Histogram(lo, hi, num_bins);
}

Result<Histogram> Histogram::FromSamples(const linalg::Vector& samples,
                                         size_t num_bins) {
  if (samples.empty()) {
    return Status::InvalidArgument("Histogram: empty sample");
  }
  const auto [min_it, max_it] =
      std::minmax_element(samples.begin(), samples.end());
  double lo = *min_it;
  double hi = *max_it;
  if (!(lo < hi)) {
    lo -= 0.5;
    hi += 0.5;
  } else {
    // Nudge hi so the maximum lands inside the final bin.
    hi = std::nextafter(hi, hi + 1.0);
  }
  RR_ASSIGN_OR_RETURN(Histogram h, Create(lo, hi, num_bins));
  h.AddAll(samples);
  return h;
}

void Histogram::Add(double value) {
  double offset = (value - lo_) / width_;
  long bin = static_cast<long>(std::floor(offset));
  bin = std::clamp(bin, 0L, static_cast<long>(counts_.size()) - 1L);
  ++counts_[static_cast<size_t>(bin)];
  ++total_;
}

void Histogram::AddAll(const linalg::Vector& samples) {
  for (double v : samples) Add(v);
}

size_t Histogram::Count(size_t k) const {
  RR_CHECK_LT(k, counts_.size());
  return counts_[k];
}

double Histogram::BinCenter(size_t k) const {
  RR_CHECK_LT(k, counts_.size());
  return lo_ + width_ * (static_cast<double>(k) + 0.5);
}

double Histogram::Density(size_t k) const {
  RR_CHECK_LT(k, counts_.size());
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[k]) /
         (static_cast<double>(total_) * width_);
}

Result<double> Histogram::L1Distance(const Histogram& a, const Histogram& b) {
  if (a.num_bins() != b.num_bins() || a.lo() != b.lo() || a.hi() != b.hi()) {
    return Status::InvalidArgument("Histogram::L1Distance: binning differs");
  }
  double sum = 0.0;
  for (size_t k = 0; k < a.num_bins(); ++k) {
    sum += std::fabs(a.Density(k) - b.Density(k)) * a.bin_width();
  }
  return sum;
}

double SilvermanBandwidth(const linalg::Vector& samples) {
  RR_CHECK(!samples.empty());
  const double sigma = std::sqrt(linalg::Variance(samples));
  const double n = static_cast<double>(samples.size());
  const double bw = 1.06 * sigma * std::pow(n, -0.2);
  return bw > 0.0 ? bw : 1.0;
}

double GaussianKde(const linalg::Vector& samples, double x, double bandwidth) {
  RR_CHECK(!samples.empty());
  const double bw = bandwidth > 0.0 ? bandwidth : SilvermanBandwidth(samples);
  double sum = 0.0;
  for (double s : samples) {
    sum += StandardNormalPdf((x - s) / bw);
  }
  return sum / (static_cast<double>(samples.size()) * bw);
}

}  // namespace stats
}  // namespace randrecon
