// Multivariate normal sampling: the C++ replacement for Matlab's `mvnrnd`
// used throughout §7.1. Draws x = µ + A z with A Aᵀ = Σ and z ~ N(0, I).
//
// The factor A is the Cholesky factor when Σ is positive definite, and an
// eigendecomposition square root (Q √Λ) otherwise — the experiment spectra
// intentionally contain near-zero eigenvalues, which plain Cholesky
// rejects.

#ifndef RANDRECON_STATS_MVN_H_
#define RANDRECON_STATS_MVN_H_

#include <functional>

#include "common/parallel.h"
#include "common/result.h"
#include "linalg/matrix.h"
#include "stats/philox.h"
#include "stats/rng.h"

namespace randrecon {
namespace stats {

/// Rows per generation block of the counter-based record streams
/// (MultivariateNormalSampler::SampleRecordsAt and the perturb batch
/// noise). Block b of a stream always covers records
/// [b * kBatchBlockRows, (b+1) * kBatchBlockRows) and is generated from
/// Substream(b) as one unit, so any chunk/thread partition of the record
/// range reproduces identical bytes.
constexpr size_t kBatchBlockRows = 256;

/// THE definition of the batch-stream partition: invokes
/// body(block_index, record_lo, record_hi) — absolute record indices —
/// for every kBatchBlockRows-aligned generation block intersecting
/// [record_begin, record_begin + rows), in parallel (ParallelForEach;
/// bodies must write disjoint data). Every batch generator (MVN records,
/// scheme noise) partitions through this one helper so their
/// partition-invariance arithmetic cannot drift apart.
void ForEachBatchBlock(
    uint64_t record_begin, size_t rows, const ParallelOptions& options,
    const std::function<void(uint64_t, uint64_t, uint64_t)>& body);

/// Draws i.i.d. records from N(mean, covariance).
class MultivariateNormalSampler {
 public:
  /// Builds a sampler. Fails with InvalidArgument for a non-square /
  /// non-symmetric covariance or a mean of the wrong length, and
  /// NumericalError if the covariance has eigenvalues < -tolerance.
  static Result<MultivariateNormalSampler> Create(
      const linalg::Vector& mean, const linalg::Matrix& covariance);

  /// Convenience: zero-mean sampler.
  static Result<MultivariateNormalSampler> CreateZeroMean(
      const linalg::Matrix& covariance);

  /// One record of length m.
  linalg::Vector SampleRecord(Rng* rng) const;

  /// n records as an n x m matrix. Draws the n x m standard-normal block
  /// Z in the same record order SampleRecord uses, then applies the
  /// factor as ONE Z·Aᵀ product through the blocked kernels instead of
  /// per-record matrix-vector math.
  linalg::Matrix SampleMatrix(size_t n, Rng* rng) const;

  /// Batch-substrate variant: Z comes from gen->FillGaussian (consumes
  /// n*m Gaussian elements from the cursor), then one Z·Aᵀ.
  linalg::Matrix SampleMatrix(size_t n, Philox* gen) const;

  /// Deterministic random access into the record stream derived from
  /// `base`: fills rows [out_row, out_row + rows) of `out` with records
  /// [record_begin, record_begin + rows). Record i is a pure function of
  /// (base, i): generation happens in kBatchBlockRows blocks (block b
  /// from base.Substream(b), straddled edge blocks regenerated in full
  /// and sliced), so every chunk size and thread count yields bitwise
  /// identical records. Blocks are generated in parallel via
  /// ParallelForEach under `options`.
  void SampleRecordsAt(const Philox& base, uint64_t record_begin, size_t rows,
                       linalg::Matrix* out, size_t out_row = 0,
                       const ParallelOptions& options = {}) const;

  /// One full generation block: rows [row_begin, row_end) of block
  /// `block_index` of the `base` stream, written to `out` (must span
  /// row_end - row_begin rows of width m). The block's Z and Z·Aᵀ are
  /// always computed for all kBatchBlockRows rows regardless of the
  /// requested slice — that is what makes SampleRecordsAt partition-
  /// invariant.
  void SampleBlockSlice(const Philox& base, uint64_t block_index,
                        size_t row_begin, size_t row_end, double* out) const;

  size_t dimension() const { return mean_.size(); }
  const linalg::Vector& mean() const { return mean_; }

 private:
  MultivariateNormalSampler(linalg::Vector mean, linalg::Matrix factor)
      : mean_(std::move(mean)), factor_(std::move(factor)) {}

  linalg::Vector mean_;
  linalg::Matrix factor_;  // A with A Aᵀ = Σ.
};

}  // namespace stats
}  // namespace randrecon

#endif  // RANDRECON_STATS_MVN_H_
