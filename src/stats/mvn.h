// Multivariate normal sampling: the C++ replacement for Matlab's `mvnrnd`
// used throughout §7.1. Draws x = µ + A z with A Aᵀ = Σ and z ~ N(0, I).
//
// The factor A is the Cholesky factor when Σ is positive definite, and an
// eigendecomposition square root (Q √Λ) otherwise — the experiment spectra
// intentionally contain near-zero eigenvalues, which plain Cholesky
// rejects.

#ifndef RANDRECON_STATS_MVN_H_
#define RANDRECON_STATS_MVN_H_

#include "common/result.h"
#include "linalg/matrix.h"
#include "stats/rng.h"

namespace randrecon {
namespace stats {

/// Draws i.i.d. records from N(mean, covariance).
class MultivariateNormalSampler {
 public:
  /// Builds a sampler. Fails with InvalidArgument for a non-square /
  /// non-symmetric covariance or a mean of the wrong length, and
  /// NumericalError if the covariance has eigenvalues < -tolerance.
  static Result<MultivariateNormalSampler> Create(
      const linalg::Vector& mean, const linalg::Matrix& covariance);

  /// Convenience: zero-mean sampler.
  static Result<MultivariateNormalSampler> CreateZeroMean(
      const linalg::Matrix& covariance);

  /// One record of length m.
  linalg::Vector SampleRecord(Rng* rng) const;

  /// n records as an n x m matrix.
  linalg::Matrix SampleMatrix(size_t n, Rng* rng) const;

  size_t dimension() const { return mean_.size(); }
  const linalg::Vector& mean() const { return mean_; }

 private:
  MultivariateNormalSampler(linalg::Vector mean, linalg::Matrix factor)
      : mean_(std::move(mean)), factor_(std::move(factor)) {}

  linalg::Vector mean_;
  linalg::Matrix factor_;  // A with A Aᵀ = Σ.
};

}  // namespace stats
}  // namespace randrecon

#endif  // RANDRECON_STATS_MVN_H_
