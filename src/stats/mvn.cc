#include "stats/mvn.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/check.h"
#include "linalg/cholesky.h"
#include "linalg/eigen.h"
#include "linalg/kernels.h"
#include "linalg/matrix_util.h"

namespace randrecon {
namespace stats {

Result<MultivariateNormalSampler> MultivariateNormalSampler::Create(
    const linalg::Vector& mean, const linalg::Matrix& covariance) {
  if (covariance.rows() != covariance.cols()) {
    return Status::InvalidArgument("MVN: covariance is not square");
  }
  if (mean.size() != covariance.rows()) {
    return Status::InvalidArgument("MVN: mean length != covariance dimension");
  }
  if (!linalg::IsSymmetric(covariance,
                           1e-8 * (1.0 + linalg::FrobeniusNorm(covariance)))) {
    return Status::InvalidArgument("MVN: covariance is not symmetric");
  }

  // Fast path: positive-definite covariance factors via Cholesky.
  Result<linalg::CholeskyFactorization> chol =
      linalg::CholeskyFactorization::Compute(covariance);
  if (chol.ok()) {
    return MultivariateNormalSampler(mean, chol.value().lower());
  }

  // PSD (possibly singular) path: A = Q √Λ with negative eigenvalues
  // clipped at zero; reject covariances that are meaningfully indefinite.
  RR_ASSIGN_OR_RETURN(linalg::EigenDecomposition eig,
                      linalg::SymmetricEigen(covariance));
  const double scale = linalg::FrobeniusNorm(covariance);
  const double tolerance = 1e-8 * (1.0 + scale);
  linalg::Matrix factor = eig.eigenvectors;
  for (size_t j = 0; j < factor.cols(); ++j) {
    double lambda = eig.eigenvalues[j];
    if (lambda < -tolerance) {
      return Status::NumericalError(
          "MVN: covariance has negative eigenvalue " + std::to_string(lambda));
    }
    const double root = lambda > 0.0 ? std::sqrt(lambda) : 0.0;
    for (size_t i = 0; i < factor.rows(); ++i) factor(i, j) *= root;
  }
  return MultivariateNormalSampler(mean, std::move(factor));
}

Result<MultivariateNormalSampler> MultivariateNormalSampler::CreateZeroMean(
    const linalg::Matrix& covariance) {
  return Create(linalg::Vector(covariance.rows(), 0.0), covariance);
}

linalg::Vector MultivariateNormalSampler::SampleRecord(Rng* rng) const {
  const size_t m = dimension();
  linalg::Vector z(m);
  for (size_t i = 0; i < m; ++i) z[i] = rng->Gaussian();
  linalg::Vector x = factor_ * z;
  for (size_t i = 0; i < m; ++i) x[i] += mean_[i];
  return x;
}

namespace {

/// x = z Aᵀ + mean for a row-major block of `rows` records.
void ApplyFactor(const double* z, const linalg::Matrix& factor,
                 const linalg::Vector& mean, size_t rows, double* out) {
  const size_t m = factor.rows();
  linalg::kernels::MatMulABt(z, factor.data(), out, rows, m, m);
  bool zero_mean = true;
  for (size_t j = 0; j < m; ++j) {
    if (mean[j] != 0.0) {
      zero_mean = false;
      break;
    }
  }
  if (zero_mean) return;
  for (size_t i = 0; i < rows; ++i) {
    double* row = out + i * m;
    for (size_t j = 0; j < m; ++j) row[j] += mean[j];
  }
}

}  // namespace

void ForEachBatchBlock(
    uint64_t record_begin, size_t rows, const ParallelOptions& options,
    const std::function<void(uint64_t, uint64_t, uint64_t)>& body) {
  if (rows == 0) return;
  const uint64_t r0 = record_begin;
  const uint64_t r1 = record_begin + rows;
  const uint64_t b0 = r0 / kBatchBlockRows;
  const uint64_t b1 = (r1 - 1) / kBatchBlockRows;
  ParallelForEach(0, static_cast<size_t>(b1 - b0 + 1), [&](size_t i) {
    const uint64_t b = b0 + i;
    const uint64_t lo = std::max<uint64_t>(r0, b * kBatchBlockRows);
    const uint64_t hi = std::min<uint64_t>(r1, (b + 1) * kBatchBlockRows);
    body(b, lo, hi);
  }, options);
}

linalg::Matrix MultivariateNormalSampler::SampleMatrix(size_t n,
                                                       Rng* rng) const {
  const size_t m = dimension();
  linalg::Matrix z(n, m);
  double* zp = z.data();
  for (size_t i = 0; i < n * m; ++i) zp[i] = rng->Gaussian();
  linalg::Matrix out(n, m);
  ApplyFactor(z.data(), factor_, mean_, n, out.data());
  return out;
}

linalg::Matrix MultivariateNormalSampler::SampleMatrix(size_t n,
                                                       Philox* gen) const {
  const size_t m = dimension();
  linalg::Matrix z(n, m);
  gen->FillGaussian(z.data(), n * m);
  linalg::Matrix out(n, m);
  ApplyFactor(z.data(), factor_, mean_, n, out.data());
  return out;
}

void MultivariateNormalSampler::SampleBlockSlice(const Philox& base,
                                                 uint64_t block_index,
                                                 size_t row_begin,
                                                 size_t row_end,
                                                 double* out) const {
  RR_CHECK(row_begin < row_end && row_end <= kBatchBlockRows)
      << "SampleBlockSlice: bad row range";
  const size_t m = dimension();
  std::vector<double> z(kBatchBlockRows * m);
  GaussianSliceAt(base.Substream(block_index), 0, z.data(),
                  kBatchBlockRows * m);
  if (row_begin == 0 && row_end == kBatchBlockRows) {
    ApplyFactor(z.data(), factor_, mean_, kBatchBlockRows, out);
    return;
  }
  // Partial slice: the product still runs over the FULL block so the
  // bytes match the full-block path, then the slice is copied out.
  std::vector<double> x(kBatchBlockRows * m);
  ApplyFactor(z.data(), factor_, mean_, kBatchBlockRows, x.data());
  std::memcpy(out, x.data() + row_begin * m,
              (row_end - row_begin) * m * sizeof(double));
}

void MultivariateNormalSampler::SampleRecordsAt(
    const Philox& base, uint64_t record_begin, size_t rows,
    linalg::Matrix* out, size_t out_row, const ParallelOptions& options) const {
  if (rows == 0) return;
  const size_t m = dimension();
  RR_CHECK_EQ(out->cols(), m) << "SampleRecordsAt: output width mismatch";
  RR_CHECK_LE(out_row + rows, out->rows());
  ForEachBatchBlock(
      record_begin, rows, options, [&](uint64_t b, uint64_t lo, uint64_t hi) {
        SampleBlockSlice(
            base, b, static_cast<size_t>(lo - b * kBatchBlockRows),
            static_cast<size_t>(hi - b * kBatchBlockRows),
            out->row_data(out_row + static_cast<size_t>(lo - record_begin)));
      });
}

}  // namespace stats
}  // namespace randrecon
