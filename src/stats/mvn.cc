#include "stats/mvn.h"

#include <cmath>

#include "linalg/cholesky.h"
#include "linalg/eigen.h"
#include "linalg/matrix_util.h"

namespace randrecon {
namespace stats {

Result<MultivariateNormalSampler> MultivariateNormalSampler::Create(
    const linalg::Vector& mean, const linalg::Matrix& covariance) {
  if (covariance.rows() != covariance.cols()) {
    return Status::InvalidArgument("MVN: covariance is not square");
  }
  if (mean.size() != covariance.rows()) {
    return Status::InvalidArgument("MVN: mean length != covariance dimension");
  }
  if (!linalg::IsSymmetric(covariance,
                           1e-8 * (1.0 + linalg::FrobeniusNorm(covariance)))) {
    return Status::InvalidArgument("MVN: covariance is not symmetric");
  }

  // Fast path: positive-definite covariance factors via Cholesky.
  Result<linalg::CholeskyFactorization> chol =
      linalg::CholeskyFactorization::Compute(covariance);
  if (chol.ok()) {
    return MultivariateNormalSampler(mean, chol.value().lower());
  }

  // PSD (possibly singular) path: A = Q √Λ with negative eigenvalues
  // clipped at zero; reject covariances that are meaningfully indefinite.
  RR_ASSIGN_OR_RETURN(linalg::EigenDecomposition eig,
                      linalg::SymmetricEigen(covariance));
  const double scale = linalg::FrobeniusNorm(covariance);
  const double tolerance = 1e-8 * (1.0 + scale);
  linalg::Matrix factor = eig.eigenvectors;
  for (size_t j = 0; j < factor.cols(); ++j) {
    double lambda = eig.eigenvalues[j];
    if (lambda < -tolerance) {
      return Status::NumericalError(
          "MVN: covariance has negative eigenvalue " + std::to_string(lambda));
    }
    const double root = lambda > 0.0 ? std::sqrt(lambda) : 0.0;
    for (size_t i = 0; i < factor.rows(); ++i) factor(i, j) *= root;
  }
  return MultivariateNormalSampler(mean, std::move(factor));
}

Result<MultivariateNormalSampler> MultivariateNormalSampler::CreateZeroMean(
    const linalg::Matrix& covariance) {
  return Create(linalg::Vector(covariance.rows(), 0.0), covariance);
}

linalg::Vector MultivariateNormalSampler::SampleRecord(Rng* rng) const {
  const size_t m = dimension();
  linalg::Vector z(m);
  for (size_t i = 0; i < m; ++i) z[i] = rng->Gaussian();
  linalg::Vector x = factor_ * z;
  for (size_t i = 0; i < m; ++i) x[i] += mean_[i];
  return x;
}

linalg::Matrix MultivariateNormalSampler::SampleMatrix(size_t n,
                                                       Rng* rng) const {
  const size_t m = dimension();
  linalg::Matrix out(n, m);
  for (size_t i = 0; i < n; ++i) {
    out.SetRow(i, SampleRecord(rng));
  }
  return out;
}

}  // namespace stats
}  // namespace randrecon
