// Correlation dissimilarity (Definition 8.1): the x-axis of the paper's
// Figure 4. Quantifies how differently two datasets' attributes are
// correlated; the improved randomization scheme (§8) aims to *minimize*
// dissimilarity between data and noise.

#ifndef RANDRECON_STATS_DISSIMILARITY_H_
#define RANDRECON_STATS_DISSIMILARITY_H_

#include "common/result.h"
#include "linalg/matrix.h"

namespace randrecon {
namespace stats {

/// Definition 8.1 applied to two correlation-coefficient matrices, in the
/// RMS reading:
///   Dis = sqrt( (1 / (m² − m)) · Σ_{i≠j} (CX(i,j) − CR(i,j))² ).
/// The paper's typeset formula places the 1/(m²−m) factor *outside* the
/// square root, but the x-axis range of its Figure 4 (0.04–0.2 at
/// m = 100) is only consistent with the RMS form — the literal form would
/// produce values ~99x smaller. We therefore use RMS here and expose the
/// literal reading as CorrelationDissimilarityLiteral. Fails with
/// InvalidArgument for non-square, mismatched or 1x1 inputs.
Result<double> CorrelationDissimilarity(const linalg::Matrix& corr_x,
                                        const linalg::Matrix& corr_r);

/// Definition 8.1 exactly as typeset:
///   Dis = (1 / (m² − m)) · sqrt( Σ_{i≠j} (CX(i,j) − CR(i,j))² ).
/// Equals CorrelationDissimilarity / sqrt(m² − m).
Result<double> CorrelationDissimilarityLiteral(const linalg::Matrix& corr_x,
                                               const linalg::Matrix& corr_r);

/// Definition 8.1 applied to raw record matrices: computes both sample
/// correlation matrices first.
Result<double> CorrelationDissimilarityFromData(const linalg::Matrix& x,
                                                const linalg::Matrix& r);

/// Dissimilarity between `corr_x` and the identity correlation matrix —
/// i.e. the x-coordinate of the paper's "noise is independent" vertical
/// line in Figure 4.
Result<double> DissimilarityToIndependentNoise(const linalg::Matrix& corr_x);

}  // namespace stats
}  // namespace randrecon

#endif  // RANDRECON_STATS_DISSIMILARITY_H_
