#include "stats/density_reconstruction.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace randrecon {
namespace stats {

double GridDensity::ValueAt(double x) const {
  if (points.empty()) return 0.0;
  if (x < points.front() || x > points.back()) return 0.0;
  const double offset = (x - points.front()) / step;
  const size_t lo = std::min(static_cast<size_t>(offset), points.size() - 1);
  if (lo + 1 >= points.size()) return density.back();
  const double frac = offset - static_cast<double>(lo);
  return density[lo] * (1.0 - frac) + density[lo + 1] * frac;
}

double GridDensity::Mean() const {
  double sum = 0.0;
  for (size_t k = 0; k < points.size(); ++k) sum += points[k] * density[k];
  return sum * step;
}

double GridDensity::Variance() const {
  const double mu = Mean();
  double sum = 0.0;
  for (size_t k = 0; k < points.size(); ++k) {
    sum += (points[k] - mu) * (points[k] - mu) * density[k];
  }
  return sum * step;
}

Result<GridDensity> ReconstructDensity(
    const linalg::Vector& disguised_samples, const ScalarDistribution& noise,
    const DensityReconstructionOptions& options) {
  const size_t n = disguised_samples.size();
  if (n == 0) {
    return Status::InvalidArgument("ReconstructDensity: empty sample");
  }
  if (options.grid_size < 2) {
    return Status::InvalidArgument("ReconstructDensity: grid_size < 2");
  }

  const auto [min_it, max_it] =
      std::minmax_element(disguised_samples.begin(), disguised_samples.end());
  const double pad =
      options.range_padding_sigmas * std::sqrt(noise.Variance());
  double lo = *min_it - pad;
  double hi = *max_it + pad;
  if (hi - lo <= 0.0) {
    // Degenerate constant sample: widen artificially around the value.
    lo -= 1.0;
    hi += 1.0;
  }

  const size_t grid = options.grid_size;
  GridDensity out;
  out.step = (hi - lo) / static_cast<double>(grid - 1);
  out.points.resize(grid);
  for (size_t k = 0; k < grid; ++k) {
    out.points[k] = lo + out.step * static_cast<double>(k);
  }

  // Precompute the noise kernel fR(y_i - a_k) for every (sample, grid)
  // pair; the iteration reuses it every round.
  linalg::Matrix kernel(n, grid);
  for (size_t i = 0; i < n; ++i) {
    double* row = kernel.row_data(i);
    for (size_t k = 0; k < grid; ++k) {
      row[k] = noise.Pdf(disguised_samples[i] - out.points[k]);
    }
  }

  // Uniform starting density.
  linalg::Vector f(grid, 1.0 / (hi - lo));
  linalg::Vector next(grid, 0.0);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    for (size_t i = 0; i < n; ++i) {
      const double* row = kernel.row_data(i);
      double denom = 0.0;
      for (size_t k = 0; k < grid; ++k) denom += row[k] * f[k];
      denom *= out.step;
      if (denom <= 0.0) continue;  // Sample far outside the grid support.
      const double inv = 1.0 / denom;
      for (size_t k = 0; k < grid; ++k) {
        next[k] += row[k] * f[k] * inv;
      }
    }
    double mass = 0.0;
    for (size_t k = 0; k < grid; ++k) mass += next[k];
    mass *= out.step;
    if (mass <= 0.0) {
      return Status::NumericalError(
          "ReconstructDensity: density collapsed to zero mass");
    }
    double l1_change = 0.0;
    for (size_t k = 0; k < grid; ++k) {
      next[k] /= mass;
      l1_change += std::fabs(next[k] - f[k]) * out.step;
    }
    f.swap(next);
    if (l1_change < options.convergence_threshold) break;
  }

  out.density = std::move(f);
  return out;
}

}  // namespace stats
}  // namespace randrecon
