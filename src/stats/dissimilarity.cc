#include "stats/dissimilarity.h"

#include <cmath>

#include "stats/moments.h"

namespace randrecon {
namespace stats {

namespace {

/// Σ_{i≠j} (CX − CR)² with Definition 8.1's validation; also outputs
/// m² − m.
Result<double> OffDiagonalSquaredSum(const linalg::Matrix& corr_x,
                                     const linalg::Matrix& corr_r,
                                     double* num_offdiag) {
  if (corr_x.rows() != corr_x.cols() || corr_r.rows() != corr_r.cols()) {
    return Status::InvalidArgument("CorrelationDissimilarity: not square");
  }
  if (corr_x.rows() != corr_r.rows()) {
    return Status::InvalidArgument("CorrelationDissimilarity: size mismatch");
  }
  const size_t m = corr_x.rows();
  if (m < 2) {
    return Status::InvalidArgument(
        "CorrelationDissimilarity: needs at least 2 attributes");
  }
  double sum = 0.0;
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < m; ++j) {
      if (i == j) continue;  // Diagonals are always 1; excluded by Def. 8.1.
      const double d = corr_x(i, j) - corr_r(i, j);
      sum += d * d;
    }
  }
  *num_offdiag = static_cast<double>(m * m - m);
  return sum;
}

}  // namespace

Result<double> CorrelationDissimilarity(const linalg::Matrix& corr_x,
                                        const linalg::Matrix& corr_r) {
  double num_offdiag = 0.0;
  RR_ASSIGN_OR_RETURN(double sum,
                      OffDiagonalSquaredSum(corr_x, corr_r, &num_offdiag));
  return std::sqrt(sum / num_offdiag);
}

Result<double> CorrelationDissimilarityLiteral(const linalg::Matrix& corr_x,
                                               const linalg::Matrix& corr_r) {
  double num_offdiag = 0.0;
  RR_ASSIGN_OR_RETURN(double sum,
                      OffDiagonalSquaredSum(corr_x, corr_r, &num_offdiag));
  return std::sqrt(sum) / num_offdiag;
}

Result<double> CorrelationDissimilarityFromData(const linalg::Matrix& x,
                                                const linalg::Matrix& r) {
  if (x.cols() != r.cols()) {
    return Status::InvalidArgument(
        "CorrelationDissimilarityFromData: attribute count mismatch");
  }
  return CorrelationDissimilarity(SampleCorrelation(x), SampleCorrelation(r));
}

Result<double> DissimilarityToIndependentNoise(const linalg::Matrix& corr_x) {
  return CorrelationDissimilarity(corr_x,
                                  linalg::Matrix::Identity(corr_x.rows()));
}

}  // namespace stats
}  // namespace randrecon
