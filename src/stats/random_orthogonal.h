// Random orthogonal matrices: step 2 of the §7.1 synthetic-data recipe
// ("we generate an orthogonal matrix Q ... each column of Q is an
// eigenvector").

#ifndef RANDRECON_STATS_RANDOM_ORTHOGONAL_H_
#define RANDRECON_STATS_RANDOM_ORTHOGONAL_H_

#include "common/result.h"
#include "linalg/matrix.h"
#include "stats/rng.h"

namespace randrecon {
namespace stats {

/// Draws an m x m orthogonal matrix by Gram-Schmidt-orthonormalizing a
/// matrix of i.i.d. N(0,1) entries, retrying on the (measure-zero, but
/// floating-point-possible) rank-deficient draw.
linalg::Matrix RandomOrthogonalMatrix(size_t m, Rng* rng);

}  // namespace stats
}  // namespace randrecon

#endif  // RANDRECON_STATS_RANDOM_ORTHOGONAL_H_
