// StreamingMoments: out-of-core mean and sample-covariance accumulation
// over record chunks of ANY size, in O(kGramChunkRows·m + m²) memory.
//
// The covariance-driven attacks (PCA-DR, SF) need exactly two things from
// the n x m record matrix: the column means and the centered scatter
// Σᵢ (xᵢ−µ)(xᵢ−µ)ᵀ. Both are streamable, so the attacker never has to
// hold n x m — the basis of the src/pipeline subsystem.
//
// Determinism contract (tested in streaming_moments_test):
//   FinalizeCovariance() is BITWISE identical to
//   stats::SampleCovariance(data) for any sequence of chunk sizes and any
//   thread count. This works because
//     * mean accumulation is strictly record-ordered (the same order
//       ColumnMeans uses), so chunk boundaries never change it;
//     * scatter accumulation stages centered rows into fixed blocks of
//       kernels::kGramChunkRows records — block boundaries fall at global
//       record indices that are multiples of the constant, no matter how
//       the caller chunks its input — and flushes each block through
//       kernels::GramAtAChunk, folding partials in block order: exactly
//       the accumulation structure kernels::GramAtA pins for the
//       in-memory path.
//
// Usage is two-phase because exact centering needs the means first (the
// one-pass raw-moment formula Σxxᵀ/n − µµᵀ is neither bitwise compatible
// nor numerically safe for data with large means):
//
//   StreamingMoments moments(m);
//   for (chunk : stream) moments.AccumulateMeans(chunk, rows);
//   moments.FinalizeMeans();
//   for (chunk : re-streamed) moments.AccumulateScatter(chunk, rows);
//   linalg::Matrix cov = moments.FinalizeCovariance();

#ifndef RANDRECON_STATS_STREAMING_MOMENTS_H_
#define RANDRECON_STATS_STREAMING_MOMENTS_H_

#include <functional>
#include <vector>

#include "common/parallel.h"
#include "linalg/matrix.h"

namespace randrecon {
namespace stats {

/// Two-phase streaming estimator of column means and sample covariance.
/// Phase misuse (accumulating scatter before FinalizeMeans, mismatched
/// record counts between phases) is a programmer error and aborts via
/// RR_CHECK, mirroring the preconditions of stats::SampleCovariance.
class StreamingMoments {
 public:
  /// `options` parallelizes the per-block Gram kernel; results are
  /// bitwise identical for any setting.
  explicit StreamingMoments(size_t num_attributes,
                            const ParallelOptions& options = {});

  /// Phase 1: feeds `num_rows` records (row-major, num_attributes wide).
  void AccumulateMeans(const double* rows, size_t num_rows);

  /// Phase 1 convenience over a chunk buffer's leading rows.
  void AccumulateMeans(const linalg::Matrix& chunk, size_t num_rows);

  /// Phase 1, columnar form: `columns[j]` points at `num_rows` contiguous
  /// values of attribute j (e.g. a ColumnStoreReader::BlockColumn slice),
  /// so mmap'd stores feed the accumulator zero-copy. BITWISE identical
  /// to the row-major form: sums_[j] folds only column j's values, in
  /// record order, under either iteration — the forms are interchangeable
  /// mid-stream.
  void AccumulateMeansColumns(const double* const* columns, size_t num_rows);

  /// Ends phase 1 (requires at least one record) and fixes the means.
  void FinalizeMeans();

  /// Column means µ̂. Valid after FinalizeMeans().
  const linalg::Vector& means() const;

  /// Phase 2: feeds the SAME record stream again, in the same order.
  void AccumulateScatter(const double* rows, size_t num_rows);

  /// Phase 2 convenience over a chunk buffer's leading rows.
  void AccumulateScatter(const linalg::Matrix& chunk, size_t num_rows);

  /// Phase 2, columnar form. Centers straight from the column slices into
  /// the same staging block (identical values at identical staging
  /// offsets, flushed at the same global record indices), so the
  /// covariance is bitwise identical to the row-major form.
  void AccumulateScatterColumns(const double* const* columns, size_t num_rows);

  /// Ends phase 2 and returns the m x m sample covariance (ddof = 0:
  /// divide by n; ddof = 1: divide by n−1). Requires the phase-2 record
  /// count to equal the phase-1 count, and n > ddof.
  linalg::Matrix FinalizeCovariance(int ddof = 0);

  /// Records accumulated in phase 1 so far.
  size_t num_records() const { return mean_count_; }

  size_t num_attributes() const { return num_attributes_; }

 private:
  /// The one copy of the scatter staging skeleton (lazy buffer init,
  /// span loop, flush exactly at kGramChunkRows boundaries) that the
  /// bitwise contract depends on. `stage(consumed, span, staged)`
  /// centers records [consumed, consumed + span) of the caller's input
  /// into the staging rows at `staged` — the only part that differs
  /// between the row-major and columnar entry points.
  void AccumulateScatterSpans(
      size_t num_rows,
      const std::function<void(size_t, size_t, double*)>& stage);

  void FlushStagingBlock();

  enum class Phase { kMeans, kScatter, kDone };

  size_t num_attributes_;
  ParallelOptions options_;
  Phase phase_ = Phase::kMeans;
  size_t mean_count_ = 0;
  size_t scatter_count_ = 0;
  linalg::Vector sums_;
  linalg::Vector means_;
  std::vector<double> staging_;  ///< kGramChunkRows x m centered rows.
  size_t staging_rows_ = 0;
  std::vector<double> partial_;  ///< m x m per-block Gram partial.
  std::vector<double> scatter_;  ///< m x m upper-triangle accumulation.
};

}  // namespace stats
}  // namespace randrecon

#endif  // RANDRECON_STATS_STREAMING_MOMENTS_H_
