// Seeded random number generation. Every stochastic component in the
// library draws from an explicitly seeded Rng so that experiments, tests
// and benchmarks are reproducible bit-for-bit.

#ifndef RANDRECON_STATS_RNG_H_
#define RANDRECON_STATS_RNG_H_

#include <cstdint>
#include <random>

#include "linalg/matrix.h"

namespace randrecon {
namespace stats {

/// A deterministic pseudo-random source (mersenne twister, 64-bit).
class Rng {
 public:
  /// Seeds the stream. The same seed always yields the same sequence.
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Standard normal N(0, 1) draw.
  double Gaussian() { return normal_(engine_); }

  /// Normal N(mean, stddev²) draw.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * normal_(engine_);
  }

  /// Uniform draw on [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer on [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// A fresh independent seed derived from this stream (for spawning
  /// per-trial generators).
  uint64_t NextSeed() { return engine_(); }

  /// A rows x cols matrix of i.i.d. N(0,1) entries.
  linalg::Matrix GaussianMatrix(size_t rows, size_t cols);

  /// A vector of n i.i.d. N(mean, stddev²) entries.
  linalg::Vector GaussianVector(size_t n, double mean = 0.0,
                                double stddev = 1.0);

  /// Access to the underlying engine for std:: distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace stats
}  // namespace randrecon

#endif  // RANDRECON_STATS_RNG_H_
