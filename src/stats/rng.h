// Seeded random number generation. Every stochastic component in the
// library draws from an explicitly seeded Rng so that experiments, tests
// and benchmarks are reproducible bit-for-bit.

#ifndef RANDRECON_STATS_RNG_H_
#define RANDRECON_STATS_RNG_H_

#include <cstdint>
#include <random>

#include "linalg/matrix.h"

namespace randrecon {
namespace stats {

/// A deterministic pseudo-random source (mersenne twister, 64-bit).
class Rng {
 public:
  /// Seeds the stream. The same seed always yields the same sequence.
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Standard normal N(0, 1) draw.
  double Gaussian() { return normal_(engine_); }

  /// Normal N(mean, stddev²) draw.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * normal_(engine_);
  }

  /// Uniform draw on [lo, hi). The distribution object is a hoisted
  /// member invoked with per-call params — libstdc++ evaluates the
  /// param-call identically to a freshly constructed distribution, so
  /// the draw sequence is unchanged (pinned by RngTest golden values)
  /// while the per-call construction is gone.
  double Uniform(double lo, double hi) {
    return uniform_(engine_,
                    std::uniform_real_distribution<double>::param_type(lo, hi));
  }

  /// Uniform integer on [lo, hi] inclusive (hoisted like Uniform).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return uniform_int_(
        engine_, std::uniform_int_distribution<int64_t>::param_type(lo, hi));
  }

  /// A fresh independent seed derived from this stream (for spawning
  /// per-trial generators).
  uint64_t NextSeed() { return engine_(); }

  /// A rows x cols matrix of i.i.d. N(0,1) entries.
  linalg::Matrix GaussianMatrix(size_t rows, size_t cols);

  /// A vector of n i.i.d. N(mean, stddev²) entries.
  linalg::Vector GaussianVector(size_t n, double mean = 0.0,
                                double stddev = 1.0);

  /// Access to the underlying engine for std:: distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::normal_distribution<double> normal_{0.0, 1.0};
  std::uniform_real_distribution<double> uniform_;
  std::uniform_int_distribution<int64_t> uniform_int_;
};

}  // namespace stats
}  // namespace randrecon

#endif  // RANDRECON_STATS_RNG_H_
