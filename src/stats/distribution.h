// Scalar probability distributions. The UDR reconstructor (§4.2)
// evaluates the noise density fR pointwise on a grid, so noise
// distributions expose Pdf(); samplers draw perturbation values.

#ifndef RANDRECON_STATS_DISTRIBUTION_H_
#define RANDRECON_STATS_DISTRIBUTION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "stats/philox.h"
#include "stats/rng.h"

namespace randrecon {
namespace stats {

/// Interface for a one-dimensional distribution.
class ScalarDistribution {
 public:
  virtual ~ScalarDistribution() = default;

  /// Density at x.
  virtual double Pdf(double x) const = 0;

  /// Cumulative distribution function at x.
  virtual double Cdf(double x) const = 0;

  /// One random draw.
  virtual double Sample(Rng* rng) const = 0;

  /// True when SampleSliceAt is implemented — the counter-substrate
  /// batch path used by the parallel record generators.
  virtual bool SupportsBatchSampling() const { return false; }

  /// Fills out[0..n) with elements [elem_begin, elem_begin + n) of this
  /// distribution's canonical draw sequence over `stream` (a pure
  /// function of stream identity and element index, independent of the
  /// stream cursor — see stats/philox.h). RR_CHECK-fails unless
  /// SupportsBatchSampling().
  virtual void SampleSliceAt(const Philox& stream, uint64_t elem_begin,
                             double* out, size_t n) const;

  virtual double Mean() const = 0;
  virtual double Variance() const = 0;

  /// Short display name, e.g. "Normal(0, 25)".
  virtual std::string ToString() const = 0;

  /// Deep copy (distributions are stored polymorphically in NoiseModel).
  virtual std::unique_ptr<ScalarDistribution> Clone() const = 0;
};

/// Normal distribution N(mean, stddev²).
class NormalDistribution final : public ScalarDistribution {
 public:
  NormalDistribution(double mean, double stddev);

  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double Sample(Rng* rng) const override;
  bool SupportsBatchSampling() const override { return true; }
  void SampleSliceAt(const Philox& stream, uint64_t elem_begin, double* out,
                     size_t n) const override;
  double Mean() const override { return mean_; }
  double Variance() const override { return stddev_ * stddev_; }
  double stddev() const { return stddev_; }
  std::string ToString() const override;
  std::unique_ptr<ScalarDistribution> Clone() const override;

 private:
  double mean_;
  double stddev_;
};

/// Uniform distribution on [lo, hi).
class UniformDistribution final : public ScalarDistribution {
 public:
  UniformDistribution(double lo, double hi);

  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double Sample(Rng* rng) const override;
  bool SupportsBatchSampling() const override { return true; }
  void SampleSliceAt(const Philox& stream, uint64_t elem_begin, double* out,
                     size_t n) const override;
  double Mean() const override { return 0.5 * (lo_ + hi_); }
  double Variance() const override { return (hi_ - lo_) * (hi_ - lo_) / 12.0; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::string ToString() const override;
  std::unique_ptr<ScalarDistribution> Clone() const override;

 private:
  double lo_;
  double hi_;
};

/// Laplace (double-exponential) distribution with density
/// 1/(2b) · exp(−|x − µ|/b). Variance = 2b². A common heavy-tailed
/// alternative perturbation; UDR's grid estimator handles it unchanged.
class LaplaceDistribution final : public ScalarDistribution {
 public:
  /// `scale` is b > 0.
  LaplaceDistribution(double mean, double scale);

  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double Sample(Rng* rng) const override;
  bool SupportsBatchSampling() const override { return true; }
  void SampleSliceAt(const Philox& stream, uint64_t elem_begin, double* out,
                     size_t n) const override;
  double Mean() const override { return mean_; }
  double Variance() const override { return 2.0 * scale_ * scale_; }
  double scale() const { return scale_; }
  std::string ToString() const override;
  std::unique_ptr<ScalarDistribution> Clone() const override;

 private:
  double mean_;
  double scale_;
};

/// Finite mixture Σ wᵢ · componentᵢ. Used to model multi-modal original
/// data (e.g. two patient sub-populations) in UDR tests and examples.
class MixtureDistribution final : public ScalarDistribution {
 public:
  /// Builds a mixture; weights must be positive and are normalized to
  /// sum to 1. Fails with InvalidArgument on empty input, a null
  /// component, or a non-positive weight.
  static Result<MixtureDistribution> Create(
      std::vector<std::unique_ptr<ScalarDistribution>> components,
      std::vector<double> weights);

  MixtureDistribution(const MixtureDistribution& other);
  MixtureDistribution(MixtureDistribution&&) = default;

  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double Sample(Rng* rng) const override;
  double Mean() const override;
  double Variance() const override;
  size_t num_components() const { return components_.size(); }
  std::string ToString() const override;
  std::unique_ptr<ScalarDistribution> Clone() const override;

 private:
  MixtureDistribution(
      std::vector<std::unique_ptr<ScalarDistribution>> components,
      std::vector<double> weights)
      : components_(std::move(components)), weights_(std::move(weights)) {}

  std::vector<std::unique_ptr<ScalarDistribution>> components_;
  std::vector<double> weights_;
};

/// Standard normal density φ(z) (shared helper).
double StandardNormalPdf(double z);

/// Standard normal CDF Φ(z) via erfc.
double StandardNormalCdf(double z);

}  // namespace stats
}  // namespace randrecon

#endif  // RANDRECON_STATS_DISTRIBUTION_H_
