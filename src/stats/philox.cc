// Philox4x32-10 counter substrate. Three engines produce the SAME bits:
// a portable scalar path, an AVX2+FMA path and an AVX-512 path, selected
// at runtime (__builtin_cpu_supports), so one binary generates one
// stream on every x86-64 machine. The SIMD/scalar bitwise equality rests
// on two rules, enforced throughout this file:
//
//   1. every floating-point operation is correctly rounded and appears
//      in the same order in every engine (mul/add/div/sqrt, plus
//      explicit fused multiply-adds: std::fma scalar, vfmadd vector);
//   2. the build must not re-associate or contract expressions — the
//      CMakeLists compiles this file with -ffp-contract=off.
//
// Canonical word order: blocks are interleaved in groups of 16 so the
// SIMD engines store their lanes directly. Word index w maps to
//   group g = w / 64, slot j = (w % 64) / 16, lane b = (w % 64) % 16,
//   value  = output word j of block 16 g + b.
// The scalar engine walks the same mapping, so the order is part of the
// stream contract, not an engine detail.

#include "stats/philox.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/check.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define RANDRECON_PHILOX_X86 1
#endif

namespace randrecon {
namespace stats {
namespace {

// Philox4x32 multipliers and Weyl key increments (Random123).
constexpr uint32_t kMul0 = 0xD2511F53u;
constexpr uint32_t kMul1 = 0xCD9E8D57u;
constexpr uint32_t kWeyl0 = 0x9E3779B9u;
constexpr uint32_t kWeyl1 = 0xBB67AE85u;
constexpr int kRounds = 10;

constexpr uint64_t kLow32 = 0xFFFFFFFFull;

inline uint64_t SplitMix64(uint64_t z) {
  z ^= z >> 30;
  z *= 0xBF58476D1CE4E5B9ull;
  z ^= z >> 27;
  z *= 0x94D049BB133111EBull;
  z ^= z >> 31;
  return z;
}

inline void Round(uint32_t& c0, uint32_t& c1, uint32_t& c2, uint32_t& c3,
                  uint32_t k0, uint32_t k1) {
  const uint64_t p0 = uint64_t{kMul0} * c0;
  const uint64_t p1 = uint64_t{kMul1} * c2;
  const uint32_t n0 = static_cast<uint32_t>(p1 >> 32) ^ c1 ^ k0;
  const uint32_t n2 = static_cast<uint32_t>(p0 >> 32) ^ c3 ^ k1;
  c1 = static_cast<uint32_t>(p1);
  c3 = static_cast<uint32_t>(p0);
  c0 = n0;
  c2 = n2;
}

inline void Block(uint64_t block_index, uint64_t stream, uint64_t seed,
                  uint32_t out[4]) {
  uint32_t c0 = static_cast<uint32_t>(block_index);
  uint32_t c1 = static_cast<uint32_t>(block_index >> 32);
  uint32_t c2 = static_cast<uint32_t>(stream);
  uint32_t c3 = static_cast<uint32_t>(stream >> 32);
  uint32_t k0 = static_cast<uint32_t>(seed);
  uint32_t k1 = static_cast<uint32_t>(seed >> 32);
  Round(c0, c1, c2, c3, k0, k1);
  for (int r = 1; r < kRounds; ++r) {
    Round(c0, c1, c2, c3, k0 + static_cast<uint32_t>(r) * kWeyl0,
          k1 + static_cast<uint32_t>(r) * kWeyl1);
  }
  out[0] = c0;
  out[1] = c1;
  out[2] = c2;
  out[3] = c3;
}

// ---------------------------------------------------------------------------
// Raw engines: fill `group_count` canonical 64-word groups starting at
// group `group_begin` (lane-major layout described in the file header).
// ---------------------------------------------------------------------------

void RawGroupsScalar(uint64_t seed, uint64_t stream, uint64_t group_begin,
                     uint64_t group_count, uint32_t* out) {
  for (uint64_t g = 0; g < group_count; ++g) {
    const uint64_t base = (group_begin + g) * Philox::kBlocksPerGroup;
    uint32_t* o = out + g * Philox::kWordsPerGroup;
    for (size_t b = 0; b < Philox::kBlocksPerGroup; ++b) {
      uint32_t w[4];
      Block(base + b, stream, seed, w);
      o[b] = w[0];
      o[16 + b] = w[1];
      o[32 + b] = w[2];
      o[48 + b] = w[3];
    }
  }
}

// ---------------------------------------------------------------------------
// Box–Muller constants. The polynomials are Taylor series with exact
// double coefficients evaluated in a fixed Horner order; accuracy is
// ~1e-12 absolute against libm, which the tests pin.
// ---------------------------------------------------------------------------

constexpr double kInv32 = 0x1.0p-32;
constexpr double kSqrtTwo = 1.4142135623730951;  // 0x1.6a09e667f3bcdp+0
constexpr double kLn2Hi = 6.93147180369123816490e-01;
constexpr double kLn2Lo = 1.90821492927058770002e-10;
constexpr double kPiOverTwo = 1.5707963267948966;
constexpr double kPiOverFour = kPiOverTwo * 0.5;          // exact scaling
constexpr double kAngleScale = kPiOverTwo * 0x1.0p-30;    // exact scaling
constexpr double kTwo52 = 4503599627370496.0;             // 2^52
constexpr uint64_t kFracMask = 0xFFFFFFFFFFFFFull;
constexpr uint64_t kOneBits = 0x3FF0000000000000ull;
constexpr uint64_t kCvtMagic = 0x4330000000000000ull;     // 2^52 as bits

// atanh series for ln(m), m in [1/sqrt2, sqrt2]: 2s + s(t(L3 + t(...))).
// Truncated after the s^11 term: |s| <= sqrt2-1 / sqrt2+1 ~ 0.1716, so
// the dropped s^13 term is < 2e-11 absolute — well inside the 1e-10
// accuracy contract the tests pin.
constexpr double kL3 = 2.0 / 3.0;
constexpr double kL5 = 2.0 / 5.0;
constexpr double kL7 = 2.0 / 7.0;
constexpr double kL9 = 2.0 / 9.0;
constexpr double kL11 = 2.0 / 11.0;
// sin(a), cos(a) Taylor on |a| <= pi/4; the dropped a^13 sin term is
// < 7e-12, the retained a^12 cos term keeps cos under 1e-10.
constexpr double kS3 = -1.0 / 6.0;
constexpr double kS5 = 1.0 / 120.0;
constexpr double kS7 = -1.0 / 5040.0;
constexpr double kS9 = 1.0 / 362880.0;
constexpr double kS11 = -1.0 / 39916800.0;
constexpr double kC2 = -0.5;
constexpr double kC4 = 1.0 / 24.0;
constexpr double kC6 = -1.0 / 720.0;
constexpr double kC8 = 1.0 / 40320.0;
constexpr double kC10 = -1.0 / 3628800.0;
constexpr double kC12 = 1.0 / 479001600.0;

inline uint64_t BitsOf(double x) {
  uint64_t b;
  std::memcpy(&b, &x, sizeof(b));
  return b;
}

inline double DoubleOf(uint64_t b) {
  double x;
  std::memcpy(&x, &b, sizeof(x));
  return x;
}

/// ln(u) for u in (0, 1]. Decomposes u = 2^e * m with m in
/// [1/sqrt2, sqrt2], then ln m = 2 atanh(s), s = (m-1)/(m+1).
inline double Log01Scalar(double u) {
  const uint64_t bits = BitsOf(u);
  double m = DoubleOf((bits & kFracMask) | kOneBits);
  const int64_t raw_exp = static_cast<int64_t>(bits >> 52) - 1023;
  const bool shift = m > kSqrtTwo;
  m = shift ? m * 0.5 : m;
  const double e = static_cast<double>(raw_exp + (shift ? 1 : 0));
  const double s = (m - 1.0) / (m + 1.0);
  const double t = s * s;
  double p = kL11;
  p = std::fma(p, t, kL9);
  p = std::fma(p, t, kL7);
  p = std::fma(p, t, kL5);
  p = std::fma(p, t, kL3);
  const double lnm = std::fma(s, 2.0, s * (t * p));
  return std::fma(e, kLn2Hi, std::fma(e, kLn2Lo, lnm));
}

/// One Box–Muller pair from raw words: w0 -> radius uniform
/// u1 = (w0 + 1) * 2^-32 in (0, 1]; w1 -> 2 quadrant bits + 30-bit angle
/// fraction, theta = (pi/2)(q + f * 2^-30 - 1/2).
inline void BoxMullerElement(uint32_t w0, uint32_t w1, double* z0,
                             double* z1) {
  const double u1 = std::fma(static_cast<double>(w0), kInv32, kInv32);
  const double lnu = Log01Scalar(u1);
  const double r = std::sqrt(-2.0 * lnu);
  const double f30 = static_cast<double>(w1 & 0x3FFFFFFFu);
  const double a = std::fma(f30, kAngleScale, -kPiOverFour);
  const double t2 = a * a;
  double sp = kS11;
  sp = std::fma(sp, t2, kS9);
  sp = std::fma(sp, t2, kS7);
  sp = std::fma(sp, t2, kS5);
  sp = std::fma(sp, t2, kS3);
  const double sinp = std::fma(a, t2 * sp, a);
  double cp = kC12;
  cp = std::fma(cp, t2, kC10);
  cp = std::fma(cp, t2, kC8);
  cp = std::fma(cp, t2, kC6);
  cp = std::fma(cp, t2, kC4);
  cp = std::fma(cp, t2, kC2);
  const double cosp = std::fma(t2, cp, 1.0);
  const bool odd = (w1 & 0x40000000u) != 0;  // quadrant bit 0
  const bool ge2 = (w1 & 0x80000000u) != 0;  // quadrant bit 1
  double sin_t = odd ? cosp : sinp;
  double cos_t = odd ? sinp : cosp;
  sin_t = ge2 ? -sin_t : sin_t;
  cos_t = (odd != ge2) ? -cos_t : cos_t;
  *z0 = r * cos_t;
  *z1 = r * sin_t;
}

void BoxMullerScalarImpl(const uint32_t* words, double* out, size_t pairs) {
  for (size_t p = 0; p < pairs; ++p) {
    BoxMullerElement(words[2 * p], words[2 * p + 1], out + 2 * p,
                     out + 2 * p + 1);
  }
}

// ---------------------------------------------------------------------------
// AVX2 engines.
// ---------------------------------------------------------------------------
#if defined(RANDRECON_PHILOX_X86)
#pragma GCC push_options
#pragma GCC target("avx2,fma")

__attribute__((target("avx2,fma"))) void RawGroupsAvx2(
    uint64_t seed, uint64_t stream, uint64_t group_begin,
    uint64_t group_count, uint32_t* out) {
  const __m256i lane = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m256i c2v = _mm256_set1_epi32(static_cast<int>(stream));
  const __m256i c3v = _mm256_set1_epi32(static_cast<int>(stream >> 32));
  const uint32_t k0s = static_cast<uint32_t>(seed);
  const uint32_t k1s = static_cast<uint32_t>(seed >> 32);
  const __m256i mul0 = _mm256_set1_epi32(static_cast<int>(kMul0));
  const __m256i mul1 = _mm256_set1_epi32(static_cast<int>(kMul1));
  __m256i key0[kRounds], key1[kRounds];
  for (int r = 0; r < kRounds; ++r) {
    key0[r] = _mm256_set1_epi32(
        static_cast<int>(k0s + static_cast<uint32_t>(r) * kWeyl0));
    key1[r] = _mm256_set1_epi32(
        static_cast<int>(k1s + static_cast<uint32_t>(r) * kWeyl1));
  }
  for (uint64_t g = 0; g < group_count; ++g) {
    const uint64_t base = (group_begin + g) * Philox::kBlocksPerGroup;
    uint32_t* o = out + g * Philox::kWordsPerGroup;
    for (int half = 0; half < 2; ++half) {
      // base is a multiple of 16, so the low-32 add never carries.
      __m256i c0 = _mm256_add_epi32(
          _mm256_set1_epi32(static_cast<int>(base + 8 * half)), lane);
      __m256i c1 = _mm256_set1_epi32(static_cast<int>(base >> 32));
      __m256i c2 = c2v, c3 = c3v;
      for (int r = 0; r < kRounds; ++r) {
        const __m256i p0e = _mm256_mul_epu32(c0, mul0);
        const __m256i p0o = _mm256_mul_epu32(_mm256_srli_epi64(c0, 32), mul0);
        const __m256i p1e = _mm256_mul_epu32(c2, mul1);
        const __m256i p1o = _mm256_mul_epu32(_mm256_srli_epi64(c2, 32), mul1);
        const __m256i hi0 = _mm256_blend_epi32(_mm256_srli_epi64(p0e, 32),
                                               p0o, 0xAA);
        const __m256i lo0 = _mm256_blend_epi32(p0e, _mm256_slli_epi64(p0o, 32),
                                               0xAA);
        const __m256i hi1 = _mm256_blend_epi32(_mm256_srli_epi64(p1e, 32),
                                               p1o, 0xAA);
        const __m256i lo1 = _mm256_blend_epi32(p1e, _mm256_slli_epi64(p1o, 32),
                                               0xAA);
        const __m256i n0 =
            _mm256_xor_si256(_mm256_xor_si256(hi1, c1), key0[r]);
        const __m256i n2 =
            _mm256_xor_si256(_mm256_xor_si256(hi0, c3), key1[r]);
        c0 = n0;
        c1 = lo1;
        c2 = n2;
        c3 = lo0;
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(o + 8 * half), c0);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(o + 16 + 8 * half), c1);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(o + 32 + 8 * half), c2);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(o + 48 + 8 * half), c3);
    }
  }
}

__attribute__((target("avx2,fma"))) void BoxMullerAvx2(const uint32_t* words,
                                                       double* out,
                                                       size_t pairs) {
  const __m256i m32 = _mm256_set1_epi64x(static_cast<long long>(kLow32));
  const __m256i magic =
      _mm256_set1_epi64x(static_cast<long long>(kCvtMagic));
  const __m256d two52 = _mm256_set1_pd(kTwo52);
  size_t p = 0;
  for (; p + 4 <= pairs; p += 4) {
    // 8 words = 4 pairs; 64-bit lane = (w1 << 32) | w0 (little endian).
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(words + 2 * p));
    const __m256i w0 = _mm256_and_si256(v, m32);
    const __m256i w1 = _mm256_srli_epi64(v, 32);
    // Exact uint32 -> double via the 2^52 bias trick.
    const __m256d w0d = _mm256_sub_pd(
        _mm256_castsi256_pd(_mm256_or_si256(w0, magic)), two52);
    const __m256d u1 = _mm256_fmadd_pd(w0d, _mm256_set1_pd(kInv32),
                                       _mm256_set1_pd(kInv32));
    // ln(u1)
    const __m256i bits = _mm256_castpd_si256(u1);
    __m256d m = _mm256_castsi256_pd(_mm256_or_si256(
        _mm256_and_si256(bits,
                         _mm256_set1_epi64x(static_cast<long long>(kFracMask))),
        _mm256_set1_epi64x(static_cast<long long>(kOneBits))));
    const __m256i be = _mm256_srli_epi64(bits, 52);
    const __m256d shift = _mm256_cmp_pd(m, _mm256_set1_pd(kSqrtTwo),
                                        _CMP_GT_OQ);
    m = _mm256_blendv_pd(m, _mm256_mul_pd(m, _mm256_set1_pd(0.5)), shift);
    const __m256i adj = _mm256_and_si256(_mm256_castpd_si256(shift),
                                         _mm256_set1_epi64x(1));
    // e = (be - 1023 + adj) as double: bias by +2048 and use the 2^52
    // trick (exact, same value as the scalar static_cast).
    const __m256i eoff = _mm256_add_epi64(
        _mm256_add_epi64(be, adj), _mm256_set1_epi64x(1025));
    const __m256d e = _mm256_sub_pd(
        _mm256_castsi256_pd(_mm256_or_si256(eoff, magic)),
        _mm256_set1_pd(kTwo52 + 2048.0));
    const __m256d s = _mm256_div_pd(
        _mm256_sub_pd(m, _mm256_set1_pd(1.0)),
        _mm256_add_pd(m, _mm256_set1_pd(1.0)));
    const __m256d t = _mm256_mul_pd(s, s);
    __m256d pl = _mm256_set1_pd(kL11);
    pl = _mm256_fmadd_pd(pl, t, _mm256_set1_pd(kL9));
    pl = _mm256_fmadd_pd(pl, t, _mm256_set1_pd(kL7));
    pl = _mm256_fmadd_pd(pl, t, _mm256_set1_pd(kL5));
    pl = _mm256_fmadd_pd(pl, t, _mm256_set1_pd(kL3));
    const __m256d lnm = _mm256_fmadd_pd(
        s, _mm256_set1_pd(2.0), _mm256_mul_pd(s, _mm256_mul_pd(t, pl)));
    const __m256d lnu = _mm256_fmadd_pd(
        e, _mm256_set1_pd(kLn2Hi),
        _mm256_fmadd_pd(e, _mm256_set1_pd(kLn2Lo), lnm));
    const __m256d r =
        _mm256_sqrt_pd(_mm256_mul_pd(_mm256_set1_pd(-2.0), lnu));
    // angle
    const __m256i f30i = _mm256_and_si256(w1, _mm256_set1_epi64x(0x3FFFFFFF));
    const __m256d f30 = _mm256_sub_pd(
        _mm256_castsi256_pd(_mm256_or_si256(f30i, magic)), two52);
    const __m256d a = _mm256_fmadd_pd(f30, _mm256_set1_pd(kAngleScale),
                                      _mm256_set1_pd(-kPiOverFour));
    const __m256d t2 = _mm256_mul_pd(a, a);
    __m256d sp = _mm256_set1_pd(kS11);
    sp = _mm256_fmadd_pd(sp, t2, _mm256_set1_pd(kS9));
    sp = _mm256_fmadd_pd(sp, t2, _mm256_set1_pd(kS7));
    sp = _mm256_fmadd_pd(sp, t2, _mm256_set1_pd(kS5));
    sp = _mm256_fmadd_pd(sp, t2, _mm256_set1_pd(kS3));
    const __m256d sinp = _mm256_fmadd_pd(a, _mm256_mul_pd(t2, sp), a);
    __m256d cpv = _mm256_set1_pd(kC12);
    cpv = _mm256_fmadd_pd(cpv, t2, _mm256_set1_pd(kC10));
    cpv = _mm256_fmadd_pd(cpv, t2, _mm256_set1_pd(kC8));
    cpv = _mm256_fmadd_pd(cpv, t2, _mm256_set1_pd(kC6));
    cpv = _mm256_fmadd_pd(cpv, t2, _mm256_set1_pd(kC4));
    cpv = _mm256_fmadd_pd(cpv, t2, _mm256_set1_pd(kC2));
    const __m256d cosp = _mm256_fmadd_pd(t2, cpv, _mm256_set1_pd(1.0));
    // quadrant bits 30/31 of w1
    const __m256i b30 = _mm256_set1_epi64x(0x40000000);
    const __m256i b31 = _mm256_set1_epi64x(0x80000000);
    const __m256d odd = _mm256_castsi256_pd(_mm256_cmpeq_epi64(
        _mm256_and_si256(w1, b30), b30));
    const __m256d ge2 = _mm256_castsi256_pd(_mm256_cmpeq_epi64(
        _mm256_and_si256(w1, b31), b31));
    __m256d sin_t = _mm256_blendv_pd(sinp, cosp, odd);
    __m256d cos_t = _mm256_blendv_pd(cosp, sinp, odd);
    const __m256d neg = _mm256_set1_pd(-0.0);
    sin_t = _mm256_xor_pd(sin_t, _mm256_and_pd(ge2, neg));
    cos_t = _mm256_xor_pd(cos_t, _mm256_and_pd(_mm256_xor_pd(odd, ge2), neg));
    const __m256d z0 = _mm256_mul_pd(r, cos_t);
    const __m256d z1 = _mm256_mul_pd(r, sin_t);
    const __m256d lo = _mm256_unpacklo_pd(z0, z1);
    const __m256d hi = _mm256_unpackhi_pd(z0, z1);
    _mm256_storeu_pd(out + 2 * p, _mm256_permute2f128_pd(lo, hi, 0x20));
    _mm256_storeu_pd(out + 2 * p + 4, _mm256_permute2f128_pd(lo, hi, 0x31));
  }
  BoxMullerScalarImpl(words + 2 * p, out + 2 * p, pairs - p);
}

#pragma GCC pop_options

// ---------------------------------------------------------------------------
// AVX-512 engines.
// ---------------------------------------------------------------------------
#pragma GCC push_options
#pragma GCC target("avx512f,avx512dq")

__attribute__((target("avx512f,avx512dq"))) void RawGroupsAvx512(
    uint64_t seed, uint64_t stream, uint64_t group_begin,
    uint64_t group_count, uint32_t* out) {
  const __m512i lane = _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                         12, 13, 14, 15);
  const __m512i c2v = _mm512_set1_epi32(static_cast<int>(stream));
  const __m512i c3v = _mm512_set1_epi32(static_cast<int>(stream >> 32));
  const uint32_t k0s = static_cast<uint32_t>(seed);
  const uint32_t k1s = static_cast<uint32_t>(seed >> 32);
  const __m512i mul0 = _mm512_set1_epi32(static_cast<int>(kMul0));
  const __m512i mul1 = _mm512_set1_epi32(static_cast<int>(kMul1));
  __m512i key0[kRounds], key1[kRounds];
  for (int r = 0; r < kRounds; ++r) {
    key0[r] = _mm512_set1_epi32(
        static_cast<int>(k0s + static_cast<uint32_t>(r) * kWeyl0));
    key1[r] = _mm512_set1_epi32(
        static_cast<int>(k1s + static_cast<uint32_t>(r) * kWeyl1));
  }
  for (uint64_t g = 0; g < group_count; ++g) {
    const uint64_t base = (group_begin + g) * Philox::kBlocksPerGroup;
    uint32_t* o = out + g * Philox::kWordsPerGroup;
    __m512i c0 = _mm512_add_epi32(_mm512_set1_epi32(static_cast<int>(base)),
                                  lane);
    __m512i c1 = _mm512_set1_epi32(static_cast<int>(base >> 32));
    __m512i c2 = c2v, c3 = c3v;
    for (int r = 0; r < kRounds; ++r) {
      const __m512i p0e = _mm512_mul_epu32(c0, mul0);
      const __m512i p0o = _mm512_mul_epu32(_mm512_srli_epi64(c0, 32), mul0);
      const __m512i p1e = _mm512_mul_epu32(c2, mul1);
      const __m512i p1o = _mm512_mul_epu32(_mm512_srli_epi64(c2, 32), mul1);
      const __m512i hi0 = _mm512_mask_blend_epi32(
          0xAAAA, _mm512_srli_epi64(p0e, 32), p0o);
      const __m512i lo0 = _mm512_mask_blend_epi32(
          0xAAAA, p0e, _mm512_slli_epi64(p0o, 32));
      const __m512i hi1 = _mm512_mask_blend_epi32(
          0xAAAA, _mm512_srli_epi64(p1e, 32), p1o);
      const __m512i lo1 = _mm512_mask_blend_epi32(
          0xAAAA, p1e, _mm512_slli_epi64(p1o, 32));
      const __m512i n0 =
          _mm512_xor_si512(_mm512_xor_si512(hi1, c1), key0[r]);
      const __m512i n2 =
          _mm512_xor_si512(_mm512_xor_si512(hi0, c3), key1[r]);
      c0 = n0;
      c1 = lo1;
      c2 = n2;
      c3 = lo0;
    }
    _mm512_storeu_si512(o, c0);
    _mm512_storeu_si512(o + 16, c1);
    _mm512_storeu_si512(o + 32, c2);
    _mm512_storeu_si512(o + 48, c3);
  }
}

__attribute__((target("avx512f,avx512dq"))) void BoxMullerAvx512(
    const uint32_t* words, double* out, size_t pairs) {
  const __m512i m32 = _mm512_set1_epi64(static_cast<long long>(kLow32));
  size_t p = 0;
  for (; p + 8 <= pairs; p += 8) {
    const __m512i v = _mm512_loadu_si512(words + 2 * p);
    const __m512i w0 = _mm512_and_si512(v, m32);
    const __m512i w1 = _mm512_srli_epi64(v, 32);
    const __m512d w0d = _mm512_cvtepu64_pd(w0);  // exact (< 2^32)
    const __m512d u1 = _mm512_fmadd_pd(w0d, _mm512_set1_pd(kInv32),
                                       _mm512_set1_pd(kInv32));
    const __m512i bits = _mm512_castpd_si512(u1);
    __m512d m = _mm512_castsi512_pd(_mm512_or_si512(
        _mm512_and_si512(bits,
                         _mm512_set1_epi64(static_cast<long long>(kFracMask))),
        _mm512_set1_epi64(static_cast<long long>(kOneBits))));
    const __m512i be = _mm512_srli_epi64(bits, 52);
    const __mmask8 shift = _mm512_cmp_pd_mask(m, _mm512_set1_pd(kSqrtTwo),
                                              _CMP_GT_OQ);
    m = _mm512_mask_mul_pd(m, shift, m, _mm512_set1_pd(0.5));
    const __m512i ei = _mm512_mask_add_epi64(be, shift, be,
                                             _mm512_set1_epi64(1));
    const __m512d e = _mm512_cvtepi64_pd(
        _mm512_sub_epi64(ei, _mm512_set1_epi64(1023)));
    const __m512d s = _mm512_div_pd(
        _mm512_sub_pd(m, _mm512_set1_pd(1.0)),
        _mm512_add_pd(m, _mm512_set1_pd(1.0)));
    const __m512d t = _mm512_mul_pd(s, s);
    __m512d pl = _mm512_set1_pd(kL11);
    pl = _mm512_fmadd_pd(pl, t, _mm512_set1_pd(kL9));
    pl = _mm512_fmadd_pd(pl, t, _mm512_set1_pd(kL7));
    pl = _mm512_fmadd_pd(pl, t, _mm512_set1_pd(kL5));
    pl = _mm512_fmadd_pd(pl, t, _mm512_set1_pd(kL3));
    const __m512d lnm = _mm512_fmadd_pd(
        s, _mm512_set1_pd(2.0), _mm512_mul_pd(s, _mm512_mul_pd(t, pl)));
    const __m512d lnu = _mm512_fmadd_pd(
        e, _mm512_set1_pd(kLn2Hi),
        _mm512_fmadd_pd(e, _mm512_set1_pd(kLn2Lo), lnm));
    const __m512d r =
        _mm512_sqrt_pd(_mm512_mul_pd(_mm512_set1_pd(-2.0), lnu));
    const __m512i f30i = _mm512_and_si512(w1, _mm512_set1_epi64(0x3FFFFFFF));
    const __m512d f30 = _mm512_cvtepu64_pd(f30i);
    const __m512d a = _mm512_fmadd_pd(f30, _mm512_set1_pd(kAngleScale),
                                      _mm512_set1_pd(-kPiOverFour));
    const __m512d t2 = _mm512_mul_pd(a, a);
    __m512d sp = _mm512_set1_pd(kS11);
    sp = _mm512_fmadd_pd(sp, t2, _mm512_set1_pd(kS9));
    sp = _mm512_fmadd_pd(sp, t2, _mm512_set1_pd(kS7));
    sp = _mm512_fmadd_pd(sp, t2, _mm512_set1_pd(kS5));
    sp = _mm512_fmadd_pd(sp, t2, _mm512_set1_pd(kS3));
    const __m512d sinp = _mm512_fmadd_pd(a, _mm512_mul_pd(t2, sp), a);
    __m512d cpv = _mm512_set1_pd(kC12);
    cpv = _mm512_fmadd_pd(cpv, t2, _mm512_set1_pd(kC10));
    cpv = _mm512_fmadd_pd(cpv, t2, _mm512_set1_pd(kC8));
    cpv = _mm512_fmadd_pd(cpv, t2, _mm512_set1_pd(kC6));
    cpv = _mm512_fmadd_pd(cpv, t2, _mm512_set1_pd(kC4));
    cpv = _mm512_fmadd_pd(cpv, t2, _mm512_set1_pd(kC2));
    const __m512d cosp = _mm512_fmadd_pd(t2, cpv, _mm512_set1_pd(1.0));
    const __mmask8 odd = _mm512_test_epi64_mask(
        w1, _mm512_set1_epi64(0x40000000));
    const __mmask8 ge2 = _mm512_test_epi64_mask(
        w1, _mm512_set1_epi64(0x80000000));
    const __m512d sin_base = _mm512_mask_blend_pd(odd, sinp, cosp);
    const __m512d cos_base = _mm512_mask_blend_pd(odd, cosp, sinp);
    const __m512i negbits = _mm512_castpd_si512(_mm512_set1_pd(-0.0));
    const __m512d sin_t = _mm512_castsi512_pd(_mm512_mask_xor_epi64(
        _mm512_castpd_si512(sin_base), ge2, _mm512_castpd_si512(sin_base),
        negbits));
    const __mmask8 fc = odd ^ ge2;
    const __m512d cos_t = _mm512_castsi512_pd(_mm512_mask_xor_epi64(
        _mm512_castpd_si512(cos_base), fc, _mm512_castpd_si512(cos_base),
        negbits));
    const __m512d z0 = _mm512_mul_pd(r, cos_t);
    const __m512d z1 = _mm512_mul_pd(r, sin_t);
    const __m512i idxlo = _mm512_setr_epi64(0, 8, 1, 9, 2, 10, 3, 11);
    const __m512i idxhi = _mm512_setr_epi64(4, 12, 5, 13, 6, 14, 7, 15);
    _mm512_storeu_pd(out + 2 * p, _mm512_permutex2var_pd(z0, idxlo, z1));
    _mm512_storeu_pd(out + 2 * p + 8, _mm512_permutex2var_pd(z0, idxhi, z1));
  }
  BoxMullerScalarImpl(words + 2 * p, out + 2 * p, pairs - p);
}

#pragma GCC pop_options
#endif  // RANDRECON_PHILOX_X86

// ---------------------------------------------------------------------------
// Runtime dispatch.
// ---------------------------------------------------------------------------

using RawEngine = void (*)(uint64_t, uint64_t, uint64_t, uint64_t, uint32_t*);
using BmEngine = void (*)(const uint32_t*, double*, size_t);

struct Engines {
  RawEngine raw;
  BmEngine box_muller;
  const char* name;
};

const Engines& ActiveEngines() {
  static const Engines engines = [] {
#if defined(RANDRECON_PHILOX_X86)
    const char* no_simd = std::getenv("RANDRECON_NO_SIMD");
    if (no_simd == nullptr || no_simd[0] == '\0' || no_simd[0] == '0') {
      if (__builtin_cpu_supports("avx512f") &&
          __builtin_cpu_supports("avx512dq")) {
        return Engines{RawGroupsAvx512, BoxMullerAvx512, "avx512"};
      }
      if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
        return Engines{RawGroupsAvx2, BoxMullerAvx2, "avx2"};
      }
    }
#endif
    return Engines{RawGroupsScalar, BoxMullerScalarImpl, "scalar"};
  }();
  return engines;
}

/// Fills canonical words [word_begin, word_begin + n) with `engine`,
/// staging the (at most two) partial edge groups.
void FillRawWith(RawEngine engine, uint64_t seed, uint64_t stream,
                 uint64_t word_begin, uint32_t* out, size_t n) {
  uint64_t w = word_begin;
  while (n > 0) {
    const uint64_t group = w / Philox::kWordsPerGroup;
    const size_t offset = static_cast<size_t>(w % Philox::kWordsPerGroup);
    if (offset == 0 && n >= Philox::kWordsPerGroup) {
      const uint64_t full = n / Philox::kWordsPerGroup;
      engine(seed, stream, group, full, out);
      const uint64_t words = full * Philox::kWordsPerGroup;
      w += words;
      out += words;
      n -= static_cast<size_t>(words);
      continue;
    }
    uint32_t stage[Philox::kWordsPerGroup];
    engine(seed, stream, group, 1, stage);
    const size_t take = std::min(n, Philox::kWordsPerGroup - offset);
    std::memcpy(out, stage + offset, take * sizeof(uint32_t));
    w += take;
    out += take;
    n -= take;
  }
}

constexpr size_t kTilePairs = 2048;  // 16KB raw staging per tile

/// Core of the Gaussian slices: pairs [pair_begin, pair_begin + pairs)
/// written interleaved to out.
void GaussianPairs(const Philox& stream, uint64_t pair_begin, double* out,
                   size_t pairs) {
  const Engines& engines = ActiveEngines();
  uint32_t raw[2 * kTilePairs];
  while (pairs > 0) {
    const size_t take = std::min(pairs, kTilePairs);
    FillRawWith(engines.raw, stream.seed(), stream.stream(), 2 * pair_begin,
                raw, 2 * take);
    engines.box_muller(raw, out, take);
    pair_begin += take;
    out += 2 * take;
    pairs -= take;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Philox members.
// ---------------------------------------------------------------------------

Philox Philox::Substream(uint64_t substream_id) const {
  return Philox(seed_,
                SplitMix64(stream_ + 0x9E3779B97F4A7C15ull *
                                         (substream_id + 1)));
}

uint32_t Philox::Next32() {
  const uint64_t group = pos_ / kWordsPerGroup;
  if (group != cached_group_) {
    FillRawWith(ActiveEngines().raw, seed_, stream_, group * kWordsPerGroup,
                group_words_, kWordsPerGroup);
    cached_group_ = group;
  }
  return group_words_[pos_++ % kWordsPerGroup];
}

uint64_t Philox::Next64() {
  const uint64_t lo = Next32();
  const uint64_t hi = Next32();
  return (hi << 32) | lo;
}

double Philox::NextUniform() {
  pos_ = (pos_ + 1) & ~uint64_t{1};  // align to an element boundary
  const uint64_t v = Next64();
  return static_cast<double>(v >> 11) * 0x1.0p-53;
}

void Philox::FillUniform(double* out, size_t n) {
  pos_ = (pos_ + 1) & ~uint64_t{1};
  UniformSliceAt(*this, pos_ / 2, out, n);
  pos_ += 2 * n;
}

void Philox::FillUniform(double lo, double hi, double* out, size_t n) {
  pos_ = (pos_ + 1) & ~uint64_t{1};
  UniformSliceAt(*this, lo, hi, pos_ / 2, out, n);
  pos_ += 2 * n;
}

void Philox::FillGaussian(double* out, size_t n) {
  pos_ = (pos_ + 1) & ~uint64_t{1};
  GaussianSliceAt(*this, pos_, out, n);
  pos_ += 2 * ((n + 1) / 2);
}

void Philox::FillGaussian(double mean, double stddev, double* out, size_t n) {
  pos_ = (pos_ + 1) & ~uint64_t{1};
  GaussianSliceAt(*this, mean, stddev, pos_, out, n);
  pos_ += 2 * ((n + 1) / 2);
}

void Philox::FillBernoulli(double p, uint8_t* out, size_t n) {
  BernoulliSliceAt(*this, p, pos_, out, n);
  pos_ += n;
}

// ---------------------------------------------------------------------------
// Slices.
// ---------------------------------------------------------------------------

void UniformSliceAt(const Philox& stream, uint64_t elem_begin, double* out,
                    size_t n) {
  const Engines& engines = ActiveEngines();
  uint32_t raw[2 * kTilePairs];
  uint64_t e = elem_begin;
  while (n > 0) {
    const size_t take = std::min(n, kTilePairs);
    FillRawWith(engines.raw, stream.seed(), stream.stream(), 2 * e, raw,
                2 * take);
    for (size_t i = 0; i < take; ++i) {
      uint64_t v;
      std::memcpy(&v, raw + 2 * i, sizeof(v));
      out[i] = static_cast<double>(v >> 11) * 0x1.0p-53;
    }
    e += take;
    out += take;
    n -= take;
  }
}

void UniformSliceAt(const Philox& stream, double lo, double hi,
                    uint64_t elem_begin, double* out, size_t n) {
  UniformSliceAt(stream, elem_begin, out, n);
  const double span = hi - lo;
  for (size_t i = 0; i < n; ++i) out[i] = lo + out[i] * span;
}

void GaussianSliceAt(const Philox& stream, uint64_t elem_begin, double* out,
                     size_t n) {
  if (n == 0) return;
  size_t i = 0;
  if (elem_begin & 1) {  // leading half pair: keep only the sine element
    uint32_t w[2];
    double z[2];
    FillRawWith(ActiveEngines().raw, stream.seed(), stream.stream(),
                elem_begin - 1, w, 2);
    ActiveEngines().box_muller(w, z, 1);
    out[0] = z[1];
    ++i;
  }
  const size_t full_pairs = (n - i) / 2;
  if (full_pairs > 0) {
    GaussianPairs(stream, (elem_begin + i) / 2, out + i, full_pairs);
    i += 2 * full_pairs;
  }
  if (i < n) {  // trailing half pair: keep only the cosine element
    uint32_t w[2];
    double z[2];
    FillRawWith(ActiveEngines().raw, stream.seed(), stream.stream(),
                elem_begin + i, w, 2);
    ActiveEngines().box_muller(w, z, 1);
    out[i] = z[0];
  }
}

void GaussianSliceAt(const Philox& stream, double mean, double stddev,
                     uint64_t elem_begin, double* out, size_t n) {
  GaussianSliceAt(stream, elem_begin, out, n);
  for (size_t i = 0; i < n; ++i) out[i] = mean + stddev * out[i];
}

void BernoulliSliceAt(const Philox& stream, double p, uint64_t elem_begin,
                      uint8_t* out, size_t n) {
  const Engines& engines = ActiveEngines();
  uint32_t raw[2 * kTilePairs];
  while (n > 0) {
    const size_t take = std::min(n, 2 * kTilePairs);
    FillRawWith(engines.raw, stream.seed(), stream.stream(), elem_begin, raw,
                take);
    for (size_t i = 0; i < take; ++i) {
      out[i] = static_cast<double>(raw[i]) * kInv32 < p ? 1 : 0;
    }
    elem_begin += take;
    out += take;
    n -= take;
  }
}

double Log01(double x) {
  RR_CHECK(x > 0.0 && x <= 1.0) << "Log01: argument outside (0, 1]";
  return Log01Scalar(x);
}

// ---------------------------------------------------------------------------
// Test hooks.
// ---------------------------------------------------------------------------
namespace philox_internal {

void ReferenceBlock(uint64_t block_index, uint64_t stream, uint64_t seed,
                    uint32_t out[4]) {
  Block(block_index, stream, seed, out);
}

void FillRawScalar(uint64_t seed, uint64_t stream, uint64_t word_begin,
                   uint32_t* out, size_t n) {
  FillRawWith(RawGroupsScalar, seed, stream, word_begin, out, n);
}

void FillRawDispatched(uint64_t seed, uint64_t stream, uint64_t word_begin,
                       uint32_t* out, size_t n) {
  FillRawWith(ActiveEngines().raw, seed, stream, word_begin, out, n);
}

void BoxMullerScalar(const uint32_t* words, double* out, size_t pairs) {
  BoxMullerScalarImpl(words, out, pairs);
}

void BoxMullerDispatched(const uint32_t* words, double* out, size_t pairs) {
  ActiveEngines().box_muller(words, out, pairs);
}

const char* ActiveEngine() { return ActiveEngines().name; }

}  // namespace philox_internal

}  // namespace stats
}  // namespace randrecon
