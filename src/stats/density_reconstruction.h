// Agrawal–Srikant iterative distribution reconstruction (SIGMOD 2000).
//
// The paper's UDR attack (§4.2) needs the original marginal density fX,
// which "can be estimated from the disguised data [2]". Reference [2] is
// Agrawal & Srikant's Bayes-iterative (EM) algorithm; this file implements
// it on a uniform grid:
//
//   f^{t+1}(a) = (1/n) Σ_i  fR(y_i − a) f^t(a) / Σ_z fR(y_i − z) f^t(z) Δz
//
// iterated to a fixed point from a uniform initial density.

#ifndef RANDRECON_STATS_DENSITY_RECONSTRUCTION_H_
#define RANDRECON_STATS_DENSITY_RECONSTRUCTION_H_

#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"
#include "stats/distribution.h"

namespace randrecon {
namespace stats {

/// A density represented by values on a uniform grid, integrating to 1.
struct GridDensity {
  /// Grid point centers, uniformly spaced.
  linalg::Vector points;
  /// Density values at the grid points (Σ density * step = 1).
  linalg::Vector density;
  /// Grid spacing.
  double step = 0.0;

  /// Linear-interpolated density at x (0 outside the grid).
  double ValueAt(double x) const;

  /// Mean of the density: Σ points[k] density[k] step.
  double Mean() const;

  /// Variance of the density.
  double Variance() const;
};

/// Options for the AS2000 iteration.
struct DensityReconstructionOptions {
  /// Number of grid cells spanning the data range.
  size_t grid_size = 200;
  /// Stop once the L1 change between iterations drops below this value.
  double convergence_threshold = 1e-4;
  /// Hard iteration cap.
  int max_iterations = 200;
  /// The grid spans [min(y) - pad, max(y) + pad] where pad =
  /// range_padding_sigmas * stddev(noise), so the support of fX is covered.
  double range_padding_sigmas = 1.0;
};

/// Reconstructs the original marginal density fX from disguised samples
/// y_i = x_i + r_i given the public noise distribution fR.
/// Fails with InvalidArgument on an empty sample or degenerate grid.
Result<GridDensity> ReconstructDensity(
    const linalg::Vector& disguised_samples,
    const ScalarDistribution& noise,
    const DensityReconstructionOptions& options = {});

}  // namespace stats
}  // namespace randrecon

#endif  // RANDRECON_STATS_DENSITY_RECONSTRUCTION_H_
