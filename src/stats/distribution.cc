#include "stats/distribution.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/string_util.h"

namespace randrecon {
namespace stats {
namespace {
constexpr double kInvSqrt2Pi = 0.3989422804014326779;  // 1/sqrt(2π)
constexpr double kInvSqrt2 = 0.7071067811865475244;    // 1/sqrt(2)
}  // namespace

double StandardNormalPdf(double z) {
  return kInvSqrt2Pi * std::exp(-0.5 * z * z);
}

double StandardNormalCdf(double z) {
  return 0.5 * std::erfc(-z * kInvSqrt2);
}

NormalDistribution::NormalDistribution(double mean, double stddev)
    : mean_(mean), stddev_(stddev) {
  RR_CHECK_GT(stddev, 0.0) << "NormalDistribution needs positive stddev";
}

double NormalDistribution::Pdf(double x) const {
  return StandardNormalPdf((x - mean_) / stddev_) / stddev_;
}

double NormalDistribution::Cdf(double x) const {
  return StandardNormalCdf((x - mean_) / stddev_);
}

// Base-class batch hook: distributions without a counter-substrate
// sampler must be routed through the scalar Sample path instead.
void ScalarDistribution::SampleSliceAt(const Philox& /*stream*/,
                                       uint64_t /*elem_begin*/,
                                       double* /*out*/, size_t /*n*/) const {
  RR_CHECK(false) << ToString()
                  << " has no batch sampler (SupportsBatchSampling is false)";
}

void NormalDistribution::SampleSliceAt(const Philox& stream,
                                       uint64_t elem_begin, double* out,
                                       size_t n) const {
  GaussianSliceAt(stream, mean_, stddev_, elem_begin, out, n);
}

double NormalDistribution::Sample(Rng* rng) const {
  return rng->Gaussian(mean_, stddev_);
}

std::string NormalDistribution::ToString() const {
  return "Normal(" + FormatDouble(mean_, 3) + ", " +
         FormatDouble(stddev_ * stddev_, 3) + ")";
}

std::unique_ptr<ScalarDistribution> NormalDistribution::Clone() const {
  return std::make_unique<NormalDistribution>(mean_, stddev_);
}

UniformDistribution::UniformDistribution(double lo, double hi)
    : lo_(lo), hi_(hi) {
  RR_CHECK_LT(lo, hi) << "UniformDistribution needs lo < hi";
}

double UniformDistribution::Pdf(double x) const {
  return (x >= lo_ && x < hi_) ? 1.0 / (hi_ - lo_) : 0.0;
}

double UniformDistribution::Cdf(double x) const {
  if (x < lo_) return 0.0;
  if (x >= hi_) return 1.0;
  return (x - lo_) / (hi_ - lo_);
}

void UniformDistribution::SampleSliceAt(const Philox& stream,
                                        uint64_t elem_begin, double* out,
                                        size_t n) const {
  UniformSliceAt(stream, lo_, hi_, elem_begin, out, n);
}

double UniformDistribution::Sample(Rng* rng) const {
  return rng->Uniform(lo_, hi_);
}

std::string UniformDistribution::ToString() const {
  return "Uniform[" + FormatDouble(lo_, 3) + ", " + FormatDouble(hi_, 3) + ")";
}

std::unique_ptr<ScalarDistribution> UniformDistribution::Clone() const {
  return std::make_unique<UniformDistribution>(lo_, hi_);
}

LaplaceDistribution::LaplaceDistribution(double mean, double scale)
    : mean_(mean), scale_(scale) {
  RR_CHECK_GT(scale, 0.0) << "LaplaceDistribution needs positive scale";
}

double LaplaceDistribution::Pdf(double x) const {
  return std::exp(-std::fabs(x - mean_) / scale_) / (2.0 * scale_);
}

double LaplaceDistribution::Cdf(double x) const {
  if (x < mean_) return 0.5 * std::exp((x - mean_) / scale_);
  return 1.0 - 0.5 * std::exp(-(x - mean_) / scale_);
}

void LaplaceDistribution::SampleSliceAt(const Philox& stream,
                                        uint64_t elem_begin, double* out,
                                        size_t n) const {
  // Inverse-CDF on a uniform u in [0, 1): x = mean - b sign(t) ln(1 - 2|t|)
  // with t = u - 1/2. The log goes through the substrate's Log01 so the
  // sequence is machine-stable like the core fills; the argument is
  // clamped away from 0 (u = 0 occurs with probability 2^-53).
  UniformSliceAt(stream, elem_begin, out, n);
  for (size_t i = 0; i < n; ++i) {
    const double t = out[i] - 0.5;
    const double arg = std::max(1.0 - 2.0 * std::fabs(t), 0x1.0p-53);
    const double pull = -scale_ * Log01(arg);
    out[i] = t < 0.0 ? mean_ - pull : mean_ + pull;
  }
}

double LaplaceDistribution::Sample(Rng* rng) const {
  // Inverse CDF on u ~ Uniform(-0.5, 0.5):
  // x = µ − b · sgn(u) · ln(1 − 2|u|).
  const double u = rng->Uniform(-0.5, 0.5);
  const double sign = u >= 0.0 ? 1.0 : -1.0;
  return mean_ - scale_ * sign * std::log(1.0 - 2.0 * std::fabs(u));
}

std::string LaplaceDistribution::ToString() const {
  return "Laplace(" + FormatDouble(mean_, 3) + ", b=" +
         FormatDouble(scale_, 3) + ")";
}

std::unique_ptr<ScalarDistribution> LaplaceDistribution::Clone() const {
  return std::make_unique<LaplaceDistribution>(mean_, scale_);
}

Result<MixtureDistribution> MixtureDistribution::Create(
    std::vector<std::unique_ptr<ScalarDistribution>> components,
    std::vector<double> weights) {
  if (components.empty() || components.size() != weights.size()) {
    return Status::InvalidArgument(
        "MixtureDistribution: component/weight count mismatch or empty");
  }
  double total = 0.0;
  for (size_t i = 0; i < components.size(); ++i) {
    if (components[i] == nullptr) {
      return Status::InvalidArgument("MixtureDistribution: null component");
    }
    if (weights[i] <= 0.0) {
      return Status::InvalidArgument(
          "MixtureDistribution: weights must be positive");
    }
    total += weights[i];
  }
  for (double& w : weights) w /= total;
  return MixtureDistribution(std::move(components), std::move(weights));
}

MixtureDistribution::MixtureDistribution(const MixtureDistribution& other)
    : weights_(other.weights_) {
  components_.reserve(other.components_.size());
  for (const auto& component : other.components_) {
    components_.push_back(component->Clone());
  }
}

double MixtureDistribution::Pdf(double x) const {
  double sum = 0.0;
  for (size_t i = 0; i < components_.size(); ++i) {
    sum += weights_[i] * components_[i]->Pdf(x);
  }
  return sum;
}

double MixtureDistribution::Cdf(double x) const {
  double sum = 0.0;
  for (size_t i = 0; i < components_.size(); ++i) {
    sum += weights_[i] * components_[i]->Cdf(x);
  }
  return sum;
}

double MixtureDistribution::Sample(Rng* rng) const {
  double pick = rng->Uniform(0.0, 1.0);
  for (size_t i = 0; i < components_.size(); ++i) {
    pick -= weights_[i];
    if (pick <= 0.0) return components_[i]->Sample(rng);
  }
  return components_.back()->Sample(rng);  // Floating-point slack.
}

double MixtureDistribution::Mean() const {
  double mean = 0.0;
  for (size_t i = 0; i < components_.size(); ++i) {
    mean += weights_[i] * components_[i]->Mean();
  }
  return mean;
}

double MixtureDistribution::Variance() const {
  // Law of total variance: E[Var] + Var[E].
  const double mean = Mean();
  double total = 0.0;
  for (size_t i = 0; i < components_.size(); ++i) {
    const double component_mean = components_[i]->Mean();
    total += weights_[i] * (components_[i]->Variance() +
                            (component_mean - mean) * (component_mean - mean));
  }
  return total;
}

std::string MixtureDistribution::ToString() const {
  std::string out = "Mixture(";
  for (size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) out += " + ";
    out += FormatDouble(weights_[i], 2) + "*" + components_[i]->ToString();
  }
  return out + ")";
}

std::unique_ptr<ScalarDistribution> MixtureDistribution::Clone() const {
  return std::make_unique<MixtureDistribution>(*this);
}

}  // namespace stats
}  // namespace randrecon
