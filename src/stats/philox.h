// Counter-based random substrate: Philox4x32-10 (Salmon et al.,
// "Parallel Random Numbers: As Easy as 1, 2, 3", SC'11 — the Random123 /
// cuRAND configuration) plus batch sampling kernels.
//
// Why a second generator next to stats::Rng? The scalar mt19937 path
// serves one value per call from a 2.5KB mutable state — fine for tests
// and small draws, but at n >= 1e6 records sample generation dominates
// the attack pipeline. A counter-based generator has no sequential
// state: output word w is a pure function of (seed, stream, w), which
// buys three things the bulk paths need:
//
//   * O(1) seeking — any position in any stream can be generated without
//     producing the values before it;
//   * cheap derived substreams — Substream(id) keys an independent
//     stream, so chunked/parallel generation can hand block b its own
//     stream and remain bitwise reproducible for ANY chunk/thread split;
//   * batch fills — uniforms, Bernoulli flips and a vectorized
//     Box–Muller Gaussian transform run over SIMD lanes, with a scalar
//     reference implementation that is BITWISE IDENTICAL (the SIMD and
//     scalar code perform the same correctly-rounded operations in the
//     same order; dispatch is by runtime CPU detection, so one build
//     produces one stream on every x86-64 machine).
//
// Determinism contract (see README "Random substrate"):
//   * raw words, uniforms, Bernoulli bits and Gaussians are bitwise
//     stable across machines, SIMD levels, thread counts and chunk
//     splits for a fixed library version;
//   * derived transforms outside this file (e.g. Laplace inversion, MVN
//     factor multiplication) are bitwise stable for a fixed build.
//
// Choice of 4x32 over 4x64: the 32x32->64 products of Philox4x32 are
// single instructions on every SIMD tier (mul_epu32), while 64x64->128
// products vectorize poorly; measured on the build host the 4x32 kernel
// generates raw words ~2x faster. Ten rounds is the Random123 default
// (BigCrush-clean with headroom).

#ifndef RANDRECON_STATS_PHILOX_H_
#define RANDRECON_STATS_PHILOX_H_

#include <cstddef>
#include <cstdint>

namespace randrecon {
namespace stats {

/// Splittable counter-based PRNG stream with batch sampling kernels.
///
/// A Philox instance is a (seed, stream, cursor) triple. The canonical
/// 32-bit word sequence of (seed, stream) is fixed (see philox.cc); the
/// cursor is a position in that sequence. Consumption per element:
///   uniform double   — 2 words (53-bit mantissa)
///   Gaussian double  — 1 word (32-bit radius uniform or 2+30-bit angle;
///                      Box–Muller pairs, so fills round up to even)
///   Bernoulli draw   — 1 word (32-bit threshold compare)
class Philox {
 public:
  /// 32-bit output words per Philox block.
  static constexpr size_t kWordsPerBlock = 4;
  /// Blocks interleaved per SIMD group; the canonical word order is
  /// lane-major over groups of this many blocks.
  static constexpr size_t kBlocksPerGroup = 16;
  /// Words per group (= kWordsPerBlock * kBlocksPerGroup).
  static constexpr size_t kWordsPerGroup = 64;

  explicit Philox(uint64_t seed, uint64_t stream = 0)
      : seed_(seed), stream_(stream) {}

  uint64_t seed() const { return seed_; }
  uint64_t stream() const { return stream_; }

  /// Cursor position, in 32-bit words of the canonical sequence.
  uint64_t position() const { return pos_; }

  /// O(1) absolute repositioning (no values are generated).
  void Seek(uint64_t word_index) { pos_ = word_index; }

  /// An independent derived stream (cursor at 0). The id is mixed
  /// through a SplitMix64 finalizer, so nested derivation is fine;
  /// the mapping is fixed forever but not cryptographic.
  Philox Substream(uint64_t substream_id) const;

  /// Next canonical word / two words little-endian.
  uint32_t Next32();
  uint64_t Next64();

  /// Uniform [0, 1) with 53-bit resolution (consumes 2 words; aligns the
  /// cursor up to an even word first).
  double NextUniform();

  /// Batch fills from the current cursor; each advances the cursor by
  /// the number of words consumed (after any alignment documented above).
  /// SIMD inside, bitwise equal to the scalar reference.
  void FillUniform(double* out, size_t n);  // [0, 1)
  void FillUniform(double lo, double hi, double* out, size_t n);
  void FillGaussian(double* out, size_t n);  // N(0, 1)
  void FillGaussian(double mean, double stddev, double* out, size_t n);
  void FillBernoulli(double p, uint8_t* out, size_t n);  // 1 w.p. p

 private:
  uint64_t seed_ = 0;
  uint64_t stream_ = 0;
  uint64_t pos_ = 0;
  // Group cache for the scalar Next32 path.
  uint32_t group_words_[kWordsPerGroup];
  uint64_t cached_group_ = ~uint64_t{0};
};

// ---------------------------------------------------------------------------
// Stateless random access. Element e of a canonical per-type sequence is
// a pure function of (stream.seed(), stream.stream(), e) — the cursor of
// `stream` is ignored. These are what the fixed-block parallel record
// generators build on: any [begin, begin+n) slice of any stream can be
// produced independently, and assembling slices in any order yields the
// byte-identical sequence.
// ---------------------------------------------------------------------------

/// out[i] = uniform element (elem_begin + i): words (2e, 2e+1), [0, 1).
void UniformSliceAt(const Philox& stream, uint64_t elem_begin, double* out,
                    size_t n);

/// Affine variant: lo + u * (hi - lo).
void UniformSliceAt(const Philox& stream, double lo, double hi,
                    uint64_t elem_begin, double* out, size_t n);

/// out[i] = standard-normal element (elem_begin + i). Elements 2p and
/// 2p+1 form Box–Muller pair p over words (2p, 2p+1).
void GaussianSliceAt(const Philox& stream, uint64_t elem_begin, double* out,
                     size_t n);

/// Affine variant: mean + stddev * z.
void GaussianSliceAt(const Philox& stream, double mean, double stddev,
                     uint64_t elem_begin, double* out, size_t n);

/// out[i] = 1 with probability p: word e scaled to [0,1) compared to p.
void BernoulliSliceAt(const Philox& stream, double p, uint64_t elem_begin,
                      uint8_t* out, size_t n);

/// The substrate's polynomial ln(x) for x in (0, 1], exactly the function
/// the Gaussian kernel applies to its radius uniform. Bitwise stable
/// across machines (unlike libm log); exposed for derived samplers
/// (e.g. Laplace inversion). Accuracy ~1e-12 relative.
double Log01(double x);

// ---------------------------------------------------------------------------
// Internals exposed for tests and benchmarks.
// ---------------------------------------------------------------------------
namespace philox_internal {

/// One Philox4x32-10 block: counter = (lo32(block_index), hi32(block_index),
/// lo32(stream), hi32(stream)), key = (lo32(seed), hi32(seed)). This is
/// the reference the known-answer tests pin.
void ReferenceBlock(uint64_t block_index, uint64_t stream, uint64_t seed,
                    uint32_t out[4]);

/// Fills out[0..n) with canonical words [word_begin, word_begin + n).
/// Scalar engine; the dispatched variant picks the widest SIMD engine the
/// CPU supports (bitwise identical output).
void FillRawScalar(uint64_t seed, uint64_t stream, uint64_t word_begin,
                   uint32_t* out, size_t n);
void FillRawDispatched(uint64_t seed, uint64_t stream, uint64_t word_begin,
                       uint32_t* out, size_t n);

/// Box–Muller over staged raw words: pair p reads words[2p] (radius
/// uniform) and words[2p+1] (quadrant + angle) and writes out[2p],
/// out[2p+1]. Scalar reference and runtime-dispatched SIMD variant are
/// bitwise identical.
void BoxMullerScalar(const uint32_t* words, double* out, size_t pairs);
void BoxMullerDispatched(const uint32_t* words, double* out, size_t pairs);

/// Name of the engine FillRawDispatched/BoxMullerDispatched resolve to on
/// this machine ("avx512", "avx2" or "scalar"). Set RANDRECON_NO_SIMD=1
/// to force "scalar".
const char* ActiveEngine();

}  // namespace philox_internal

}  // namespace stats
}  // namespace randrecon

#endif  // RANDRECON_STATS_PHILOX_H_
