#include "stats/streaming_moments.h"

#include <algorithm>

#include "common/check.h"
#include "linalg/kernels.h"

namespace randrecon {
namespace stats {

using linalg::kernels::kGramChunkRows;

StreamingMoments::StreamingMoments(size_t num_attributes,
                                   const ParallelOptions& options)
    : num_attributes_(num_attributes),
      options_(options),
      sums_(num_attributes, 0.0) {
  RR_CHECK_GT(num_attributes, 0u) << "StreamingMoments: zero attributes";
}

void StreamingMoments::AccumulateMeans(const double* rows, size_t num_rows) {
  RR_CHECK(phase_ == Phase::kMeans)
      << "StreamingMoments: AccumulateMeans after FinalizeMeans";
  // Strictly record-ordered accumulation: the exact summation order of
  // stats::ColumnMeans, independent of how the stream is chunked.
  const size_t m = num_attributes_;
  for (size_t i = 0; i < num_rows; ++i) {
    const double* row = rows + i * m;
    for (size_t j = 0; j < m; ++j) sums_[j] += row[j];
  }
  mean_count_ += num_rows;
}

void StreamingMoments::AccumulateMeans(const linalg::Matrix& chunk,
                                       size_t num_rows) {
  RR_CHECK_EQ(chunk.cols(), num_attributes_) << "chunk width mismatch";
  RR_CHECK_LE(num_rows, chunk.rows()) << "more rows than the chunk holds";
  AccumulateMeans(chunk.data(), num_rows);
}

void StreamingMoments::AccumulateMeansColumns(const double* const* columns,
                                              size_t num_rows) {
  RR_CHECK(phase_ == Phase::kMeans)
      << "StreamingMoments: AccumulateMeansColumns after FinalizeMeans";
  // sums_[j] folds only column j's values, in record order — exactly the
  // additions the row-major loop performs on it, so the two forms are
  // bitwise interchangeable. Iterating per column turns the strided
  // row-major reads into contiguous ones (the fast path for mmap'd
  // BlockColumn slices).
  for (size_t j = 0; j < num_attributes_; ++j) {
    const double* column = columns[j];
    double sum = sums_[j];
    for (size_t i = 0; i < num_rows; ++i) sum += column[i];
    sums_[j] = sum;
  }
  mean_count_ += num_rows;
}

void StreamingMoments::FinalizeMeans() {
  RR_CHECK(phase_ == Phase::kMeans) << "StreamingMoments: double FinalizeMeans";
  RR_CHECK_GT(mean_count_, 0u) << "StreamingMoments: no records accumulated";
  means_ = sums_;
  for (double& value : means_) value /= static_cast<double>(mean_count_);
  phase_ = Phase::kScatter;
}

const linalg::Vector& StreamingMoments::means() const {
  RR_CHECK(phase_ != Phase::kMeans)
      << "StreamingMoments: means() before FinalizeMeans";
  return means_;
}

void StreamingMoments::AccumulateScatterSpans(
    size_t num_rows,
    const std::function<void(size_t, size_t, double*)>& stage) {
  RR_CHECK(phase_ == Phase::kScatter)
      << "StreamingMoments: AccumulateScatter outside the scatter phase";
  const size_t m = num_attributes_;
  if (staging_.empty() && num_rows > 0) {
    staging_.resize(kGramChunkRows * m);
    partial_.resize(m * m);
    scatter_.assign(m * m, 0.0);
  }
  size_t consumed = 0;
  while (consumed < num_rows) {
    const size_t span = std::min(num_rows - consumed,
                                 kGramChunkRows - staging_rows_);
    stage(consumed, span, staging_.data() + staging_rows_ * m);
    staging_rows_ += span;
    consumed += span;
    // Flushes happen exactly every kGramChunkRows records, so block
    // boundaries sit at global record indices that are multiples of the
    // constant — invariant to the caller's chunk sizes AND to which
    // entry point (row-major or columnar) staged each span.
    if (staging_rows_ == kGramChunkRows) FlushStagingBlock();
  }
  scatter_count_ += num_rows;
}

void StreamingMoments::AccumulateScatter(const double* rows, size_t num_rows) {
  const size_t m = num_attributes_;
  AccumulateScatterSpans(
      num_rows, [&](size_t consumed, size_t span, double* staged) {
        const double* source = rows + consumed * m;
        for (size_t i = 0; i < span; ++i) {
          for (size_t j = 0; j < m; ++j) {
            // The same centering op CenterColumns applies element-wise.
            staged[i * m + j] = source[i * m + j] - means_[j];
          }
        }
      });
}

void StreamingMoments::AccumulateScatter(const linalg::Matrix& chunk,
                                         size_t num_rows) {
  RR_CHECK_EQ(chunk.cols(), num_attributes_) << "chunk width mismatch";
  RR_CHECK_LE(num_rows, chunk.rows()) << "more rows than the chunk holds";
  AccumulateScatter(chunk.data(), num_rows);
}

void StreamingMoments::AccumulateScatterColumns(const double* const* columns,
                                                size_t num_rows) {
  // Center straight from the contiguous column slices into the staging
  // block: the same value lands at the same staging offset as in the
  // row-major form, so the bits match.
  const size_t m = num_attributes_;
  AccumulateScatterSpans(
      num_rows, [&](size_t consumed, size_t span, double* staged) {
        for (size_t j = 0; j < m; ++j) {
          const double* column = columns[j] + consumed;
          const double mean = means_[j];
          double* out = staged + j;
          for (size_t i = 0; i < span; ++i) out[i * m] = column[i] - mean;
        }
      });
}

void StreamingMoments::FlushStagingBlock() {
  const size_t m = num_attributes_;
  linalg::kernels::GramAtAChunk(staging_.data(), staging_rows_, m,
                                partial_.data(), options_);
  // Fold the block partial in block order — the same ordered merge
  // kernels::GramAtA performs, so the bits match the in-memory path.
  for (size_t p = 0; p < m; ++p) {
    double* scatter_row = scatter_.data() + p * m;
    const double* partial_row = partial_.data() + p * m;
    for (size_t q = p; q < m; ++q) scatter_row[q] += partial_row[q];
  }
  staging_rows_ = 0;
}

linalg::Matrix StreamingMoments::FinalizeCovariance(int ddof) {
  RR_CHECK(phase_ == Phase::kScatter)
      << "StreamingMoments: FinalizeCovariance outside the scatter phase";
  RR_CHECK(ddof == 0 || ddof == 1) << "ddof must be 0 or 1";
  RR_CHECK_EQ(scatter_count_, mean_count_)
      << "StreamingMoments: scatter pass saw a different record count";
  RR_CHECK_GT(mean_count_, static_cast<size_t>(ddof)) << "not enough records";
  if (staging_rows_ > 0) FlushStagingBlock();
  phase_ = Phase::kDone;

  const size_t m = num_attributes_;
  linalg::Matrix covariance(m, m);
  double* c = covariance.data();
  std::copy(scatter_.begin(), scatter_.end(), c);
  // Mirror, then divide — the order kernels::GramMatrix uses.
  for (size_t p = 0; p < m; ++p) {
    for (size_t q = p + 1; q < m; ++q) c[q * m + p] = c[p * m + q];
  }
  const double denom = static_cast<double>(mean_count_ - ddof);
  for (size_t i = 0; i < covariance.size(); ++i) c[i] /= denom;
  return covariance;
}

}  // namespace stats
}  // namespace randrecon
