#include "stats/moments.h"

#include <cmath>

#include "common/check.h"
#include "linalg/kernels.h"
#include "linalg/matrix_util.h"

namespace randrecon {
namespace stats {

linalg::Vector ColumnMeans(const linalg::Matrix& data) {
  const size_t n = data.rows();
  const size_t m = data.cols();
  linalg::Vector means(m, 0.0);
  if (n == 0) return means;
  for (size_t i = 0; i < n; ++i) {
    const double* row = data.row_data(i);
    for (size_t j = 0; j < m; ++j) means[j] += row[j];
  }
  for (size_t j = 0; j < m; ++j) means[j] /= static_cast<double>(n);
  return means;
}

linalg::Vector ColumnVariances(const linalg::Matrix& data) {
  const size_t n = data.rows();
  const size_t m = data.cols();
  linalg::Vector vars(m, 0.0);
  if (n == 0) return vars;
  const linalg::Vector means = ColumnMeans(data);
  for (size_t i = 0; i < n; ++i) {
    const double* row = data.row_data(i);
    for (size_t j = 0; j < m; ++j) {
      const double d = row[j] - means[j];
      vars[j] += d * d;
    }
  }
  for (size_t j = 0; j < m; ++j) vars[j] /= static_cast<double>(n);
  return vars;
}

linalg::Matrix CenterColumns(const linalg::Matrix& data,
                             linalg::Vector* means_out) {
  const linalg::Vector means = ColumnMeans(data);
  linalg::Matrix centered = data;
  for (size_t i = 0; i < data.rows(); ++i) {
    double* row = centered.row_data(i);
    for (size_t j = 0; j < data.cols(); ++j) row[j] -= means[j];
  }
  if (means_out != nullptr) *means_out = means;
  return centered;
}

linalg::Matrix SampleCovariance(const linalg::Matrix& data, int ddof) {
  RR_CHECK(ddof == 0 || ddof == 1) << "ddof must be 0 or 1";
  const size_t n = data.rows();
  RR_CHECK_GT(n, static_cast<size_t>(ddof)) << "not enough records";
  // Cov = centeredᵀ centered / (n - ddof), in one blocked syrk-style pass
  // over the centered records (linalg/kernels.h).
  const linalg::Matrix centered = CenterColumns(data);
  return linalg::kernels::GramMatrix(centered,
                                     static_cast<double>(n - ddof));
}

linalg::Matrix SampleCorrelation(const linalg::Matrix& data) {
  return linalg::CovarianceToCorrelation(SampleCovariance(data));
}

double MeanSquareError(const linalg::Matrix& a, const linalg::Matrix& b) {
  RR_CHECK(a.rows() == b.rows() && a.cols() == b.cols()) << "shape mismatch";
  RR_CHECK_GT(a.size(), 0u);
  double sum = 0.0;
  const double* pa = a.data();
  const double* pb = b.data();
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = pa[i] - pb[i];
    sum += d * d;
  }
  return sum / static_cast<double>(a.size());
}

double RootMeanSquareError(const linalg::Matrix& a, const linalg::Matrix& b) {
  return std::sqrt(MeanSquareError(a, b));
}

linalg::Vector PerAttributeRmse(const linalg::Matrix& a,
                                const linalg::Matrix& b) {
  RR_CHECK(a.rows() == b.rows() && a.cols() == b.cols()) << "shape mismatch";
  RR_CHECK_GT(a.rows(), 0u);
  linalg::Vector out(a.cols(), 0.0);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      const double d = a(i, j) - b(i, j);
      out[j] += d * d;
    }
  }
  for (size_t j = 0; j < a.cols(); ++j) {
    out[j] = std::sqrt(out[j] / static_cast<double>(a.rows()));
  }
  return out;
}

}  // namespace stats
}  // namespace randrecon
