// SF — Spectral Filtering (Kargupta, Datta, Wang & Sivakumar, ICDM 2003).
//
// The prior attack the paper compares against (its "SF Scheme" curves).
// SF also projects the disguised data onto a signal subspace, but it
// separates signal from noise eigenvalues using random-matrix theory
// instead of the data's own eigengap: for an n x m matrix of i.i.d. noise
// with variance σ², the eigenvalues of the sample covariance concentrate
// in the Marchenko–Pastur band
//
//   [ σ²(1 − √(m/n))² ,  σ²(1 + √(m/n))² ].
//
// Eigenvalues of Cov(Y) above the upper bound are signal-dominated; SF
// keeps those eigenvectors and reconstructs X̂ = Ȳ Q̂ Q̂ᵀ + µ̂.
//
// Notes mirrored from the paper's observations:
//  * When non-principal eigenvalues are not small, the bound misclassifies
//    directions and SF trails PCA-DR (Experiment 1/3).
//  * The bound assumes *independent* noise; under §8's correlated noise it
//    is no longer calibrated, which is exactly the anomaly Figure 4 shows.
//    For a correlated NoiseModel the bound is evaluated with the average
//    noise variance, the natural attacker fallback.

#ifndef RANDRECON_CORE_SPECTRAL_FILTERING_H_
#define RANDRECON_CORE_SPECTRAL_FILTERING_H_

#include "core/reconstructor.h"

namespace randrecon {
namespace core {

/// Configuration for SpectralFilteringReconstructor.
struct SfOptions {
  /// Multiplier on the Marchenko–Pastur upper bound; 1.0 is the published
  /// cutoff, values > 1 are more conservative (keep fewer components).
  double bound_scale = 1.0;
  /// Keep at least this many components even if the bound rejects all
  /// (the attack must output *something*; 1 matches the reference
  /// implementation's behaviour on tiny signals).
  size_t min_components = 1;
};

/// SF's component-count rule on an already-computed Cov(Y) spectrum
/// (descending): counts the eigenvalues above the (scaled)
/// Marchenko–Pastur bound, clamped to [min(min_components, m), m]. For a
/// correlated NoiseModel the bound is evaluated with the average
/// per-attribute noise variance, the natural attacker fallback. Exposed
/// so the out-of-core pipeline shares the exact selection the in-memory
/// attack uses.
size_t SelectSfComponents(const linalg::Vector& disguised_eigenvalues,
                          const perturb::NoiseModel& noise,
                          size_t num_records, const SfOptions& options = {});

/// Kargupta et al.'s spectral-filtering attack.
class SpectralFilteringReconstructor final : public Reconstructor {
 public:
  SpectralFilteringReconstructor() = default;
  explicit SpectralFilteringReconstructor(SfOptions options)
      : options_(options) {}

  std::string name() const override { return "SF"; }

  Result<linalg::Matrix> Reconstruct(
      const linalg::Matrix& disguised,
      const perturb::NoiseModel& noise) const override;

  /// The Marchenko–Pastur noise-eigenvalue upper bound σ²(1 + √(m/n))²
  /// (times bound_scale), exposed for tests.
  static double NoiseEigenvalueUpperBound(double noise_variance,
                                          size_t num_records,
                                          size_t num_attributes);

  const SfOptions& options() const { return options_; }

 private:
  SfOptions options_;
};

}  // namespace core
}  // namespace randrecon

#endif  // RANDRECON_CORE_SPECTRAL_FILTERING_H_
