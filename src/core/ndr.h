// NDR — Noise-Distribution-based Reconstruction (§4.1).
//
// The naive baseline: the adversary guesses x̂ = y, i.e. always guesses
// the noise to be its mean (zero). Its MSE is exactly the noise variance,
// which makes it the yardstick against which every other attack's "noise
// filtering" is measured.

#ifndef RANDRECON_CORE_NDR_H_
#define RANDRECON_CORE_NDR_H_

#include "core/reconstructor.h"

namespace randrecon {
namespace core {

/// §4.1's guess-the-disguised-value baseline.
class NdrReconstructor final : public Reconstructor {
 public:
  std::string name() const override { return "NDR"; }

  Result<linalg::Matrix> Reconstruct(
      const linalg::Matrix& disguised,
      const perturb::NoiseModel& noise) const override;
};

}  // namespace core
}  // namespace randrecon

#endif  // RANDRECON_CORE_NDR_H_
