#include "core/be_dr.h"

#include "linalg/cholesky.h"
#include "linalg/lu.h"
#include "linalg/matrix_util.h"
#include "linalg/vector_ops.h"

namespace randrecon {
namespace core {

Result<linalg::Matrix> BayesEstimateReconstructor::Reconstruct(
    const linalg::Matrix& disguised, const perturb::NoiseModel& noise) const {
  RR_RETURN_NOT_OK(ValidateShapes(disguised, noise));

  // Moments of the hidden original data: oracle or Theorem 5.1/8.2.
  linalg::Matrix sigma_x;
  linalg::Vector mu_x;
  if (options_.oracle_covariance.has_value()) {
    if (options_.oracle_covariance->rows() != disguised.cols()) {
      return Status::InvalidArgument("BE-DR: oracle covariance dimension mismatch");
    }
    sigma_x = *options_.oracle_covariance;
  }
  if (options_.oracle_mean.has_value()) {
    if (options_.oracle_mean->size() != disguised.cols()) {
      return Status::InvalidArgument("BE-DR: oracle mean dimension mismatch");
    }
    mu_x = *options_.oracle_mean;
  }
  if (sigma_x.empty() || mu_x.empty()) {
    RR_ASSIGN_OR_RETURN(
        OriginalMoments moments,
        EstimateOriginalMoments(disguised, noise, options_.moment_options));
    if (sigma_x.empty()) sigma_x = std::move(moments.covariance);
    if (mu_x.empty()) mu_x = std::move(moments.mean);
  }

  if (options_.use_literal_formula) {
    return ReconstructLiteral(disguised, sigma_x, mu_x, noise.covariance());
  }
  return ReconstructGainForm(disguised, sigma_x, mu_x, noise.covariance());
}

Result<linalg::Matrix> BayesEstimateReconstructor::ReconstructGainForm(
    const linalg::Matrix& disguised, const linalg::Matrix& sigma_x,
    const linalg::Vector& mu_x, const linalg::Matrix& sigma_r) const {
  // Gain K = Σx (Σx + Σr)⁻¹, computed as solving (Σx + Σr) Kᵀ = Σx
  // (all matrices symmetric). Σx + Σr is PD because Σr is.
  const linalg::Matrix sum = sigma_x + sigma_r;
  RR_ASSIGN_OR_RETURN(linalg::CholeskyFactorization chol,
                      linalg::CholeskyFactorization::ComputeWithJitter(sum));
  const linalg::Matrix gain_t = chol.Solve(sigma_x);  // = Kᵀ.

  // x̂ = µx + K (y − µx), vectorized over records: rows of the output are
  // µxᵀ + (y − µx)ᵀ Kᵀ.
  const size_t n = disguised.rows();
  const size_t m = disguised.cols();
  linalg::Matrix centered = disguised;
  for (size_t i = 0; i < n; ++i) {
    double* row = centered.row_data(i);
    for (size_t j = 0; j < m; ++j) row[j] -= mu_x[j];
  }
  linalg::Matrix reconstructed = centered * gain_t;
  for (size_t i = 0; i < n; ++i) {
    double* row = reconstructed.row_data(i);
    for (size_t j = 0; j < m; ++j) row[j] += mu_x[j];
  }
  return reconstructed;
}

Result<linalg::Matrix> BayesEstimateReconstructor::ReconstructLiteral(
    const linalg::Matrix& disguised, const linalg::Matrix& sigma_x,
    const linalg::Vector& mu_x, const linalg::Matrix& sigma_r) const {
  // Verbatim Theorem 8.1 (Eq. 11 is the special case Σr = σ²I, µr = 0):
  //   x̂ = (Σx⁻¹ + Σr⁻¹)⁻¹ (Σx⁻¹ µx + Σr⁻¹ y).
  Result<linalg::Matrix> sigma_x_inv = linalg::InvertMatrix(sigma_x);
  if (!sigma_x_inv.ok()) {
    return Status::NumericalError(
        "BE-DR (literal): estimated data covariance is singular; use the "
        "default gain form or set moment_options.eigen_floor > 0 (" +
        sigma_x_inv.status().message() + ")");
  }
  RR_ASSIGN_OR_RETURN(linalg::Matrix sigma_r_inv, linalg::InvertMatrix(sigma_r));
  RR_ASSIGN_OR_RETURN(
      linalg::Matrix posterior_cov,
      linalg::InvertMatrix(sigma_x_inv.value() + sigma_r_inv));

  const linalg::Vector prior_term = sigma_x_inv.value() * mu_x;
  const size_t n = disguised.rows();
  linalg::Matrix reconstructed(n, disguised.cols());
  for (size_t i = 0; i < n; ++i) {
    const linalg::Vector y = disguised.Row(i);
    const linalg::Vector rhs = linalg::Add(prior_term, sigma_r_inv * y);
    reconstructed.SetRow(i, posterior_cov * rhs);
  }
  return reconstructed;
}

}  // namespace core
}  // namespace randrecon
