#include "core/pca_dr.h"

#include <algorithm>
#include <cmath>

#include "linalg/eigen.h"
#include "linalg/kernels.h"
#include "linalg/matrix_util.h"
#include "stats/moments.h"

namespace randrecon {
namespace core {

size_t SelectNumComponents(const linalg::Vector& eigenvalues,
                           const PcaOptions& options) {
  const size_t m = eigenvalues.size();
  RR_CHECK_GT(m, 0u);
  switch (options.selection) {
    case PcSelection::kFixedCount:
      return std::clamp<size_t>(options.fixed_count, 1, m);
    case PcSelection::kVarianceFraction: {
      RR_CHECK(options.variance_fraction > 0.0 &&
               options.variance_fraction <= 1.0)
          << "variance_fraction out of (0,1]";
      double total = 0.0;
      for (double lambda : eigenvalues) total += std::max(lambda, 0.0);
      if (total <= 0.0) return 1;
      double running = 0.0;
      for (size_t p = 0; p < m; ++p) {
        running += std::max(eigenvalues[p], 0.0);
        if (running >= options.variance_fraction * total) return p + 1;
      }
      return m;
    }
    case PcSelection::kLargestGap: {
      if (m == 1) return 1;
      // p maximizing λ_p − λ_{p+1} (1-indexed): the split between
      // "dominant" and "non-dominant" eigenvalues.
      size_t best_p = 1;
      double best_gap = eigenvalues[0] - eigenvalues[1];
      for (size_t i = 1; i + 1 < m; ++i) {
        const double gap = eigenvalues[i] - eigenvalues[i + 1];
        if (gap > best_gap) {
          best_gap = gap;
          best_p = i + 1;
        }
      }
      // Dominance check: a flat spectrum (uncorrelated data) has no
      // principal/non-principal split; keep everything.
      const double before = eigenvalues[best_p - 1];
      const double after = eigenvalues[best_p];
      if (before <= 0.0 || after > options.gap_dominance_ratio * before) {
        return m;
      }
      return best_p;
    }
  }
  return 1;  // Unreachable; keeps GCC's -Wreturn-type happy.
}

Result<linalg::Matrix> PcaReconstructor::Reconstruct(
    const linalg::Matrix& disguised, const perturb::NoiseModel& noise) const {
  return ReconstructWithDiagnostics(disguised, noise, nullptr);
}

Result<linalg::Matrix> PcaReconstructor::ReconstructWithDiagnostics(
    const linalg::Matrix& disguised, const perturb::NoiseModel& noise,
    PcaDiagnostics* diagnostics) const {
  RR_RETURN_NOT_OK(ValidateShapes(disguised, noise));

  // Step 1: the original covariance — estimated per Theorem 5.1/8.2, or
  // supplied by the §5.3 oracle mode.
  linalg::Matrix covariance;
  if (options_.oracle_covariance.has_value()) {
    if (options_.oracle_covariance->rows() != disguised.cols()) {
      return Status::InvalidArgument(
          "PCA-DR: oracle covariance dimension mismatch");
    }
    covariance = *options_.oracle_covariance;
  } else {
    RR_ASSIGN_OR_RETURN(
        OriginalMoments moments,
        EstimateOriginalMoments(disguised, noise, options_.moment_options));
    covariance = std::move(moments.covariance);
  }

  // Step 2: eigendecomposition of the estimated original covariance.
  RR_ASSIGN_OR_RETURN(linalg::EigenDecomposition eig,
                      linalg::SymmetricEigen(covariance));

  // Step 3: pick p from the *original* eigenvalues — they encode the data
  // correlation the attack exploits (§5.2.2).
  const size_t p = SelectNumComponents(eig.eigenvalues, options_);

  if (diagnostics != nullptr) {
    diagnostics->num_components = p;
    diagnostics->eigenvalues = eig.eigenvalues;
    double total = 0.0;
    double kept = 0.0;
    for (size_t i = 0; i < eig.eigenvalues.size(); ++i) {
      const double lambda = std::max(eig.eigenvalues[i], 0.0);
      total += lambda;
      if (i < p) kept += lambda;
    }
    diagnostics->retained_variance_fraction = total > 0.0 ? kept / total : 0.0;
  }

  // Step 4: X̂ = Ȳ Q̂ Q̂ᵀ + µ̂. PCA requires zero-mean data (§5.1.1), so
  // center on the disguised means (= original means, noise is zero-mean)
  // and add them back afterwards.
  linalg::Vector means;
  linalg::Matrix centered = stats::CenterColumns(disguised, &means);
  const linalg::Matrix q_hat = eig.eigenvectors.LeftColumns(p);
  linalg::Matrix reconstructed =
      linalg::kernels::ProjectOntoBasis(centered, q_hat);
  for (size_t i = 0; i < reconstructed.rows(); ++i) {
    double* row = reconstructed.row_data(i);
    for (size_t j = 0; j < reconstructed.cols(); ++j) row[j] += means[j];
  }
  return reconstructed;
}

}  // namespace core
}  // namespace randrecon
