#include "core/spectral_filtering.h"

#include <algorithm>
#include <cmath>

#include "linalg/eigen.h"
#include "linalg/kernels.h"
#include "stats/moments.h"

namespace randrecon {
namespace core {

double SpectralFilteringReconstructor::NoiseEigenvalueUpperBound(
    double noise_variance, size_t num_records, size_t num_attributes) {
  RR_CHECK_GT(num_records, 0u);
  const double ratio = std::sqrt(static_cast<double>(num_attributes) /
                                 static_cast<double>(num_records));
  const double root = 1.0 + ratio;
  return noise_variance * root * root;
}

size_t SelectSfComponents(const linalg::Vector& disguised_eigenvalues,
                          const perturb::NoiseModel& noise,
                          size_t num_records, const SfOptions& options) {
  const size_t m = disguised_eigenvalues.size();
  RR_CHECK_EQ(m, noise.num_attributes()) << "SF: spectrum/noise mismatch";

  // The published bound is for i.i.d. noise of variance σ². If the noise
  // is correlated the attacker's best drop-in is the average per-attribute
  // variance (the paper observes SF behaving anomalously there — §8.2).
  double noise_variance = 0.0;
  for (size_t j = 0; j < m; ++j) noise_variance += noise.Variance(j);
  noise_variance /= static_cast<double>(m);

  const double upper_bound =
      options.bound_scale *
      SpectralFilteringReconstructor::NoiseEigenvalueUpperBound(
          noise_variance, num_records, m);

  size_t p = 0;
  while (p < m && disguised_eigenvalues[p] > upper_bound) ++p;
  return std::clamp<size_t>(p, std::min<size_t>(options.min_components, m), m);
}

Result<linalg::Matrix> SpectralFilteringReconstructor::Reconstruct(
    const linalg::Matrix& disguised, const perturb::NoiseModel& noise) const {
  RR_RETURN_NOT_OK(ValidateShapes(disguised, noise));
  const size_t n = disguised.rows();
  const size_t m = disguised.cols();

  // SF works on the covariance of the *perturbed* data directly — unlike
  // PCA-DR it does not subtract the noise first; the random-matrix bound
  // does the separation.
  const linalg::Matrix cov_y = stats::SampleCovariance(disguised);
  RR_ASSIGN_OR_RETURN(linalg::EigenDecomposition eig,
                      linalg::SymmetricEigen(cov_y));

  const size_t p = SelectSfComponents(eig.eigenvalues, noise, n, options_);

  linalg::Vector means;
  linalg::Matrix centered = stats::CenterColumns(disguised, &means);
  const linalg::Matrix q_hat = eig.eigenvectors.LeftColumns(p);
  linalg::Matrix reconstructed =
      linalg::kernels::ProjectOntoBasis(centered, q_hat);
  for (size_t i = 0; i < reconstructed.rows(); ++i) {
    double* row = reconstructed.row_data(i);
    for (size_t j = 0; j < m; ++j) row[j] += means[j];
  }
  return reconstructed;
}

}  // namespace core
}  // namespace randrecon
