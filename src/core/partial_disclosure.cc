#include "core/partial_disclosure.h"

#include <algorithm>
#include <unordered_set>

#include "core/reconstructor.h"
#include "linalg/cholesky.h"
#include "linalg/vector_ops.h"

namespace randrecon {
namespace core {
namespace {

/// Extracts the sub-matrix cov[rows, cols] for index lists.
linalg::Matrix SubMatrix(const linalg::Matrix& cov,
                         const std::vector<size_t>& rows,
                         const std::vector<size_t>& cols) {
  linalg::Matrix out(rows.size(), cols.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t j = 0; j < cols.size(); ++j) {
      out(i, j) = cov(rows[i], cols[j]);
    }
  }
  return out;
}

}  // namespace

Result<linalg::Matrix> PartialDisclosureReconstructor::Reconstruct(
    const linalg::Matrix& disguised, const perturb::NoiseModel& noise,
    const linalg::Matrix& known_values) const {
  RR_RETURN_NOT_OK(ValidateShapes(disguised, noise));
  const size_t m = disguised.cols();
  const size_t n = disguised.rows();

  // Validate the knowledge spec.
  std::unordered_set<size_t> seen;
  for (size_t index : spec_.known_attributes) {
    if (index >= m) {
      return Status::InvalidArgument(
          "PartialDisclosure: known attribute index " + std::to_string(index) +
          " out of range (m = " + std::to_string(m) + ")");
    }
    if (!seen.insert(index).second) {
      return Status::InvalidArgument(
          "PartialDisclosure: duplicate known attribute index " +
          std::to_string(index));
    }
  }
  if (known_values.rows() != n ||
      known_values.cols() != spec_.known_attributes.size()) {
    return Status::InvalidArgument(
        "PartialDisclosure: known_values must be n x |K| = " +
        std::to_string(n) + " x " +
        std::to_string(spec_.known_attributes.size()));
  }

  // Prior moments (oracle or Theorems 5.1/8.2), exactly as in BE-DR.
  linalg::Matrix sigma;
  linalg::Vector mu;
  if (base_.oracle_covariance.has_value()) {
    if (base_.oracle_covariance->rows() != m) {
      return Status::InvalidArgument(
          "PartialDisclosure: oracle covariance dimension mismatch");
    }
    sigma = *base_.oracle_covariance;
  }
  if (base_.oracle_mean.has_value()) {
    if (base_.oracle_mean->size() != m) {
      return Status::InvalidArgument(
          "PartialDisclosure: oracle mean dimension mismatch");
    }
    mu = *base_.oracle_mean;
  }
  if (sigma.empty() || mu.empty()) {
    RR_ASSIGN_OR_RETURN(
        OriginalMoments moments,
        EstimateOriginalMoments(disguised, noise, base_.moment_options));
    if (sigma.empty()) sigma = std::move(moments.covariance);
    if (mu.empty()) mu = std::move(moments.mean);
  }

  const std::vector<size_t>& known = spec_.known_attributes;
  std::vector<size_t> unknown;
  for (size_t j = 0; j < m; ++j) {
    if (seen.count(j) == 0) unknown.push_back(j);
  }

  linalg::Matrix reconstructed(n, m);
  // Known columns are copied verbatim — the adversary has the truth.
  for (size_t k = 0; k < known.size(); ++k) {
    for (size_t i = 0; i < n; ++i) {
      reconstructed(i, known[k]) = known_values(i, k);
    }
  }
  if (unknown.empty()) return reconstructed;

  // Conditional prior over the unknown block.
  linalg::Matrix sigma_cond;   // Σ_UU − Σ_UK Σ_KK⁻¹ Σ_KU.
  linalg::Matrix regression;   // B = Σ_UK Σ_KK⁻¹ (|U| x |K|).
  if (known.empty()) {
    sigma_cond = SubMatrix(sigma, unknown, unknown);
  } else {
    const linalg::Matrix sigma_kk = SubMatrix(sigma, known, known);
    const linalg::Matrix sigma_ku = SubMatrix(sigma, known, unknown);
    Result<linalg::CholeskyFactorization> kk_chol =
        linalg::CholeskyFactorization::ComputeWithJitter(sigma_kk);
    if (!kk_chol.ok()) {
      return Status::NumericalError(
          "PartialDisclosure: covariance of the known block is degenerate (" +
          kk_chol.status().message() + ")");
    }
    // B = (Σ_KK⁻¹ Σ_KU)ᵀ.
    regression = kk_chol.value().Solve(sigma_ku).Transpose();
    sigma_cond =
        SubMatrix(sigma, unknown, unknown) - regression * sigma_ku;
  }

  // Observation update (Theorem 8.1 in gain form) with the noise
  // restricted to the unknown block.
  const linalg::Matrix noise_uu =
      SubMatrix(noise.covariance(), unknown, unknown);
  RR_ASSIGN_OR_RETURN(
      linalg::CholeskyFactorization sum_chol,
      linalg::CholeskyFactorization::ComputeWithJitter(sigma_cond + noise_uu));
  const linalg::Matrix gain_t = sum_chol.Solve(sigma_cond);  // = Gᵀ.

  linalg::Vector mu_known(known.size());
  linalg::Vector mu_unknown(unknown.size());
  for (size_t k = 0; k < known.size(); ++k) mu_known[k] = mu[known[k]];
  for (size_t u = 0; u < unknown.size(); ++u) mu_unknown[u] = mu[unknown[u]];

  for (size_t i = 0; i < n; ++i) {
    // Conditional mean for this record.
    linalg::Vector mu_cond = mu_unknown;
    if (!known.empty()) {
      linalg::Vector known_delta(known.size());
      for (size_t k = 0; k < known.size(); ++k) {
        known_delta[k] = known_values(i, k) - mu_known[k];
      }
      linalg::AddScaled(&mu_cond, 1.0, regression * known_delta);
    }
    // Gain update against the disguised unknown values.
    linalg::Vector residual(unknown.size());
    for (size_t u = 0; u < unknown.size(); ++u) {
      residual[u] = disguised(i, unknown[u]) - mu_cond[u];
    }
    const linalg::Vector update = linalg::MultiplyVectorMatrix(residual, gain_t);
    for (size_t u = 0; u < unknown.size(); ++u) {
      reconstructed(i, unknown[u]) = mu_cond[u] + update[u];
    }
  }
  return reconstructed;
}

}  // namespace core
}  // namespace randrecon
