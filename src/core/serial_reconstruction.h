// Serial-dependency reconstruction (§3, second bullet, demonstrated).
//
// A time series disguised sample-by-sample with i.i.d. noise is exactly
// the paper's setting in disguise: embed the series into overlapping
// windows (data/timeseries.h) and the serial correlation becomes
// *attribute* correlation of the window matrix. BE-DR then filters the
// noise out of each window (Theorem 5.1 still applies — the window
// entries carry independent noise), and averaging a sample's estimates
// over every window containing it yields the de-noised series.
//
// The stronger the autocorrelation, the more redundancy each window
// carries and the less privacy per-sample randomization provides — the
// time-series analogue of the paper's correlation thesis.

#ifndef RANDRECON_CORE_SERIAL_RECONSTRUCTION_H_
#define RANDRECON_CORE_SERIAL_RECONSTRUCTION_H_

#include <cstddef>

#include "common/result.h"
#include "linalg/matrix.h"

namespace randrecon {
namespace core {

/// Options for SerialCorrelationReconstructor.
struct SerialReconstructionOptions {
  /// Embedding width. Wider windows exploit longer-range dependence but
  /// need more samples for covariance estimation; 16 is a good default
  /// for series of a few thousand points.
  size_t window = 16;
};

/// Reconstructs an i.i.d.-noise-disguised time series by exploiting its
/// serial correlation.
class SerialCorrelationReconstructor {
 public:
  SerialCorrelationReconstructor() = default;
  explicit SerialCorrelationReconstructor(SerialReconstructionOptions options)
      : options_(options) {}

  /// `disguised_series` is y_t = x_t + r_t with r_t ~ N(0,
  /// noise_variance) i.i.d. Returns the estimate of x. Fails with
  /// InvalidArgument when the series is shorter than ~2 windows (the
  /// covariance estimate would be meaningless).
  Result<linalg::Vector> Reconstruct(const linalg::Vector& disguised_series,
                                     double noise_variance) const;

  const SerialReconstructionOptions& options() const { return options_; }

 private:
  SerialReconstructionOptions options_;
};

}  // namespace core
}  // namespace randrecon

#endif  // RANDRECON_CORE_SERIAL_RECONSTRUCTION_H_
