// Partial Value Disclosure attack (§3, third bullet; §9 future work).
//
// "In practice, it is possible that the values of some attributes can be
//  disclosed (via other channels). For example ... knowing that the
//  patient Alice has diabetes and heart problems, we might be able to
//  estimate the other information about her."
//
// This reconstructor models exactly that: the adversary knows the TRUE
// values of a fixed subset K of attributes for every record (a public
// column, a linked external database, ...) in addition to the disguised
// values of the remaining attributes U. Under the multivariate-normal
// prior of §6 the attack is the Bayes estimate with the prior conditioned
// on the known values:
//
//   x_U | x_K ~ N( µ_U + Σ_UK Σ_KK⁻¹ (x_K − µ_K),
//                  Σ_UU − Σ_UK Σ_KK⁻¹ Σ_KU )
//
// followed by the Theorem 8.1 observation update against y_U = x_U + r_U.
// With K = ∅ this is exactly BE-DR; as K grows, privacy of the remaining
// attributes collapses at a rate set by their correlation with K.

#ifndef RANDRECON_CORE_PARTIAL_DISCLOSURE_H_
#define RANDRECON_CORE_PARTIAL_DISCLOSURE_H_

#include <vector>

#include "core/be_dr.h"
#include "core/covariance_estimation.h"
#include "linalg/matrix.h"
#include "perturb/noise_model.h"

namespace randrecon {
namespace core {

/// Which attributes the adversary learned out-of-band.
struct PartialKnowledgeSpec {
  /// Attribute indices with exactly known values (same set for every
  /// record). Must be unique and in range; may be empty (plain BE-DR).
  std::vector<size_t> known_attributes;
};

/// §3's partial-value-disclosure adversary.
class PartialDisclosureReconstructor {
 public:
  /// `base` carries the usual BE-DR knobs (oracle moments, estimation
  /// options); `use_literal_formula` is ignored.
  explicit PartialDisclosureReconstructor(PartialKnowledgeSpec spec,
                                          BeDrOptions base = {})
      : spec_(std::move(spec)), base_(std::move(base)) {}

  /// Reconstructs all n x m values. `known_values` is n x |K| with the
  /// true values of the known attributes, in spec order; those columns
  /// are copied to the output verbatim and the remaining columns carry
  /// the conditional Bayes estimate. Fails with InvalidArgument on bad
  /// indices/shapes and NumericalError on degenerate covariances.
  Result<linalg::Matrix> Reconstruct(const linalg::Matrix& disguised,
                                     const perturb::NoiseModel& noise,
                                     const linalg::Matrix& known_values) const;

  const PartialKnowledgeSpec& spec() const { return spec_; }

 private:
  PartialKnowledgeSpec spec_;
  BeDrOptions base_;
};

}  // namespace core
}  // namespace randrecon

#endif  // RANDRECON_CORE_PARTIAL_DISCLOSURE_H_
