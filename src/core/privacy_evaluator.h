// Privacy quantification (§3): the distance between the reconstructed
// data X̂ and the true original X measures how much private information
// leaked — small error = privacy breached, large error = privacy kept.

#ifndef RANDRECON_CORE_PRIVACY_EVALUATOR_H_
#define RANDRECON_CORE_PRIVACY_EVALUATOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"

namespace randrecon {
namespace core {

/// Error metrics for one reconstruction attempt.
struct ReconstructionReport {
  /// Which attack produced X̂ (Reconstructor::name()).
  std::string attack_name;
  /// Root mean square error over all n·m cells — the paper's headline
  /// privacy measure.
  double rmse = 0.0;
  /// rmse².
  double mse = 0.0;
  /// RMSE restricted to each attribute.
  linalg::Vector per_attribute_rmse;
  /// RMSE divided by the pooled original-data standard deviation: < 1
  /// means the attack knows more about a record than the population
  /// spread does.
  double relative_rmse = 0.0;
  /// Fraction of cells reconstructed within `epsilon` of the truth (the
  /// "how many individuals are pinpointed" view of the same breach).
  double fraction_within_epsilon = 0.0;
  /// The epsilon used for the above.
  double epsilon = 0.0;
};

/// Computes a ReconstructionReport for X̂ against the true X. `epsilon`
/// <= 0 defaults to one half of the pooled original stddev. Fails with
/// InvalidArgument on shape mismatch.
Result<ReconstructionReport> EvaluateReconstruction(
    const std::string& attack_name, const linalg::Matrix& original,
    const linalg::Matrix& reconstructed, double epsilon = 0.0);

/// Renders a one-line summary ("BE-DR  rmse=2.531  rel=0.25  within=61%").
std::string FormatReport(const ReconstructionReport& report);

/// Renders a fixed-width table over several reports, sorted by rmse
/// ascending (most successful attack first).
std::string FormatReportTable(std::vector<ReconstructionReport> reports);

}  // namespace core
}  // namespace randrecon

#endif  // RANDRECON_CORE_PRIVACY_EVALUATOR_H_
