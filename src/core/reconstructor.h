// Reconstructor: the adversary interface.
//
// A reconstructor receives (a) the disguised record matrix Y = X + R and
// (b) the public NoiseModel describing R, and produces an estimate X̂ of
// the original records. The distance between X̂ and X *is* the paper's
// privacy measure: the closer the reconstruction, the less privacy the
// randomization preserved (§3).

#ifndef RANDRECON_CORE_RECONSTRUCTOR_H_
#define RANDRECON_CORE_RECONSTRUCTOR_H_

#include <string>

#include "common/result.h"
#include "linalg/matrix.h"
#include "perturb/noise_model.h"

namespace randrecon {
namespace core {

/// Interface implemented by every data-reconstruction attack in the
/// library (NDR, UDR, PCA-DR, BE-DR, SF).
class Reconstructor {
 public:
  virtual ~Reconstructor() = default;

  /// Short display name used in experiment tables, e.g. "PCA-DR".
  virtual std::string name() const = 0;

  /// Produces the reconstructed record matrix X̂ (same shape as
  /// `disguised`). Fails with InvalidArgument when the noise model's
  /// attribute count doesn't match the data, or when the scheme's
  /// documented preconditions are violated (e.g. Eq. 11 needs uniform
  /// noise variance); NumericalError on decomposition failures.
  virtual Result<linalg::Matrix> Reconstruct(
      const linalg::Matrix& disguised,
      const perturb::NoiseModel& noise) const = 0;
};

/// Shared precondition: noise model dimension must match the data. OK on
/// success; InvalidArgument otherwise.
Status ValidateShapes(const linalg::Matrix& disguised,
                      const perturb::NoiseModel& noise);

}  // namespace core
}  // namespace randrecon

#endif  // RANDRECON_CORE_RECONSTRUCTOR_H_
