// AttackSuite: runs a battery of reconstruction attacks against one
// disguised dataset and reports each one's success — the "audit" entry
// point the examples and the experiment harness drive.

#ifndef RANDRECON_CORE_ATTACK_SUITE_H_
#define RANDRECON_CORE_ATTACK_SUITE_H_

#include <memory>
#include <vector>

#include "core/privacy_evaluator.h"
#include "core/reconstructor.h"
#include "data/dataset.h"

namespace randrecon {
namespace core {

/// A named collection of reconstruction attacks.
class AttackSuite {
 public:
  /// An empty suite; add attacks with Add().
  AttackSuite() = default;

  /// The paper's full line-up: NDR, UDR, SF, PCA-DR, BE-DR with default
  /// options. `fast_udr` selects the closed-form Gaussian UDR estimator
  /// (appropriate whenever the data is (near-)normal; the AS2000 grid is
  /// used otherwise).
  static AttackSuite PaperSuite(bool fast_udr = true);

  /// Adds an attack; returns *this for chaining.
  AttackSuite& Add(std::unique_ptr<Reconstructor> attack);

  size_t size() const { return attacks_.size(); }
  const Reconstructor& attack(size_t i) const { return *attacks_[i]; }

  /// Runs every attack on `disguised` and scores it against `original`.
  /// Fails fast on the first attack error (attacks in this library only
  /// fail on precondition violations, which apply suite-wide).
  Result<std::vector<ReconstructionReport>> RunAll(
      const linalg::Matrix& original, const linalg::Matrix& disguised,
      const perturb::NoiseModel& noise) const;

  /// Dataset-level convenience overload.
  Result<std::vector<ReconstructionReport>> RunAll(
      const data::Dataset& original, const data::Dataset& disguised,
      const perturb::NoiseModel& noise) const;

 private:
  std::vector<std::unique_ptr<Reconstructor>> attacks_;
};

}  // namespace core
}  // namespace randrecon

#endif  // RANDRECON_CORE_ATTACK_SUITE_H_
