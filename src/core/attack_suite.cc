#include "core/attack_suite.h"

#include "core/be_dr.h"
#include "core/ndr.h"
#include "core/pca_dr.h"
#include "core/spectral_filtering.h"
#include "core/udr.h"

namespace randrecon {
namespace core {

AttackSuite AttackSuite::PaperSuite(bool fast_udr) {
  AttackSuite suite;
  suite.Add(std::make_unique<NdrReconstructor>());
  UdrOptions udr_options;
  udr_options.estimator = fast_udr ? UdrDensityEstimator::kGaussianClosedForm
                                   : UdrDensityEstimator::kAs2000Grid;
  suite.Add(std::make_unique<UdrReconstructor>(udr_options));
  suite.Add(std::make_unique<SpectralFilteringReconstructor>());
  suite.Add(std::make_unique<PcaReconstructor>());
  suite.Add(std::make_unique<BayesEstimateReconstructor>());
  return suite;
}

AttackSuite& AttackSuite::Add(std::unique_ptr<Reconstructor> attack) {
  RR_CHECK(attack != nullptr);
  attacks_.push_back(std::move(attack));
  return *this;
}

Result<std::vector<ReconstructionReport>> AttackSuite::RunAll(
    const linalg::Matrix& original, const linalg::Matrix& disguised,
    const perturb::NoiseModel& noise) const {
  std::vector<ReconstructionReport> reports;
  reports.reserve(attacks_.size());
  for (const auto& attack : attacks_) {
    RR_ASSIGN_OR_RETURN(linalg::Matrix reconstructed,
                        attack->Reconstruct(disguised, noise));
    RR_ASSIGN_OR_RETURN(
        ReconstructionReport report,
        EvaluateReconstruction(attack->name(), original, reconstructed));
    reports.push_back(std::move(report));
  }
  return reports;
}

Result<std::vector<ReconstructionReport>> AttackSuite::RunAll(
    const data::Dataset& original, const data::Dataset& disguised,
    const perturb::NoiseModel& noise) const {
  return RunAll(original.records(), disguised.records(), noise);
}

}  // namespace core
}  // namespace randrecon
