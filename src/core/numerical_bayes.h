// Numerical Bayes estimation for non-Gaussian priors (§6's closing
// remark, §9 future work):
//
//   "for other distributions, we might not be able to derive an equation
//    with a simple analytic form ... In such situations, the Bayes
//    estimate must be sought using numerical methods, such as Gradient
//    descent methods. We will study them in our future work."
//
// This module implements that study for the most useful non-Gaussian
// family: a finite mixture of multivariate normals (clustered data —
// e.g. two patient sub-populations). For each disguised record y it
// maximizes the log posterior
//
//   log Σ_k w_k N(x; µ_k, Σ_k)  +  log N(y − x; 0, Σr)
//
// by gradient ascent with backtracking line search. With a single
// component the optimum has the closed form of Eq. 11 / Theorem 8.1, and
// the tests verify the optimizer lands on it; with several components it
// strictly outperforms plain BE-DR on clustered data, because BE-DR's
// single-Gaussian prior smears the clusters together.

#ifndef RANDRECON_CORE_NUMERICAL_BAYES_H_
#define RANDRECON_CORE_NUMERICAL_BAYES_H_

#include <vector>

#include "core/reconstructor.h"
#include "linalg/matrix.h"

namespace randrecon {
namespace core {

/// One component of the multivariate Gaussian-mixture prior.
struct GaussianComponent {
  double weight = 1.0;          ///< Positive; normalized on construction.
  linalg::Vector mean;          ///< Length m.
  linalg::Matrix covariance;    ///< m x m, positive definite.
};

/// The prior over original records.
class GaussianMixturePrior {
 public:
  /// Validates and normalizes the components. Fails with InvalidArgument
  /// on empty input, inconsistent dimensions, non-positive weights, and
  /// NumericalError if a component covariance cannot be factorized.
  static Result<GaussianMixturePrior> Create(
      std::vector<GaussianComponent> components);

  size_t dimension() const;
  size_t num_components() const { return components_.size(); }
  const GaussianComponent& component(size_t k) const { return components_[k]; }

  /// log Σ_k w_k N(x; µ_k, Σ_k), computed stably (log-sum-exp).
  double LogDensity(const linalg::Vector& x) const;

  /// ∇x log density: Σ_k r_k(x) Σ_k⁻¹ (µ_k − x) with responsibilities
  /// r_k ∝ w_k N(x; µ_k, Σ_k).
  linalg::Vector LogDensityGradient(const linalg::Vector& x) const;

 private:
  GaussianMixturePrior() = default;

  std::vector<GaussianComponent> components_;
  std::vector<linalg::Matrix> precisions_;      // Σ_k⁻¹.
  std::vector<double> log_norm_constants_;      // log w_k − ½log|2πΣ_k|.
};

/// Gradient-ascent controls.
struct NumericalBayesOptions {
  /// Maximum ascent iterations per record.
  int max_iterations = 200;
  /// Initial step size; backtracking halves it until the Armijo
  /// condition holds.
  double initial_step = 1.0;
  /// Stop when the gradient's max-abs entry falls below this.
  double gradient_tolerance = 1e-8;
  /// Backtracking halvings per iteration before giving up on progress.
  int max_backtracks = 40;
};

/// §6's numerical MAP reconstructor for mixture priors.
class NumericalBayesReconstructor final : public Reconstructor {
 public:
  NumericalBayesReconstructor(GaussianMixturePrior prior,
                              NumericalBayesOptions options = {})
      : prior_(std::move(prior)), options_(options) {}

  std::string name() const override { return "NB-DR"; }

  /// MAP estimate per record by gradient ascent, started from the
  /// observation y (a global-basin heuristic that is exact for one
  /// component and works well when noise is smaller than cluster
  /// separation).
  Result<linalg::Matrix> Reconstruct(
      const linalg::Matrix& disguised,
      const perturb::NoiseModel& noise) const override;

  const GaussianMixturePrior& prior() const { return prior_; }

 private:
  GaussianMixturePrior prior_;
  NumericalBayesOptions options_;
};

}  // namespace core
}  // namespace randrecon

#endif  // RANDRECON_CORE_NUMERICAL_BAYES_H_
