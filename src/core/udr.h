// UDR — Univariate-Distribution-based Reconstruction (§4.2).
//
// Attribute-by-attribute posterior-mean estimation: for each disguised
// value y the adversary guesses E[x | Y = y] (Theorem 4.1 shows the
// posterior mean minimizes MSE), where the posterior is
//
//   P(x | y) = fR(y − x) fX(x) / fY(y)                        (Eq. 3)
//   E[x | y] = ∫ x fX(x) fR(y − x) dx / ∫ fX(x) fR(y − x) dx  (Eq. 4)
//
// UDR uses *no* cross-attribute information — it is the paper's baseline
// for "how much does correlation add?".
//
// Two estimators for fX are provided:
//  * kAs2000Grid (default-faithful): the Agrawal–Srikant iterative
//    reconstruction of fX from the disguised sample, then Eq. 4 on the
//    grid. Works for any noise distribution.
//  * kGaussianClosedForm: assumes the marginal of X is normal (exactly
//    true for every §7 experiment, where data is multivariate normal) and
//    evaluates the posterior mean in closed form:
//      E[x|y] = µ + s²/(s² + σ²) (y − µ),  s² = Var(Y) − σ².
//    Orders of magnitude faster; the ablation bench A5 shows the two
//    agree on normal data.

#ifndef RANDRECON_CORE_UDR_H_
#define RANDRECON_CORE_UDR_H_

#include "core/reconstructor.h"
#include "stats/density_reconstruction.h"

namespace randrecon {
namespace core {

/// How UDR models the unknown marginal fX.
enum class UdrDensityEstimator {
  /// Agrawal–Srikant EM on a grid (the paper's reference [2]).
  kAs2000Grid,
  /// Exact normal posterior mean (valid when X is Gaussian).
  kGaussianClosedForm,
};

/// Configuration for UdrReconstructor.
struct UdrOptions {
  UdrDensityEstimator estimator = UdrDensityEstimator::kAs2000Grid;
  /// Grid/iteration controls for the AS2000 path.
  stats::DensityReconstructionOptions density_options;
};

/// §4.2's univariate posterior-mean attack.
class UdrReconstructor final : public Reconstructor {
 public:
  UdrReconstructor() = default;
  explicit UdrReconstructor(UdrOptions options) : options_(options) {}

  std::string name() const override { return "UDR"; }

  Result<linalg::Matrix> Reconstruct(
      const linalg::Matrix& disguised,
      const perturb::NoiseModel& noise) const override;

  const UdrOptions& options() const { return options_; }

 private:
  /// Eq. 4 evaluated on a reconstructed grid density for one attribute.
  Result<linalg::Vector> ReconstructColumnGrid(
      const linalg::Vector& disguised_column,
      const stats::ScalarDistribution& noise_marginal) const;

  /// Closed-form normal posterior mean for one attribute.
  linalg::Vector ReconstructColumnGaussian(
      const linalg::Vector& disguised_column, double noise_variance) const;

  UdrOptions options_;
};

}  // namespace core
}  // namespace randrecon

#endif  // RANDRECON_CORE_UDR_H_
