// BE-DR — Bayes-Estimate-based Data Reconstruction (§6 and §8).
//
// Models the original records as draws from a multivariate normal
// N(µx, Σx) and returns, for each disguised record y, the x maximizing
// the posterior P(x | y):
//
//   independent noise (Eq. 11):
//     x̂ = (Σx⁻¹ + I/σ²)⁻¹ (Σx⁻¹ µx + y/σ²)
//   correlated noise (Theorem 8.1):
//     x̂ = (Σx⁻¹ + Σr⁻¹)⁻¹ (Σx⁻¹ µx − Σr⁻¹ µr + Σr⁻¹ y)
//
// Both are evaluated by default in the algebraically equivalent "gain"
// form x̂ = µx + Σx (Σx + Σr)⁻¹ (y − µx), which stays defined when the
// estimated Σx is singular (common at finite n after the Theorem 5.1
// subtraction) and needs one SPD factorization instead of three inverses.
// `use_literal_formula` switches to the verbatim paper formulas (used by
// tests to confirm the equivalence, and by readers following the paper).
//
// Σx and µx are estimated from the disguised data (Theorems 5.1/8.2)
// unless the oracle fields supply ground truth (§5.3-style analysis).

#ifndef RANDRECON_CORE_BE_DR_H_
#define RANDRECON_CORE_BE_DR_H_

#include <optional>

#include "core/covariance_estimation.h"
#include "core/reconstructor.h"

namespace randrecon {
namespace core {

/// Configuration for BayesEstimateReconstructor.
struct BeDrOptions {
  /// Evaluate the verbatim Eq. 11 / Theorem 8.1 formulas (requires an
  /// invertible Σ̂x; pair with moment_options.eigen_floor > 0).
  bool use_literal_formula = false;
  /// Ground-truth covariance instead of the Theorem 5.1/8.2 estimate.
  std::optional<linalg::Matrix> oracle_covariance;
  /// Ground-truth mean instead of the disguised-data column means.
  std::optional<linalg::Vector> oracle_mean;
  /// Moment-estimation knobs (PSD clipping / eigenvalue floor).
  MomentEstimationOptions moment_options;
};

/// §6's Bayes-estimate attack, generalized to correlated noise per §8.
class BayesEstimateReconstructor final : public Reconstructor {
 public:
  BayesEstimateReconstructor() = default;
  explicit BayesEstimateReconstructor(BeDrOptions options)
      : options_(std::move(options)) {}

  std::string name() const override { return "BE-DR"; }

  Result<linalg::Matrix> Reconstruct(
      const linalg::Matrix& disguised,
      const perturb::NoiseModel& noise) const override;

  const BeDrOptions& options() const { return options_; }

 private:
  Result<linalg::Matrix> ReconstructGainForm(
      const linalg::Matrix& disguised, const linalg::Matrix& sigma_x,
      const linalg::Vector& mu_x, const linalg::Matrix& sigma_r) const;

  Result<linalg::Matrix> ReconstructLiteral(
      const linalg::Matrix& disguised, const linalg::Matrix& sigma_x,
      const linalg::Vector& mu_x, const linalg::Matrix& sigma_r) const;

  BeDrOptions options_;
};

}  // namespace core
}  // namespace randrecon

#endif  // RANDRECON_CORE_BE_DR_H_
