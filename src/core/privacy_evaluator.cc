#include "core/privacy_evaluator.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/string_util.h"
#include "stats/moments.h"

namespace randrecon {
namespace core {

Result<ReconstructionReport> EvaluateReconstruction(
    const std::string& attack_name, const linalg::Matrix& original,
    const linalg::Matrix& reconstructed, double epsilon) {
  if (original.rows() != reconstructed.rows() ||
      original.cols() != reconstructed.cols()) {
    return Status::InvalidArgument(
        "EvaluateReconstruction: original is " +
        std::to_string(original.rows()) + "x" + std::to_string(original.cols()) +
        ", reconstruction is " + std::to_string(reconstructed.rows()) + "x" +
        std::to_string(reconstructed.cols()));
  }
  if (original.size() == 0) {
    return Status::InvalidArgument("EvaluateReconstruction: empty matrices");
  }

  ReconstructionReport report;
  report.attack_name = attack_name;
  report.mse = stats::MeanSquareError(original, reconstructed);
  report.rmse = std::sqrt(report.mse);
  report.per_attribute_rmse = stats::PerAttributeRmse(original, reconstructed);

  // Pooled original standard deviation across all attributes.
  const linalg::Vector variances = stats::ColumnVariances(original);
  double pooled_var = 0.0;
  for (double v : variances) pooled_var += v;
  pooled_var /= static_cast<double>(variances.size());
  const double pooled_std = std::sqrt(pooled_var);
  report.relative_rmse = pooled_std > 0.0 ? report.rmse / pooled_std : 0.0;

  report.epsilon = epsilon > 0.0 ? epsilon : 0.5 * pooled_std;
  size_t within = 0;
  const double* po = original.data();
  const double* pr = reconstructed.data();
  for (size_t i = 0; i < original.size(); ++i) {
    if (std::fabs(po[i] - pr[i]) <= report.epsilon) ++within;
  }
  report.fraction_within_epsilon =
      static_cast<double>(within) / static_cast<double>(original.size());
  return report;
}

std::string FormatReport(const ReconstructionReport& report) {
  std::ostringstream out;
  out << PadRight(report.attack_name, 10) << " rmse=" << FormatDouble(report.rmse, 4)
      << "  rel=" << FormatDouble(report.relative_rmse, 3) << "  within±"
      << FormatDouble(report.epsilon, 2) << "="
      << FormatDouble(100.0 * report.fraction_within_epsilon, 1) << "%";
  return out.str();
}

std::string FormatReportTable(std::vector<ReconstructionReport> reports) {
  std::sort(reports.begin(), reports.end(),
            [](const ReconstructionReport& a, const ReconstructionReport& b) {
              return a.rmse < b.rmse;
            });
  std::ostringstream out;
  out << PadRight("attack", 10) << PadLeft("rmse", 10) << PadLeft("rel_rmse", 10)
      << PadLeft("within_eps", 12) << "\n";
  out << std::string(42, '-') << "\n";
  for (const ReconstructionReport& r : reports) {
    out << PadRight(r.attack_name, 10) << PadLeft(FormatDouble(r.rmse, 4), 10)
        << PadLeft(FormatDouble(r.relative_rmse, 3), 10)
        << PadLeft(FormatDouble(100.0 * r.fraction_within_epsilon, 1) + "%", 12)
        << "\n";
  }
  return out.str();
}

}  // namespace core
}  // namespace randrecon
