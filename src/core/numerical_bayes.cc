#include "core/numerical_bayes.h"

#include <algorithm>
#include <cmath>

#include "linalg/cholesky.h"
#include "linalg/vector_ops.h"

namespace randrecon {
namespace core {
namespace {

constexpr double kLog2Pi = 1.8378770664093453;  // log(2π).

}  // namespace

Result<GaussianMixturePrior> GaussianMixturePrior::Create(
    std::vector<GaussianComponent> components) {
  if (components.empty()) {
    return Status::InvalidArgument("GaussianMixturePrior: no components");
  }
  const size_t m = components.front().mean.size();
  if (m == 0) {
    return Status::InvalidArgument("GaussianMixturePrior: empty mean");
  }
  double total_weight = 0.0;
  for (const GaussianComponent& c : components) {
    if (c.mean.size() != m || c.covariance.rows() != m ||
        c.covariance.cols() != m) {
      return Status::InvalidArgument(
          "GaussianMixturePrior: inconsistent component dimensions");
    }
    if (c.weight <= 0.0) {
      return Status::InvalidArgument(
          "GaussianMixturePrior: weights must be positive");
    }
    total_weight += c.weight;
  }

  GaussianMixturePrior prior;
  for (GaussianComponent& c : components) {
    c.weight /= total_weight;
    RR_ASSIGN_OR_RETURN(linalg::CholeskyFactorization chol,
                        linalg::CholeskyFactorization::ComputeWithJitter(
                            c.covariance));
    prior.precisions_.push_back(chol.Inverse());
    prior.log_norm_constants_.push_back(
        std::log(c.weight) - 0.5 * (static_cast<double>(m) * kLog2Pi +
                                    chol.LogDeterminant()));
    prior.components_.push_back(std::move(c));
  }
  return prior;
}

size_t GaussianMixturePrior::dimension() const {
  return components_.front().mean.size();
}

double GaussianMixturePrior::LogDensity(const linalg::Vector& x) const {
  RR_CHECK_EQ(x.size(), dimension());
  double max_term = -1e300;
  std::vector<double> terms(components_.size());
  for (size_t k = 0; k < components_.size(); ++k) {
    const linalg::Vector delta =
        linalg::Subtract(x, components_[k].mean);
    const linalg::Vector pd = precisions_[k] * delta;
    terms[k] = log_norm_constants_[k] - 0.5 * linalg::Dot(delta, pd);
    max_term = std::max(max_term, terms[k]);
  }
  double sum = 0.0;
  for (double term : terms) sum += std::exp(term - max_term);
  return max_term + std::log(sum);
}

linalg::Vector GaussianMixturePrior::LogDensityGradient(
    const linalg::Vector& x) const {
  RR_CHECK_EQ(x.size(), dimension());
  // Responsibilities via log-sum-exp, then the weighted pullback.
  std::vector<double> terms(components_.size());
  std::vector<linalg::Vector> pulls(components_.size());
  double max_term = -1e300;
  for (size_t k = 0; k < components_.size(); ++k) {
    const linalg::Vector delta =
        linalg::Subtract(components_[k].mean, x);  // µ_k − x.
    pulls[k] = precisions_[k] * delta;             // Σ_k⁻¹(µ_k − x).
    // Exponent of N(x; µ, Σ) is −½(x−µ)ᵀΣ⁻¹(x−µ) = −½ deltaᵀ pulls.
    terms[k] = log_norm_constants_[k] - 0.5 * linalg::Dot(delta, pulls[k]);
    max_term = std::max(max_term, terms[k]);
  }
  double denom = 0.0;
  for (double term : terms) denom += std::exp(term - max_term);
  linalg::Vector gradient(x.size(), 0.0);
  for (size_t k = 0; k < components_.size(); ++k) {
    const double responsibility = std::exp(terms[k] - max_term) / denom;
    linalg::AddScaled(&gradient, responsibility, pulls[k]);
  }
  return gradient;
}

Result<linalg::Matrix> NumericalBayesReconstructor::Reconstruct(
    const linalg::Matrix& disguised, const perturb::NoiseModel& noise) const {
  RR_RETURN_NOT_OK(ValidateShapes(disguised, noise));
  if (prior_.dimension() != disguised.cols()) {
    return Status::InvalidArgument(
        "NB-DR: prior dimension != data attribute count");
  }

  // Noise precision (Σr⁻¹) for the likelihood term.
  RR_ASSIGN_OR_RETURN(
      linalg::CholeskyFactorization noise_chol,
      linalg::CholeskyFactorization::ComputeWithJitter(noise.covariance()));
  const linalg::Matrix noise_precision = noise_chol.Inverse();

  const size_t n = disguised.rows();
  const size_t m = disguised.cols();
  linalg::Matrix reconstructed(n, m);

  for (size_t i = 0; i < n; ++i) {
    const linalg::Vector y = disguised.Row(i);

    auto objective = [&](const linalg::Vector& x) {
      const linalg::Vector residual = linalg::Subtract(y, x);
      const linalg::Vector pr = noise_precision * residual;
      return prior_.LogDensity(x) - 0.5 * linalg::Dot(residual, pr);
    };
    auto gradient = [&](const linalg::Vector& x) {
      // ∇ log prior + Σr⁻¹ (y − x).
      linalg::Vector g = prior_.LogDensityGradient(x);
      const linalg::Vector residual = linalg::Subtract(y, x);
      linalg::AddScaled(&g, 1.0, noise_precision * residual);
      return g;
    };

    // Ascend from the observation.
    linalg::Vector x = y;
    double value = objective(x);
    for (int iter = 0; iter < options_.max_iterations; ++iter) {
      const linalg::Vector g = gradient(x);
      if (linalg::MaxAbs(g) < options_.gradient_tolerance) break;
      double step = options_.initial_step;
      bool advanced = false;
      const double sufficient = 1e-4 * linalg::Dot(g, g);
      for (int bt = 0; bt < options_.max_backtracks; ++bt, step *= 0.5) {
        linalg::Vector candidate = x;
        linalg::AddScaled(&candidate, step, g);
        const double candidate_value = objective(candidate);
        if (candidate_value >= value + step * sufficient) {
          x = std::move(candidate);
          value = candidate_value;
          advanced = true;
          break;
        }
      }
      if (!advanced) break;  // Line search exhausted: at (numerical) optimum.
    }
    reconstructed.SetRow(i, x);
  }
  return reconstructed;
}

}  // namespace core
}  // namespace randrecon
