// Attacker-side estimation of the original data's first two moments from
// the disguised data — Theorem 5.1 (independent noise: subtract σ² from
// the diagonal) and Theorem 8.2 (correlated noise: Σx = Σy − Σr), plus the
// mean estimate µx ≈ µy (noise is zero-mean).

#ifndef RANDRECON_CORE_COVARIANCE_ESTIMATION_H_
#define RANDRECON_CORE_COVARIANCE_ESTIMATION_H_

#include "common/result.h"
#include "linalg/matrix.h"
#include "perturb/noise_model.h"

namespace randrecon {
namespace core {

/// Estimated moments of the hidden original data.
struct OriginalMoments {
  /// Σ̂x = Cov(Y) − Σr, optionally projected back onto the PSD cone.
  linalg::Matrix covariance;
  /// µ̂x = column means of Y.
  linalg::Vector mean;
};

/// Options for the moment estimator.
struct MomentEstimationOptions {
  /// At finite n the subtraction Cov(Y) − Σr can produce small negative
  /// eigenvalues; when true (default) they are clipped to `eigen_floor`.
  bool clip_to_psd = true;
  /// Eigenvalue floor used by the PSD clip. A strictly positive floor
  /// also keeps Σ̂x invertible for the literal Eq. 11/13 formulas.
  double eigen_floor = 0.0;
  /// Spiked-spectrum shrinkage: after the subtraction, replace all
  /// non-principal eigenvalues (split by the largest gap, the same rule
  /// PCA-DR uses) by their mean. At finite n the raw non-principal
  /// eigenvalue estimates scatter widely around their true common level,
  /// which makes downstream BE-DR over-trust noise directions; averaging
  /// them restores the two-level structure the §7 experiments generate
  /// data from. Off by default — it is an estimation refinement, not part
  /// of the paper's formulas (ablation A4 measures its effect).
  bool bulk_average_nonprincipal = false;
};

/// Runs Theorem 5.1 / Theorem 8.2 on the disguised matrix. Works for both
/// independent (diagonal Σr) and correlated noise: the theorems coincide
/// because for independent noise Σr = σ²I.
Result<OriginalMoments> EstimateOriginalMoments(
    const linalg::Matrix& disguised, const perturb::NoiseModel& noise,
    const MomentEstimationOptions& options = {});

/// The covariance half of EstimateOriginalMoments for callers that have
/// already computed Cov(Y) — e.g. the out-of-core pipeline, which
/// accumulates it without materializing Y (stats::StreamingMoments).
/// Applies the Theorem 5.1/8.2 subtraction Σ̂x = Cov(Y) − Σr and the same
/// PSD/bulk-average post-processing, so streaming and in-memory attacks
/// estimate from identical code.
Result<linalg::Matrix> EstimateOriginalCovariance(
    linalg::Matrix disguised_covariance, const perturb::NoiseModel& noise,
    const MomentEstimationOptions& options = {});

}  // namespace core
}  // namespace randrecon

#endif  // RANDRECON_CORE_COVARIANCE_ESTIMATION_H_
