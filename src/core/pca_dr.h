// PCA-DR — PCA-based Data Reconstruction (§5).
//
// The attack:
//   1. Estimate the original covariance from the disguised data
//      (Theorem 5.1 / 8.2: Σ̂x = Cov(Y) − Σr).
//   2. Eigendecompose Σ̂x = Q Λ Qᵀ (eigenvalues descending).
//   3. Select the p principal components (the paper's experiments use the
//      largest-eigengap rule; fixed-count and variance-fraction selection
//      are provided for the ablation bench).
//   4. Project the (centered) disguised data onto the principal subspace:
//      X̂ = Ȳ Q̂ Q̂ᵀ + µ̂.
//
// Why it works (§5.2): correlated data concentrates its variance in the
// first p directions while independent noise spreads its variance evenly
// over all m, so discarding m − p directions removes the fraction
// (m − p)/m of the noise energy (Theorem 5.2: residual noise MSE is
// σ² p/m) at small cost to the signal.

#ifndef RANDRECON_CORE_PCA_DR_H_
#define RANDRECON_CORE_PCA_DR_H_

#include <optional>

#include "core/covariance_estimation.h"
#include "core/reconstructor.h"

namespace randrecon {
namespace core {

/// How PCA-DR chooses the number of principal components p.
enum class PcSelection {
  /// Largest gap between consecutive (descending) eigenvalues — the rule
  /// the paper's experiments use (§5.2.2 footnote).
  kLargestGap,
  /// Keep exactly `fixed_count` components.
  kFixedCount,
  /// Keep the smallest p whose eigenvalues explain at least
  /// `variance_fraction` of the (non-negative) spectrum mass.
  kVarianceFraction,
};

/// Configuration for PcaReconstructor.
struct PcaOptions {
  PcSelection selection = PcSelection::kLargestGap;
  /// Used when selection == kFixedCount. Clamped to [1, m].
  size_t fixed_count = 1;
  /// Used when selection == kVarianceFraction; in (0, 1].
  double variance_fraction = 0.9;
  /// kLargestGap sanity check: the gap only separates "dominant" from
  /// "non-dominant" eigenvalues (§5.2.2) if the eigenvalue after it is
  /// substantially smaller than the one before it. If
  /// λ_{p+1} > gap_dominance_ratio · λ_p the spectrum is treated as
  /// gap-free and all m components are kept (PCA-DR then degenerates to
  /// NDR, the correct behaviour for uncorrelated data).
  double gap_dominance_ratio = 0.5;
  /// §5.3 analysis mode: when set, this ground-truth covariance is used
  /// instead of the Theorem 5.1 estimate ("we only analyze PCA-DR using
  /// covariance matrix from the original data"). The ablation bench A4
  /// measures the difference.
  std::optional<linalg::Matrix> oracle_covariance;
  /// Moment-estimation knobs (PSD clipping).
  MomentEstimationOptions moment_options;
};

/// Outcome details a caller may want next to the reconstruction.
struct PcaDiagnostics {
  size_t num_components = 0;           ///< The selected p.
  linalg::Vector eigenvalues;          ///< Estimated original eigenvalues.
  double retained_variance_fraction = 0.0;
};

/// §5's PCA projection attack.
class PcaReconstructor final : public Reconstructor {
 public:
  PcaReconstructor() = default;
  explicit PcaReconstructor(PcaOptions options)
      : options_(std::move(options)) {}

  std::string name() const override { return "PCA-DR"; }

  Result<linalg::Matrix> Reconstruct(
      const linalg::Matrix& disguised,
      const perturb::NoiseModel& noise) const override;

  /// Reconstruct and also report which p was chosen and the estimated
  /// spectrum (used by experiments and tests).
  Result<linalg::Matrix> ReconstructWithDiagnostics(
      const linalg::Matrix& disguised, const perturb::NoiseModel& noise,
      PcaDiagnostics* diagnostics) const;

  const PcaOptions& options() const { return options_; }

 private:
  PcaOptions options_;
};

/// The component-count rules, exposed for direct testing. `eigenvalues`
/// must be sorted descending; returns p in [1, m].
size_t SelectNumComponents(const linalg::Vector& eigenvalues,
                           const PcaOptions& options);

}  // namespace core
}  // namespace randrecon

#endif  // RANDRECON_CORE_PCA_DR_H_
