#include "core/ndr.h"

namespace randrecon {
namespace core {

Result<linalg::Matrix> NdrReconstructor::Reconstruct(
    const linalg::Matrix& disguised, const perturb::NoiseModel& noise) const {
  RR_RETURN_NOT_OK(ValidateShapes(disguised, noise));
  return disguised;  // x̂ᵢ = yᵢ: E[R] = 0 is the whole model.
}

}  // namespace core
}  // namespace randrecon
