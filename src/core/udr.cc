#include "core/udr.h"

#include <algorithm>

#include "linalg/vector_ops.h"

namespace randrecon {
namespace core {

Result<linalg::Matrix> UdrReconstructor::Reconstruct(
    const linalg::Matrix& disguised, const perturb::NoiseModel& noise) const {
  RR_RETURN_NOT_OK(ValidateShapes(disguised, noise));

  linalg::Matrix reconstructed(disguised.rows(), disguised.cols());
  for (size_t j = 0; j < disguised.cols(); ++j) {
    const linalg::Vector column = disguised.Col(j);
    linalg::Vector guess;
    switch (options_.estimator) {
      case UdrDensityEstimator::kAs2000Grid: {
        RR_ASSIGN_OR_RETURN(guess,
                            ReconstructColumnGrid(column, noise.Marginal(j)));
        break;
      }
      case UdrDensityEstimator::kGaussianClosedForm: {
        guess = ReconstructColumnGaussian(column, noise.Variance(j));
        break;
      }
    }
    reconstructed.SetCol(j, guess);
  }
  return reconstructed;
}

Result<linalg::Vector> UdrReconstructor::ReconstructColumnGrid(
    const linalg::Vector& disguised_column,
    const stats::ScalarDistribution& noise_marginal) const {
  RR_ASSIGN_OR_RETURN(
      stats::GridDensity fx,
      stats::ReconstructDensity(disguised_column, noise_marginal,
                                options_.density_options));

  const size_t grid = fx.points.size();
  linalg::Vector guess(disguised_column.size());
  for (size_t i = 0; i < disguised_column.size(); ++i) {
    const double y = disguised_column[i];
    // Eq. 4 as a grid sum: Σ a·fX(a)·fR(y−a) / Σ fX(a)·fR(y−a).
    double numerator = 0.0;
    double denominator = 0.0;
    for (size_t k = 0; k < grid; ++k) {
      const double weight = fx.density[k] * noise_marginal.Pdf(y - fx.points[k]);
      numerator += fx.points[k] * weight;
      denominator += weight;
    }
    // If y falls where the posterior has no mass (possible only in the
    // far tails), fall back to the NDR guess.
    guess[i] = denominator > 0.0 ? numerator / denominator : y;
  }
  return guess;
}

linalg::Vector UdrReconstructor::ReconstructColumnGaussian(
    const linalg::Vector& disguised_column, double noise_variance) const {
  const double mu = linalg::Mean(disguised_column);
  // Var(Y) = Var(X) + σ²  (Theorem 5.1, univariate case).
  const double signal_variance =
      std::max(0.0, linalg::Variance(disguised_column) - noise_variance);
  const double shrink = signal_variance + noise_variance > 0.0
                            ? signal_variance / (signal_variance + noise_variance)
                            : 0.0;
  linalg::Vector guess(disguised_column.size());
  for (size_t i = 0; i < disguised_column.size(); ++i) {
    guess[i] = mu + shrink * (disguised_column[i] - mu);
  }
  return guess;
}

}  // namespace core
}  // namespace randrecon
