#include "core/covariance_estimation.h"

#include <algorithm>

#include "core/reconstructor.h"
#include "linalg/eigen.h"
#include "linalg/matrix_util.h"
#include "stats/moments.h"

namespace randrecon {
namespace core {
namespace {

/// Replaces the non-principal eigenvalues (below the largest descending
/// gap) by their mean, clamped at `floor`. The eigendecomposition and the
/// Q Λ Qᵀ recomposition both run on the blocked kernel layer
/// (linalg/kernels.h), so this stays cheap at high dimension.
Result<linalg::Matrix> AverageBulkEigenvalues(const linalg::Matrix& cov,
                                              double floor) {
  RR_ASSIGN_OR_RETURN(linalg::EigenDecomposition eig,
                      linalg::SymmetricEigen(cov));
  linalg::Vector values = eig.eigenvalues;
  const size_t m = values.size();
  if (m < 2) return cov;
  size_t split = 1;
  double best_gap = values[0] - values[1];
  for (size_t i = 1; i + 1 < m; ++i) {
    const double gap = values[i] - values[i + 1];
    if (gap > best_gap) {
      best_gap = gap;
      split = i + 1;
    }
  }
  double mean = 0.0;
  for (size_t i = split; i < m; ++i) mean += values[i];
  mean = std::max(mean / static_cast<double>(m - split), floor);
  for (size_t i = split; i < m; ++i) values[i] = mean;
  for (double& v : values) v = std::max(v, floor);
  return linalg::ComposeFromEigen(values, eig.eigenvectors);
}

}  // namespace

Result<linalg::Matrix> EstimateOriginalCovariance(
    linalg::Matrix disguised_covariance, const perturb::NoiseModel& noise,
    const MomentEstimationOptions& options) {
  if (disguised_covariance.rows() != noise.num_attributes() ||
      disguised_covariance.cols() != noise.num_attributes()) {
    return Status::InvalidArgument(
        "EstimateOriginalCovariance: covariance dimension != noise model");
  }
  // Theorem 8.2: Σy = Σx + Σr, hence Σ̂x = Σy − Σr. For independent noise
  // Σr is diagonal (= σ²I) and this is exactly Theorem 5.1's "subtract σ²
  // from the diagonal".
  linalg::Matrix cov = std::move(disguised_covariance);
  cov -= noise.covariance();

  if (options.bulk_average_nonprincipal) {
    RR_ASSIGN_OR_RETURN(
        cov, AverageBulkEigenvalues(cov, std::max(options.eigen_floor, 0.0)));
  } else if (options.clip_to_psd) {
    RR_ASSIGN_OR_RETURN(
        cov, linalg::ClipToPositiveSemiDefinite(cov, options.eigen_floor));
  }
  return cov;
}

Result<OriginalMoments> EstimateOriginalMoments(
    const linalg::Matrix& disguised, const perturb::NoiseModel& noise,
    const MomentEstimationOptions& options) {
  RR_RETURN_NOT_OK(ValidateShapes(disguised, noise));
  if (disguised.rows() < 2) {
    return Status::InvalidArgument(
        "EstimateOriginalMoments: need at least 2 records");
  }

  OriginalMoments out;
  out.mean = stats::ColumnMeans(disguised);
  RR_ASSIGN_OR_RETURN(out.covariance,
                      EstimateOriginalCovariance(
                          stats::SampleCovariance(disguised), noise, options));
  return out;
}

}  // namespace core
}  // namespace randrecon
