#include "core/serial_reconstruction.h"

#include "core/be_dr.h"
#include "data/timeseries.h"
#include "perturb/noise_model.h"

namespace randrecon {
namespace core {

Result<linalg::Vector> SerialCorrelationReconstructor::Reconstruct(
    const linalg::Vector& disguised_series, double noise_variance) const {
  const size_t window = options_.window;
  if (window < 1) {
    return Status::InvalidArgument("SerialReconstruction: window must be >= 1");
  }
  if (noise_variance <= 0.0) {
    return Status::InvalidArgument(
        "SerialReconstruction: noise_variance must be positive");
  }
  if (disguised_series.size() < 2 * window) {
    return Status::InvalidArgument(
        "SerialReconstruction: series of length " +
        std::to_string(disguised_series.size()) +
        " is too short for window " + std::to_string(window));
  }

  // Embed: serial correlation -> attribute correlation.
  const linalg::Matrix windows =
      data::EmbedSeries(disguised_series, window);

  // Caveat on Theorem 5.1 here: within one window row the noise entries
  // are independent, and across rows each y_t reappears with the *same*
  // noise draw — which leaves the window-covariance estimate unbiased
  // (same diagonal-only shift), so the standard estimator still applies.
  const perturb::NoiseModel noise = perturb::NoiseModel::IndependentGaussian(
      window, std::sqrt(noise_variance));
  BayesEstimateReconstructor be;
  RR_ASSIGN_OR_RETURN(linalg::Matrix reconstructed_windows,
                      be.Reconstruct(windows, noise));

  // Un-embed: each sample's estimate is the average over the up-to-w
  // windows that contain it.
  return data::UnembedSeriesAverage(reconstructed_windows,
                                    disguised_series.size());
}

}  // namespace core
}  // namespace randrecon
