#include "core/reconstructor.h"

namespace randrecon {
namespace core {

Status ValidateShapes(const linalg::Matrix& disguised,
                      const perturb::NoiseModel& noise) {
  if (disguised.cols() != noise.num_attributes()) {
    return Status::InvalidArgument(
        "Reconstruct: data has " + std::to_string(disguised.cols()) +
        " attributes but noise model describes " +
        std::to_string(noise.num_attributes()));
  }
  if (disguised.rows() == 0) {
    return Status::InvalidArgument("Reconstruct: empty dataset");
  }
  return Status::OK();
}

}  // namespace core
}  // namespace randrecon
