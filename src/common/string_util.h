// Small string helpers shared by CSV I/O, logging, and the experiment
// report printers.

#ifndef RANDRECON_COMMON_STRING_UTIL_H_
#define RANDRECON_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace randrecon {

/// Splits `input` on `delimiter`, preserving empty fields
/// ("a,,b" -> {"a", "", "b"}).
std::vector<std::string> SplitString(std::string_view input, char delimiter);

/// Removes leading and trailing ASCII whitespace.
std::string TrimWhitespace(std::string_view input);

/// Joins `parts` with `separator`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view separator);

/// Formats `value` with `precision` digits after the decimal point.
std::string FormatDouble(double value, int precision = 6);

/// Left-pads or truncates `text` to exactly `width` characters (for the
/// fixed-width tables the experiment runner prints).
std::string PadLeft(std::string_view text, size_t width);

/// Right-pads or truncates `text` to exactly `width` characters.
std::string PadRight(std::string_view text, size_t width);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Parses a double, returning false on any trailing garbage or empty input.
bool ParseDouble(std::string_view text, double* out);

}  // namespace randrecon

#endif  // RANDRECON_COMMON_STRING_UTIL_H_
