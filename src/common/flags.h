// Minimal --key=value command-line parsing for the benchmark and example
// binaries. Every binary runs with sensible defaults and no arguments;
// flags exist so a user can re-run a figure with their own n, sigma,
// trial count or seed without recompiling.

#ifndef RANDRECON_COMMON_FLAGS_H_
#define RANDRECON_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace randrecon {

/// Parsed command line: flags of the form --name=value (or --name for
/// booleans) plus positional arguments.
class Flags {
 public:
  /// Parses argv. Fails with InvalidArgument on malformed flags
  /// (e.g. "--=x") or duplicate flag names.
  static Result<Flags> Parse(int argc, const char* const* argv);

  /// True iff --name was supplied.
  bool Has(const std::string& name) const;

  /// String value of --name, or `fallback` if absent.
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;

  /// Integer value of --name; fails with InvalidArgument if present but
  /// non-numeric.
  Result<int64_t> GetInt(const std::string& name, int64_t fallback) const;

  /// Double value of --name; fails with InvalidArgument if present but
  /// non-numeric.
  Result<double> GetDouble(const std::string& name, double fallback) const;

  /// Boolean: --name or --name=true/1 -> true; --name=false/0 -> false.
  Result<bool> GetBool(const std::string& name, bool fallback) const;

  /// Arguments that did not start with "--", in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Names that were parsed but never read by any Get*/Has call —
  /// typo detection for bench users.
  std::vector<std::string> UnusedFlags() const;

 private:
  Flags() = default;

  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> touched_;
  std::vector<std::string> positional_;
};

}  // namespace randrecon

#endif  // RANDRECON_COMMON_FLAGS_H_
