// Bounded MPMC queue: the backpressure primitive every producer/consumer
// edge of the ingest core rides on.
//
// A BoundedQueue<T> is a mutex + two condition variables over a deque
// with a hard capacity — deliberately boring concurrency, chosen so the
// shutdown and deadline semantics can be exact rather than clever:
//
//   * Push blocks while the queue is full; Pop blocks while it is
//     empty. TryPush/TryPop never block. PushUntil/PopUntil block no
//     later than an absolute trace::NowNanos() deadline.
//   * Close() wakes every blocked producer AND consumer. A closed queue
//     rejects pushes (kClosed, the caller's value is untouched) but
//     keeps serving pops until drained — Pop returns kClosed only once
//     the queue is BOTH closed and empty, so no accepted element is
//     ever lost to shutdown (the drain-after-close contract the ingest
//     writer's accounting identity depends on).
//   * A failed push of any flavor leaves the caller's value unmoved, so
//     an admission-controlled producer can shed or retry the same batch.
//
// Deadlines come from trace::NowNanos() — the same injectable clock as
// every timing primitive in the repo — so deadline-expiry tests pin
// exact outcomes with a FakeClockGuard and an already-expired deadline
// instead of real sleeps. (Under a fake clock a FUTURE deadline still
// waits in real time between checks; deterministic tests use expired
// deadlines, race tests use real short ones.)
//
// Telemetry: an optional BoundedQueueInstruments wires a depth gauge
// (set under the lock after every successful push/pop) and block-time
// histograms (recorded only when an operation actually blocked, so the
// histogram count IS the number of blocked ops). The queue itself never
// reads a metric — telemetry observes, it never perturbs
// (docs/ARCHITECTURE.md).

#ifndef RANDRECON_COMMON_BOUNDED_QUEUE_H_
#define RANDRECON_COMMON_BOUNDED_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>

#include "common/check.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace randrecon {

/// Outcome of one queue operation.
enum class QueueOpResult {
  /// The element was enqueued / dequeued.
  kOk,
  /// Push: the queue is closed. Pop: closed AND drained — no element
  /// will ever arrive again.
  kClosed,
  /// PushUntil/PopUntil: the deadline passed first. The caller's value
  /// (push) is untouched.
  kTimedOut,
  /// TryPush: the queue is at capacity right now.
  kFull,
  /// TryPop: the queue is empty right now (but not closed).
  kEmpty,
};

/// Short stable name for a QueueOpResult, e.g. "TimedOut".
inline const char* QueueOpResultToString(QueueOpResult result) {
  switch (result) {
    case QueueOpResult::kOk:
      return "Ok";
    case QueueOpResult::kClosed:
      return "Closed";
    case QueueOpResult::kTimedOut:
      return "TimedOut";
    case QueueOpResult::kFull:
      return "Full";
    case QueueOpResult::kEmpty:
      return "Empty";
  }
  return "Unknown";
}

/// Optional instruments a queue publishes into (common/metrics.h). The
/// queue is a generic primitive, so it does not own metric names — the
/// owner (e.g. pipeline/ingest.cc) registers the instruments and hands
/// in pointers, which must outlive the queue. Null pointers disable the
/// corresponding instrument.
struct BoundedQueueInstruments {
  /// Current element count, Set under the queue lock after every
  /// successful push/pop — so the gauge never shows a depth the queue
  /// did not actually pass through.
  metrics::Gauge* depth = nullptr;
  /// Nanoseconds a push spent blocked (recorded only for pushes that
  /// actually waited — the count is the number of blocked pushes).
  metrics::Histogram* push_block_nanos = nullptr;
  /// Nanoseconds a pop spent blocked, same recording rule.
  metrics::Histogram* pop_block_nanos = nullptr;
};

template <typename T>
class BoundedQueue {
 public:
  /// A queue holding at most `capacity` (>= 1) elements.
  explicit BoundedQueue(size_t capacity,
                        BoundedQueueInstruments instruments = {})
      : capacity_(capacity), instruments_(instruments) {
    RR_CHECK(capacity_ >= 1) << "BoundedQueue capacity must be >= 1";
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is room (kOk) or the queue closes (kClosed —
  /// `value` is untouched).
  QueueOpResult Push(T&& value) {
    return PushInternal(value, /*bounded=*/false, /*deadline_nanos=*/0,
                        /*blocking=*/true);
  }

  /// Never blocks: kOk, kFull, or kClosed (`value` untouched on both
  /// failures).
  QueueOpResult TryPush(T&& value) {
    return PushInternal(value, /*bounded=*/false, /*deadline_nanos=*/0,
                        /*blocking=*/false);
  }

  /// Blocks until room, close, or `trace::NowNanos() >= deadline_nanos`
  /// — whichever first (kOk / kClosed / kTimedOut). An already-expired
  /// deadline degrades to TryPush (a full queue times out immediately
  /// rather than failing kFull, since the deadline HAS passed).
  QueueOpResult PushUntil(T&& value, uint64_t deadline_nanos) {
    return PushInternal(value, /*bounded=*/true, deadline_nanos,
                        /*blocking=*/true);
  }

  /// Blocks until an element arrives (kOk) or the queue is closed and
  /// drained (kClosed).
  QueueOpResult Pop(T* out) {
    return PopInternal(out, /*bounded=*/false, /*deadline_nanos=*/0,
                       /*blocking=*/true);
  }

  /// Never blocks: kOk, kEmpty, or kClosed (closed and drained).
  QueueOpResult TryPop(T* out) {
    return PopInternal(out, /*bounded=*/false, /*deadline_nanos=*/0,
                       /*blocking=*/false);
  }

  /// Blocks until an element, closed-and-drained, or the deadline —
  /// whichever first (kOk / kClosed / kTimedOut).
  QueueOpResult PopUntil(T* out, uint64_t deadline_nanos) {
    return PopInternal(out, /*bounded=*/true, deadline_nanos,
                       /*blocking=*/true);
  }

  /// Closes the queue: every blocked and future push fails kClosed,
  /// pops keep draining what was accepted, and every blocked waiter on
  /// either side wakes now. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  /// True once Close() has run (elements may still be draining).
  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  /// Elements currently queued. A momentary value under concurrency.
  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  /// `value` is moved from ONLY on the kOk path.
  QueueOpResult PushInternal(T& value, bool bounded, uint64_t deadline_nanos,
                             bool blocking) {
    std::unique_lock<std::mutex> lock(mutex_);
    bool blocked = false;
    uint64_t blocked_since = 0;
    while (true) {
      if (closed_) {
        RecordBlock(instruments_.push_block_nanos, blocked, blocked_since);
        return QueueOpResult::kClosed;
      }
      if (queue_.size() < capacity_) break;
      if (!blocking) return QueueOpResult::kFull;
      const uint64_t now = trace::NowNanos();
      if (bounded && now >= deadline_nanos) {
        RecordBlock(instruments_.push_block_nanos, blocked, blocked_since);
        return QueueOpResult::kTimedOut;
      }
      if (!blocked) {
        blocked = true;
        blocked_since = now;
      }
      if (bounded) {
        not_full_.wait_for(lock,
                           std::chrono::nanoseconds(deadline_nanos - now));
      } else {
        not_full_.wait(lock);
      }
    }
    queue_.push_back(std::move(value));
    SetDepth(queue_.size());
    RecordBlock(instruments_.push_block_nanos, blocked, blocked_since);
    lock.unlock();
    not_empty_.notify_one();
    return QueueOpResult::kOk;
  }

  QueueOpResult PopInternal(T* out, bool bounded, uint64_t deadline_nanos,
                            bool blocking) {
    std::unique_lock<std::mutex> lock(mutex_);
    bool blocked = false;
    uint64_t blocked_since = 0;
    while (true) {
      if (!queue_.empty()) break;
      if (closed_) {
        // Closed AND drained — the queue's terminal state.
        RecordBlock(instruments_.pop_block_nanos, blocked, blocked_since);
        return QueueOpResult::kClosed;
      }
      if (!blocking) return QueueOpResult::kEmpty;
      const uint64_t now = trace::NowNanos();
      if (bounded && now >= deadline_nanos) {
        RecordBlock(instruments_.pop_block_nanos, blocked, blocked_since);
        return QueueOpResult::kTimedOut;
      }
      if (!blocked) {
        blocked = true;
        blocked_since = now;
      }
      if (bounded) {
        not_empty_.wait_for(lock,
                            std::chrono::nanoseconds(deadline_nanos - now));
      } else {
        not_empty_.wait(lock);
      }
    }
    *out = std::move(queue_.front());
    queue_.pop_front();
    SetDepth(queue_.size());
    RecordBlock(instruments_.pop_block_nanos, blocked, blocked_since);
    lock.unlock();
    not_full_.notify_one();
    return QueueOpResult::kOk;
  }

  void SetDepth(size_t depth) {
    if (instruments_.depth != nullptr) {
      instruments_.depth->Set(static_cast<int64_t>(depth));
    }
  }

  /// Records the elapsed block time iff the op blocked at all.
  void RecordBlock(metrics::Histogram* histogram, bool blocked,
                   uint64_t blocked_since) {
    if (histogram != nullptr && blocked) {
      histogram->Record(trace::NowNanos() - blocked_since);
    }
  }

  const size_t capacity_;
  const BoundedQueueInstruments instruments_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace randrecon

#endif  // RANDRECON_COMMON_BOUNDED_QUEUE_H_
