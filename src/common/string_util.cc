#include "common/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace randrecon {

std::vector<std::string> SplitString(std::string_view input, char delimiter) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delimiter, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(input.substr(start));
      break;
    }
    fields.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return fields;
}

std::string TrimWhitespace(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return std::string(input.substr(begin, end - begin));
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

std::string FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string PadLeft(std::string_view text, size_t width) {
  if (text.size() >= width) return std::string(text.substr(0, width));
  return std::string(width - text.size(), ' ') + std::string(text);
}

std::string PadRight(std::string_view text, size_t width) {
  if (text.size() >= width) return std::string(text.substr(0, width));
  return std::string(text) + std::string(width - text.size(), ' ');
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ParseDouble(std::string_view text, double* out) {
  std::string trimmed = TrimWhitespace(text);
  if (trimmed.empty()) return false;
  // std::from_chars for double is available in GCC 11+; use it for a
  // locale-independent parse.
  const char* begin = trimmed.data();
  const char* end = begin + trimmed.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

}  // namespace randrecon
