#include "common/run_report.h"

#include <cstdio>
#include <fstream>

#include "common/build_info.h"
#include "common/failpoint.h"
#include "common/metrics.h"

namespace randrecon {
namespace report {
namespace {

// The report publication seams (common/failpoint.h): a report rides the
// same write-temp → rename protocol as every store file, and these two
// points let tests (and the CI fault matrix) prove a full disk or EIO
// at either step leaves neither a truncated report nor a stray temp.
Failpoint fp_report_write("report.write");    ///< Before the temp write.
Failpoint fp_report_rename("report.rename");  ///< Before the rename.

}  // namespace

std::string JsonEscape(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        escaped.append("\\\"");
        break;
      case '\\':
        escaped.append("\\\\");
        break;
      case '\n':
        escaped.append("\\n");
        break;
      case '\r':
        escaped.append("\\r");
        break;
      case '\t':
        escaped.append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned char>(c));
          escaped.append(buffer);
        } else {
          escaped.push_back(c);
        }
    }
  }
  return escaped;
}

RunReportBuilder::RunReportBuilder(std::string tool) : tool_(std::move(tool)) {}

void RunReportBuilder::AddConfig(const std::string& key,
                                 const std::string& value) {
  config_.emplace_back(key, "\"" + JsonEscape(value) + "\"");
}

void RunReportBuilder::AddConfigInt(const std::string& key, int64_t value) {
  config_.emplace_back(key, std::to_string(value));
}

void RunReportBuilder::AddConfigDouble(const std::string& key, double value) {
  char buffer[40];
  // %.17g round-trips every finite double; JSON has no inf/nan.
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  std::string rendered = buffer;
  if (rendered.find_first_of("nN") != std::string::npos) rendered = "null";
  config_.emplace_back(key, std::move(rendered));
}

void RunReportBuilder::AddConfigBool(const std::string& key, bool value) {
  config_.emplace_back(key, value ? "true" : "false");
}

void RunReportBuilder::AddRawSection(const std::string& key,
                                     std::string json) {
  sections_.emplace_back(key, std::move(json));
}

void RunReportBuilder::SetSpans(std::vector<trace::Span> spans) {
  spans_ = std::move(spans);
}

std::string RunReportBuilder::ToJson() const {
  std::string json = "{\"schema_version\":" +
                     std::to_string(kRunReportSchemaVersion) + ",\"tool\":\"" +
                     JsonEscape(tool_) + "\",\"build_info\":" +
                     BuildInfoJson() + ",\"config\":{";
  bool first = true;
  for (const auto& entry : config_) {
    if (!first) json.append(",");
    first = false;
    json.append("\"" + JsonEscape(entry.first) + "\":" + entry.second);
  }
  json.append("},");
  // SnapshotJson() is {"counters":...,"gauges":...,"histograms":...} —
  // splice its members as our own.
  const std::string metrics_json = metrics::SnapshotJson();
  json.append(metrics_json.substr(1, metrics_json.size() - 2));
  json.append(",\"spans\":" + trace::SpanTreeJson(spans_));
  for (const auto& section : sections_) {
    json.append(",\"" + JsonEscape(section.first) + "\":" + section.second);
  }
  json.append("}");
  return json;
}

Status RunReportBuilder::WriteFile(const std::string& path) const {
  const std::string temp_path = path + ".tmp";
  RR_FAILPOINT(fp_report_write);
  {
    std::ofstream file(temp_path, std::ios::binary | std::ios::trunc);
    if (!file.is_open()) {
      return Status::IoError("cannot create report temp file '" + temp_path +
                             "'");
    }
    file << ToJson() << "\n";
    file.flush();
    if (!file.good()) {
      std::remove(temp_path.c_str());
      return Status::IoError("cannot write report to '" + temp_path + "'");
    }
  }
  const Status renamed = [&]() -> Status {
    RR_FAILPOINT(fp_report_rename);
    if (std::rename(temp_path.c_str(), path.c_str()) != 0) {
      return Status::IoError("cannot rename report '" + temp_path + "' to '" +
                             path + "'");
    }
    return Status::OK();
  }();
  if (!renamed.ok()) {
    std::remove(temp_path.c_str());  // A failed publish leaves no temp.
    return renamed;
  }
  return Status::OK();
}

}  // namespace report
}  // namespace randrecon
