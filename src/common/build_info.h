#ifndef RANDRECON_COMMON_BUILD_INFO_H_
#define RANDRECON_COMMON_BUILD_INFO_H_

/// \file
/// Build provenance, stamped once at compile/configure time and surfaced
/// everywhere a run leaves a trace: the RR_LOG startup banner, the
/// `build_info` block of every run report (docs/REPORT_SCHEMA.md, schema
/// v2), and the stats server's /statusz endpoint. When a report or a
/// scrape shows a surprising number, the first question is always "which
/// binary produced this?" — this answers it without a shell.
///
/// The git describe / compiler-flag strings are injected by CMake as
/// compile definitions scoped to build_info.cc only, so touching a flag
/// re-stamps one translation unit instead of the world.

#include <string>

namespace randrecon {

/// Immutable facts about this binary. All pointers are string literals
/// (or CMake-stamped macros) with static storage duration.
struct BuildInfo {
  const char* git_describe;   ///< `git describe --always --dirty` at configure.
  const char* compiler;       ///< Compiler identification (__VERSION__).
  const char* flags;          ///< CXX flags the library was built with.
  const char* build_type;     ///< CMAKE_BUILD_TYPE ("Release", ...).
  const char* simd_compiled;  ///< Widest SIMD ISA the kernels compiled to.
  const char* simd_dispatch;  ///< Philox engine runtime dispatch would pick
                              ///< ("avx512" / "avx2" / "scalar"; honours
                              ///< RANDRECON_NO_SIMD). Pinned equal to
                              ///< stats::philox_internal::ActiveEngine() by
                              ///< tests/common/build_info_test.cc.
  bool metrics_disabled;      ///< True iff -DRANDRECON_DISABLE_METRICS.
};

/// The process-wide build info (Meyers singleton; simd_dispatch is
/// resolved on first call and then frozen, mirroring philox's policy).
const BuildInfo& GetBuildInfo();

/// The build info as a flat JSON object, e.g.
/// {"git_describe":"1a2b3c4","compiler":"...","flags":"...",
///  "build_type":"Release","simd_compiled":"avx2",
///  "simd_dispatch":"avx2","metrics_disabled":false}.
/// Key order is fixed; run reports and /statusz embed this verbatim.
std::string BuildInfoJson();

/// Emits the one-line startup banner through RR_LOG(kInfo). Daemons call
/// this once at startup so every log stream self-identifies its binary.
void LogBuildInfoBanner();

}  // namespace randrecon

#endif  // RANDRECON_COMMON_BUILD_INFO_H_
