#include "common/flags.h"

#include "common/string_util.h"

namespace randrecon {

Result<Flags> Flags::Parse(int argc, const char* const* argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      flags.positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const size_t eq = body.find('=');
    const std::string name = eq == std::string::npos ? body : body.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "true" : body.substr(eq + 1);
    if (name.empty()) {
      return Status::InvalidArgument("Flags: malformed argument '" + arg + "'");
    }
    if (flags.values_.count(name) > 0) {
      return Status::InvalidArgument("Flags: duplicate flag --" + name);
    }
    flags.values_[name] = value;
    flags.touched_[name] = false;
  }
  return flags;
}

bool Flags::Has(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) return false;
  touched_[name] = true;
  return true;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  touched_[name] = true;
  return it->second;
}

Result<int64_t> Flags::GetInt(const std::string& name,
                              int64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  touched_[name] = true;
  double parsed = 0.0;
  if (!ParseDouble(it->second, &parsed) ||
      parsed != static_cast<double>(static_cast<int64_t>(parsed))) {
    return Status::InvalidArgument("Flags: --" + name +
                                   " expects an integer, got '" + it->second +
                                   "'");
  }
  return static_cast<int64_t>(parsed);
}

Result<double> Flags::GetDouble(const std::string& name,
                                double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  touched_[name] = true;
  double parsed = 0.0;
  if (!ParseDouble(it->second, &parsed)) {
    return Status::InvalidArgument("Flags: --" + name +
                                   " expects a number, got '" + it->second +
                                   "'");
  }
  return parsed;
}

Result<bool> Flags::GetBool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  touched_[name] = true;
  const std::string& value = it->second;
  if (value == "true" || value == "1") return true;
  if (value == "false" || value == "0") return false;
  return Status::InvalidArgument("Flags: --" + name +
                                 " expects true/false, got '" + value + "'");
}

std::vector<std::string> Flags::UnusedFlags() const {
  std::vector<std::string> unused;
  for (const auto& [name, touched] : touched_) {
    if (!touched) unused.push_back(name);
  }
  return unused;
}

}  // namespace randrecon
