// Tracing: RAII scoped timers that record into per-thread buffers and
// flatten to a deterministic parent/child span tree, plus the clock
// abstraction every timing primitive in the repo (Stopwatch included)
// reads.
//
// A TraceSpan brackets one stage of work ("attack.pass1_means", one
// pipeline job, one recovery pass). Construction stamps the start,
// destruction the duration — so early `Status` returns and exceptions
// close spans correctly by scope exit. Nesting is tracked with a
// per-thread open-span stack: a span's parent is whatever span was
// open on the same thread when it started, giving a forest per thread.
//
// Cost discipline: tracing is OFF by default. A disarmed TraceSpan with
// no histogram attached is one relaxed atomic load and a branch — the
// failpoint discipline — and reads no clock at all. Spans buffer only
// between StartTracing() and StopTracing(); a span may ALSO feed a
// metrics::Histogram (latency percentiles), which records whether or
// not tracing is on. Span capture never allocates under a lock on the
// hot path: each thread appends to its own buffer.
//
// Clock: every timestamp comes from trace::NowNanos(), which reads an
// injectable process-global clock (default: steady_clock). Tests
// install a manually-advanced fake via FakeClockGuard, so latency
// histograms and span durations are deterministic with no real sleeps
// (the Stopwatch satellite of the same contract: common/stopwatch.h is
// a thin wrapper over this clock).
//
// Determinism contract: tracing observes, it never perturbs — no
// instrumented path branches on trace state, so numerics are bitwise
// identical with tracing on or off.

#ifndef RANDRECON_COMMON_TRACE_H_
#define RANDRECON_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.h"

namespace randrecon {
namespace trace {

/// Nanoseconds from the process-global clock: steady_clock normally, a
/// FakeClockGuard's manual counter under test. Monotonic non-decreasing
/// in both modes.
uint64_t NowNanos();

/// Installs a manually-advanced fake clock for the guard's lifetime
/// (restores the previous clock on destruction). The fake starts at
/// `start_nanos` and moves only via Advance/Set — so any latency
/// recorded under it is an exact, test-pinnable number. Guards do not
/// nest per thread-safety simplicity: one at a time, test-only.
class FakeClockGuard {
 public:
  explicit FakeClockGuard(uint64_t start_nanos = 0);
  ~FakeClockGuard();
  FakeClockGuard(const FakeClockGuard&) = delete;
  FakeClockGuard& operator=(const FakeClockGuard&) = delete;

  void Advance(uint64_t nanos);
  /// Jumps to an absolute reading (must not move backwards).
  void Set(uint64_t nanos);
};

/// One completed span, as flattened by StopTracing().
struct Span {
  /// The literal passed to TraceSpan.
  std::string name;
  uint64_t start_nanos = 0;
  uint64_t duration_nanos = 0;
  /// Index (into the flattened vector) of the enclosing span on the
  /// same thread, -1 for a root. Always < this span's own index, so the
  /// flat array IS a topologically-ordered tree.
  int parent = -1;
  /// Dense capture-local thread ordinal (0 = the thread that called
  /// StartTracing() first records, then by first-span order).
  int thread = 0;
};

/// True while a StartTracing()/StopTracing() capture is open — the one
/// relaxed load a disarmed TraceSpan costs.
bool TracingEnabled();

/// Opens a capture: clears every thread's span buffer and enables
/// recording. Captures are process-global and do not nest.
void StartTracing();

/// Closes the capture and returns every completed span, flattened
/// deterministically: threads ordered by first-span start (ties by
/// registration), spans within a thread in start order, parents before
/// children. Spans still open on other threads at stop time are
/// dropped (a capture should bracket quiesced work).
std::vector<Span> StopTracing();

/// `spans` rendered as a JSON array (docs/REPORT_SCHEMA.md "spans"):
///   [{"name":"attack.pass1_means","start_ns":0,"duration_ns":5,
///     "parent":-1,"thread":0}, ...]
std::string SpanTreeJson(const std::vector<Span>& spans);

// ---------------------------------------------------------------------------
// Recent-capture ring — the substrate of the stats server's /tracez.
// A daemon that traces a unit of work (e.g. one scheduler cycle) pushes
// the finished span tree here; the ring keeps the newest
// kRecentCaptureRing captures so a live scrape can always show "what
// did the last few cycles do" without unbounded memory. Mutex-guarded:
// pushes happen per cycle (not per span), never on a hot path.
// ---------------------------------------------------------------------------

constexpr size_t kRecentCaptureRing = 16;

/// One finished capture retained for /tracez.
struct RecentCapture {
  uint64_t id = 0;  ///< Monotone push sequence (1-based, process-wide).
  std::string label;
  uint64_t captured_nanos = 0;  ///< NowNanos() at push.
  std::vector<Span> spans;
};

/// Retains a finished capture (typically the StopTracing() result of one
/// work unit), evicting the oldest beyond kRecentCaptureRing.
void PushRecentCapture(std::string label, std::vector<Span> spans);

/// Newest-first retained captures; `max` = 0 returns all retained.
std::vector<RecentCapture> RecentCaptures(size_t max = 0);

/// Empties the ring (tests).
void ClearRecentCaptures();

/// RAII scoped timer. `name` must outlive the span (string literals).
/// When `latency` is non-null the span's duration is Record()ed into it
/// on destruction — tracing on or off — which is how the per-stage
/// latency histograms are fed.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name,
                     metrics::Histogram* latency = nullptr);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Closes the span now instead of at scope exit (e.g. to exclude
  /// result assembly from a measured stage). Idempotent; the destructor
  /// becomes a no-op afterwards.
  void Finish();

 private:
  const char* name_;
  metrics::Histogram* latency_;
  uint64_t start_nanos_ = 0;
  /// Buffer slot this span occupies on its thread, -1 when not
  /// capturing (disarmed, or opened before StartTracing()).
  int slot_ = -1;
  /// The capture this span recorded into — a stale epoch at destruction
  /// means the capture ended (or a new one began) mid-span and the slot
  /// must not be touched.
  uint64_t epoch_ = 0;
  bool timed_ = false;
};

}  // namespace trace
}  // namespace randrecon

#endif  // RANDRECON_COMMON_TRACE_H_
