#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>

#include "common/check.h"

namespace randrecon {
namespace metrics {

/// Process-wide registry, mirroring FailpointRegistry: a Meyers
/// singleton reached only through Instance(), because instruments
/// register from static initializers in arbitrary TU order and the
/// first registration must find a live registry. Namespace scope (not
/// anonymous) so the friend declarations grant it value access.
class MetricsRegistry {
 public:
  static MetricsRegistry& Instance() {
    static MetricsRegistry* registry = new MetricsRegistry();
    return *registry;
  }

  void Register(Counter* counter) {
    std::lock_guard<std::mutex> lock(mutex_);
    const bool inserted = counters_.emplace(counter->name(), counter).second;
    RR_CHECK(inserted) << "duplicate counter name '" << counter->name() << "'";
  }

  void Register(Gauge* gauge) {
    std::lock_guard<std::mutex> lock(mutex_);
    const bool inserted = gauges_.emplace(gauge->name(), gauge).second;
    RR_CHECK(inserted) << "duplicate gauge name '" << gauge->name() << "'";
  }

  void Register(Histogram* histogram) {
    std::lock_guard<std::mutex> lock(mutex_);
    const bool inserted =
        histograms_.emplace(histogram->name(), histogram).second;
    RR_CHECK(inserted) << "duplicate histogram name '" << histogram->name()
                       << "'";
  }

  MetricsSnapshot Snapshot() {
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snapshot;
    snapshot.counters.reserve(counters_.size());
    for (const auto& entry : counters_) {  // std::map iterates sorted.
      snapshot.counters.push_back({entry.first, entry.second->Value()});
    }
    snapshot.gauges.reserve(gauges_.size());
    for (const auto& entry : gauges_) {
      snapshot.gauges.push_back({entry.first, entry.second->Value()});
    }
    snapshot.histograms.reserve(histograms_.size());
    for (const auto& entry : histograms_) {
      HistogramSnapshot hs = entry.second->ConsistentSnapshot();
      hs.name = entry.first;
      snapshot.histograms.push_back(std::move(hs));
    }
    return snapshot;
  }

  void ResetAll() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& entry : counters_) {
      entry.second->value_.store(0, std::memory_order_relaxed);
    }
    for (auto& entry : gauges_) {
      entry.second->value_.store(0, std::memory_order_relaxed);
    }
    for (auto& entry : histograms_) {
      Histogram* h = entry.second;
      for (size_t b = 0; b < kHistogramBuckets; ++b) {
        h->buckets_[b].store(0, std::memory_order_relaxed);
      }
      h->count_.store(0, std::memory_order_relaxed);
      h->sum_.store(0, std::memory_order_relaxed);
      h->min_.store(~uint64_t{0}, std::memory_order_relaxed);
      h->max_.store(0, std::memory_order_relaxed);
    }
  }

  std::vector<std::string> List() {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    names.reserve(counters_.size() + gauges_.size() + histograms_.size());
    for (const auto& entry : counters_) names.push_back(entry.first);
    for (const auto& entry : gauges_) names.push_back(entry.first);
    for (const auto& entry : histograms_) names.push_back(entry.first);
    std::sort(names.begin(), names.end());
    return names;
  }

 private:
  MetricsRegistry() = default;

  std::mutex mutex_;
  std::map<std::string, Counter*> counters_;
  std::map<std::string, Gauge*> gauges_;
  std::map<std::string, Histogram*> histograms_;
};

Counter::Counter(const char* name) : name_(name) {
  MetricsRegistry::Instance().Register(this);
}

Gauge::Gauge(const char* name) : name_(name) {
  MetricsRegistry::Instance().Register(this);
}

Histogram::Histogram(const char* name) : name_(name) {
  MetricsRegistry::Instance().Register(this);
}

size_t Histogram::BucketIndex(uint64_t value) {
  if (value == 0) return 0;
  // 1 + floor(log2(value)): value 1 -> bucket 1, [2,4) -> 2, [4,8) -> 3.
  size_t index = 1;
  while (value > 1) {
    value >>= 1;
    ++index;
  }
  return std::min(index, kHistogramBuckets - 1);
}

uint64_t Histogram::BucketUpperBound(size_t bucket) {
  if (bucket == 0) return 0;
  if (bucket >= kHistogramBuckets - 1) return ~uint64_t{0};
  return (uint64_t{1} << bucket) - 1;
}

void Histogram::Record(uint64_t value) {
#ifndef RANDRECON_DISABLE_METRICS
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  // Relaxed CAS min/max: losing a race retries, so the final extremum is
  // exact once concurrent recorders have quiesced.
  uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
#else
  (void)value;
#endif
}

uint64_t Histogram::Min() const {
  const uint64_t min = min_.load(std::memory_order_relaxed);
  return min == ~uint64_t{0} ? 0 : min;
}

uint64_t Histogram::Max() const { return max_.load(std::memory_order_relaxed); }

uint64_t Histogram::BucketCount(size_t bucket) const {
  RR_CHECK(bucket < kHistogramBuckets) << "bucket " << bucket;
  return buckets_[bucket].load(std::memory_order_relaxed);
}

namespace {

/// Percentile over an already-captured bucket array — the shared core of
/// ValueAtPercentile (live reads) and ConsistentSnapshot (torn-free
/// capture). `count`/`min`/`max` must come from the same capture.
uint64_t PercentileFromBuckets(const uint64_t* buckets, uint64_t count,
                               uint64_t min, uint64_t max,
                               double percentile) {
  if (count == 0) return 0;
  percentile = std::min(100.0, std::max(0.0, percentile));
  // Rank of the requested sample, 1-based: p50 of 3 samples is sample 2.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(percentile / 100.0 *
                                         static_cast<double>(count))));
  uint64_t cumulative = 0;
  for (size_t bucket = 0; bucket < kHistogramBuckets; ++bucket) {
    cumulative += buckets[bucket];
    if (cumulative >= rank) {
      // Bucket resolution, but never outside what was actually seen.
      return std::min(std::max(Histogram::BucketUpperBound(bucket), min),
                      max);
    }
  }
  return max;  // Racing recorders moved the total; report the extremum.
}

}  // namespace

uint64_t Histogram::ValueAtPercentile(double percentile) const {
  uint64_t buckets[kHistogramBuckets];
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  return PercentileFromBuckets(buckets, Count(), Min(), Max(), percentile);
}

HistogramSnapshot Histogram::ConsistentSnapshot() const {
  HistogramSnapshot hs;
  // Bounded retry: a capture bracketed by two equal count reads saw no
  // Record complete inside it (a racing Record that bumped a bucket but
  // not yet count_ can still tear — Record's fields are independent
  // relaxed adds — but the window shrinks from "whole capture" to "one
  // instruction pair"). Under a sustained storm every attempt may
  // differ; after kAttempts we keep the last capture, whose slack is
  // monotone and bounded by the number of in-flight recorders.
  constexpr int kAttempts = 4;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    const uint64_t count_before = count_.load(std::memory_order_acquire);
    hs.sum = sum_.load(std::memory_order_relaxed);
    hs.min = Min();
    hs.max = Max();
    for (size_t b = 0; b < kHistogramBuckets; ++b) {
      hs.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    }
    hs.count = count_.load(std::memory_order_acquire);
    if (hs.count == count_before) break;
  }
  hs.p50 = PercentileFromBuckets(hs.buckets.data(), hs.count, hs.min, hs.max,
                                 50.0);
  hs.p95 = PercentileFromBuckets(hs.buckets.data(), hs.count, hs.min, hs.max,
                                 95.0);
  hs.p99 = PercentileFromBuckets(hs.buckets.data(), hs.count, hs.min, hs.max,
                                 99.0);
  return hs;
}

MetricsSnapshot Snapshot() { return MetricsRegistry::Instance().Snapshot(); }

namespace {

void AppendJsonKey(std::string* out, const std::string& name, bool* first) {
  if (!*first) out->append(",");
  *first = false;
  out->append("\"");
  // Metric names are dotted identifiers — no escaping needed, but a
  // hostile name must not break the document.
  for (const char c : name) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->append("\":");
}

}  // namespace

std::string SnapshotJson() {
  const MetricsSnapshot snapshot = Snapshot();
  std::string json = "{\"counters\":{";
  bool first = true;
  for (const CounterSnapshot& counter : snapshot.counters) {
    AppendJsonKey(&json, counter.name, &first);
    json.append(std::to_string(counter.value));
  }
  json.append("},\"gauges\":{");
  first = true;
  for (const GaugeSnapshot& gauge : snapshot.gauges) {
    AppendJsonKey(&json, gauge.name, &first);
    json.append(std::to_string(gauge.value));
  }
  json.append("},\"histograms\":{");
  first = true;
  for (const HistogramSnapshot& histogram : snapshot.histograms) {
    AppendJsonKey(&json, histogram.name, &first);
    json.append("{\"count\":" + std::to_string(histogram.count) +
                ",\"sum\":" + std::to_string(histogram.sum) +
                ",\"min\":" + std::to_string(histogram.min) +
                ",\"max\":" + std::to_string(histogram.max) +
                ",\"p50\":" + std::to_string(histogram.p50) +
                ",\"p95\":" + std::to_string(histogram.p95) +
                ",\"p99\":" + std::to_string(histogram.p99) + "}");
  }
  json.append("}}");
  return json;
}

void ResetAllMetrics() { MetricsRegistry::Instance().ResetAll(); }

std::vector<std::string> ListMetricNames() {
  return MetricsRegistry::Instance().List();
}

}  // namespace metrics
}  // namespace randrecon
