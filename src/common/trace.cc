#include "common/trace.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <memory>
#include <mutex>

#include "common/check.h"

namespace randrecon {
namespace trace {
namespace {

// ---- Clock ----------------------------------------------------------

/// Fake-clock state. `g_fake_active` is the one relaxed load NowNanos
/// pays over a raw steady_clock read; the fake's reading is its own
/// atomic so tests may Advance from any thread.
std::atomic<bool> g_fake_active{false};
std::atomic<uint64_t> g_fake_nanos{0};

uint64_t SteadyNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ---- Per-thread span buffers ----------------------------------------

/// One span as recorded in place on its thread.
struct SpanRecord {
  const char* name = nullptr;
  uint64_t start_nanos = 0;
  uint64_t duration_nanos = 0;
  int parent_slot = -1;
  bool done = false;
};

/// A thread's capture buffer. The mutex serializes that thread's
/// append/finalize against StopTracing()'s harvest — uncontended on the
/// hot path (spans are coarse stages, not per-row work).
struct ThreadBuffer {
  std::mutex mutex;
  uint64_t epoch = 0;  ///< Capture these spans belong to.
  uint64_t registration_order = 0;
  std::vector<SpanRecord> spans;
  std::vector<int> open_stack;  ///< Slots of spans not yet destroyed.
};

/// A finished thread's spans, parked until the capture is harvested.
struct RetiredBuffer {
  uint64_t epoch = 0;
  uint64_t registration_order = 0;
  std::vector<SpanRecord> spans;
};

/// Capture state + the live/retired buffer registry. A Meyers singleton
/// for the same static-initialization-order reason as the failpoint and
/// metrics registries.
class TraceRegistry {
 public:
  static TraceRegistry& Instance() {
    static TraceRegistry* registry = new TraceRegistry();
    return *registry;
  }

  std::atomic<bool> enabled{false};
  std::atomic<uint64_t> epoch{1};

  void Register(ThreadBuffer* buffer) {
    std::lock_guard<std::mutex> lock(mutex_);
    buffer->registration_order = next_registration_++;
    live_.push_back(buffer);
  }

  /// Thread exit: park the buffer's completed spans, forget the buffer.
  void Retire(ThreadBuffer* buffer) {
    std::lock_guard<std::mutex> lock(mutex_);
    live_.erase(std::remove(live_.begin(), live_.end(), buffer), live_.end());
    if (!buffer->spans.empty()) {
      RetiredBuffer retired;
      retired.epoch = buffer->epoch;
      retired.registration_order = buffer->registration_order;
      retired.spans = std::move(buffer->spans);
      retired_.push_back(std::move(retired));
    }
  }

  void StartCapture() {
    std::lock_guard<std::mutex> lock(mutex_);
    // Buffers clear themselves lazily when they observe the new epoch;
    // parked spans from older captures are dead now.
    retired_.clear();
    epoch.fetch_add(1);
    enabled.store(true);
  }

  std::vector<Span> StopCapture() {
    enabled.store(false);
    std::lock_guard<std::mutex> lock(mutex_);
    const uint64_t capture = epoch.load();

    /// (registration_order, spans) per thread that recorded this capture.
    struct Harvest {
      uint64_t registration_order = 0;
      std::vector<SpanRecord> spans;
    };
    std::vector<Harvest> harvests;
    for (ThreadBuffer* buffer : live_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      if (buffer->epoch != capture || buffer->spans.empty()) continue;
      Harvest harvest;
      harvest.registration_order = buffer->registration_order;
      harvest.spans = buffer->spans;
      harvests.push_back(std::move(harvest));
    }
    for (RetiredBuffer& retired : retired_) {
      if (retired.epoch != capture || retired.spans.empty()) continue;
      harvests.push_back(
          {retired.registration_order, std::move(retired.spans)});
    }
    retired_.clear();

    // Deterministic thread order: first-span start, ties by
    // registration order (exact under the fake clock; registration
    // order alone decides single-threaded runs).
    std::sort(harvests.begin(), harvests.end(),
              [](const Harvest& a, const Harvest& b) {
                if (a.spans.front().start_nanos != b.spans.front().start_nanos) {
                  return a.spans.front().start_nanos < b.spans.front().start_nanos;
                }
                return a.registration_order < b.registration_order;
              });

    std::vector<Span> flattened;
    for (size_t t = 0; t < harvests.size(); ++t) {
      const std::vector<SpanRecord>& records = harvests[t].spans;
      // Slot -> flat index for DONE spans; an unfinished ancestor
      // (capture stopped mid-span) re-parents its children upward.
      std::vector<int> flat_index(records.size(), -1);
      for (size_t slot = 0; slot < records.size(); ++slot) {
        const SpanRecord& record = records[slot];
        if (!record.done) continue;
        Span span;
        span.name = record.name;
        span.start_nanos = record.start_nanos;
        span.duration_nanos = record.duration_nanos;
        span.thread = static_cast<int>(t);
        int parent_slot = record.parent_slot;
        while (parent_slot >= 0 && flat_index[parent_slot] < 0) {
          parent_slot = records[parent_slot].parent_slot;
        }
        span.parent = parent_slot >= 0 ? flat_index[parent_slot] : -1;
        flat_index[slot] = static_cast<int>(flattened.size());
        flattened.push_back(std::move(span));
      }
    }
    return flattened;
  }

 private:
  TraceRegistry() = default;

  std::mutex mutex_;
  std::vector<ThreadBuffer*> live_;
  std::vector<RetiredBuffer> retired_;
  uint64_t next_registration_ = 0;
};

/// The calling thread's buffer, registered on first use and retired
/// (spans parked) when the thread exits.
class ThreadBufferOwner {
 public:
  ThreadBufferOwner() : buffer_(new ThreadBuffer()) {
    TraceRegistry::Instance().Register(buffer_.get());
  }
  ~ThreadBufferOwner() { TraceRegistry::Instance().Retire(buffer_.get()); }
  ThreadBuffer& buffer() { return *buffer_; }

 private:
  std::unique_ptr<ThreadBuffer> buffer_;
};

ThreadBuffer& LocalBuffer() {
  thread_local ThreadBufferOwner owner;
  return owner.buffer();
}

}  // namespace

uint64_t NowNanos() {
  if (g_fake_active.load(std::memory_order_relaxed)) {
    return g_fake_nanos.load(std::memory_order_relaxed);
  }
  return SteadyNanos();
}

FakeClockGuard::FakeClockGuard(uint64_t start_nanos) {
  RR_CHECK(!g_fake_active.load()) << "FakeClockGuard does not nest";
  g_fake_nanos.store(start_nanos);
  g_fake_active.store(true);
}

FakeClockGuard::~FakeClockGuard() { g_fake_active.store(false); }

void FakeClockGuard::Advance(uint64_t nanos) { g_fake_nanos.fetch_add(nanos); }

void FakeClockGuard::Set(uint64_t nanos) {
  RR_CHECK(nanos >= g_fake_nanos.load()) << "fake clock must not go backwards";
  g_fake_nanos.store(nanos);
}

bool TracingEnabled() {
  return TraceRegistry::Instance().enabled.load(std::memory_order_relaxed);
}

void StartTracing() { TraceRegistry::Instance().StartCapture(); }

std::vector<Span> StopTracing() {
  return TraceRegistry::Instance().StopCapture();
}

std::string SpanTreeJson(const std::vector<Span>& spans) {
  std::string json = "[";
  for (size_t i = 0; i < spans.size(); ++i) {
    if (i > 0) json.append(",");
    const Span& span = spans[i];
    json.append("{\"name\":\"");
    for (const char c : span.name) {
      if (c == '"' || c == '\\') json.push_back('\\');
      json.push_back(c);
    }
    json.append("\",\"start_ns\":" + std::to_string(span.start_nanos) +
                ",\"duration_ns\":" + std::to_string(span.duration_nanos) +
                ",\"parent\":" + std::to_string(span.parent) +
                ",\"thread\":" + std::to_string(span.thread) + "}");
  }
  json.append("]");
  return json;
}

TraceSpan::TraceSpan(const char* name, metrics::Histogram* latency)
    : name_(name), latency_(latency) {
  const bool tracing = TracingEnabled();
  // Disarmed and histogram-free: that one relaxed load was the whole
  // cost — not even a clock read.
  if (!tracing && latency_ == nullptr) return;
  start_nanos_ = NowNanos();
  timed_ = true;
  if (!tracing) return;
  ThreadBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  epoch_ = TraceRegistry::Instance().epoch.load();
  if (buffer.epoch != epoch_) {
    buffer.spans.clear();
    buffer.open_stack.clear();
    buffer.epoch = epoch_;
  }
  SpanRecord record;
  record.name = name_;
  record.start_nanos = start_nanos_;
  record.parent_slot =
      buffer.open_stack.empty() ? -1 : buffer.open_stack.back();
  slot_ = static_cast<int>(buffer.spans.size());
  buffer.spans.push_back(record);
  buffer.open_stack.push_back(slot_);
}

namespace {

/// The /tracez ring (see trace.h). A plain mutex + deque: pushes are
/// per work unit and scrapes are rare, so contention is irrelevant.
struct RecentCaptureRing {
  std::mutex mutex;
  uint64_t next_id = 1;
  std::deque<RecentCapture> captures;  // Oldest first.
};

RecentCaptureRing& Ring() {
  static RecentCaptureRing* ring = new RecentCaptureRing();
  return *ring;
}

}  // namespace

void PushRecentCapture(std::string label, std::vector<Span> spans) {
  const uint64_t now = NowNanos();
  RecentCaptureRing& ring = Ring();
  std::lock_guard<std::mutex> lock(ring.mutex);
  RecentCapture capture;
  capture.id = ring.next_id++;
  capture.label = std::move(label);
  capture.captured_nanos = now;
  capture.spans = std::move(spans);
  ring.captures.push_back(std::move(capture));
  while (ring.captures.size() > kRecentCaptureRing) {
    ring.captures.pop_front();
  }
}

std::vector<RecentCapture> RecentCaptures(size_t max) {
  RecentCaptureRing& ring = Ring();
  std::lock_guard<std::mutex> lock(ring.mutex);
  std::vector<RecentCapture> newest_first(ring.captures.rbegin(),
                                          ring.captures.rend());
  if (max != 0 && newest_first.size() > max) newest_first.resize(max);
  return newest_first;
}

void ClearRecentCaptures() {
  RecentCaptureRing& ring = Ring();
  std::lock_guard<std::mutex> lock(ring.mutex);
  ring.captures.clear();
}

TraceSpan::~TraceSpan() { Finish(); }

void TraceSpan::Finish() {
  if (!timed_) return;
  timed_ = false;
  const uint64_t end_nanos = NowNanos();
  const uint64_t duration =
      end_nanos >= start_nanos_ ? end_nanos - start_nanos_ : 0;
  if (latency_ != nullptr) latency_->Record(duration);
  if (slot_ < 0) return;
  ThreadBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  // A capture that ended (or restarted) mid-span reclaimed the slot.
  if (buffer.epoch != epoch_ ||
      static_cast<size_t>(slot_) >= buffer.spans.size()) {
    return;
  }
  SpanRecord& record = buffer.spans[slot_];
  record.duration_nanos = duration;
  record.done = true;
  // RAII scoping guarantees this span is the innermost open one.
  if (!buffer.open_stack.empty() && buffer.open_stack.back() == slot_) {
    buffer.open_stack.pop_back();
  }
}

}  // namespace trace
}  // namespace randrecon
