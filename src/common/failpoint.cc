#include "common/failpoint.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <unistd.h>

#include "common/check.h"
#include "common/logging.h"

namespace randrecon {

/// Process-wide registry. A Meyers singleton reached only through
/// Instance(): failpoints register from static initializers in arbitrary
/// TU order, and the first registration must find a live registry.
/// Defined at namespace scope (not in an anonymous namespace) so the
/// friend declaration in failpoint.h grants it counter access.
class FailpointRegistry {
 public:
  static FailpointRegistry& Instance() {
    static FailpointRegistry* registry = new FailpointRegistry();
    return *registry;
  }

  void Register(Failpoint* failpoint) {
    std::lock_guard<std::mutex> lock(mutex_);
    const bool inserted =
        by_name_.emplace(failpoint->name(), failpoint).second;
    RR_CHECK(inserted) << "duplicate failpoint name '" << failpoint->name()
                       << "'";
    // The environment may have armed this name before the TU defining it
    // was initialized.
    const auto pending = pending_configs_.find(failpoint->name());
    if (pending != pending_configs_.end()) {
      ArmLocked(failpoint, pending->second);
      pending_configs_.erase(pending);
    }
  }

  Status Arm(const std::string& name, const FailpointConfig& config) {
    RR_RETURN_NOT_OK(ValidateConfig(name, config));
    std::lock_guard<std::mutex> lock(mutex_);
    const auto found = by_name_.find(name);
    if (found == by_name_.end()) {
      return Status::NotFound("no failpoint named '" + name +
                              "' is registered in this binary");
    }
    ArmLocked(found->second, config);
    return Status::OK();
  }

  bool Disarm(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto found = by_name_.find(name);
    if (found == by_name_.end()) return false;
    DisarmLocked(found->second);
    return true;
  }

  void DisarmAll() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& entry : by_name_) DisarmLocked(entry.second);
    pending_configs_.clear();
  }

  std::vector<std::string> List() {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    names.reserve(by_name_.size());
    for (const auto& entry : by_name_) names.push_back(entry.first);
    return names;  // std::map iterates sorted.
  }

  std::vector<std::string> ListArmed() {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    for (const auto& entry : by_name_) {
      if (entry.second->armed()) names.push_back(entry.first);
    }
    return names;  // std::map iterates sorted.
  }

  uint64_t HitCount(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto found = by_name_.find(name);
    return found == by_name_.end() ? 0 : found->second->hits_;
  }

  Status Fire(Failpoint* failpoint) {
    FailpointAction action;
    StatusCode code;
    uint64_t firing_hit = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!failpoint->armed_.load(std::memory_order_relaxed)) {
        return Status::OK();  // Raced a disarm; the fault is gone.
      }
      const FailpointConfig& config = failpoint->config_;
      ++failpoint->hits_;
      if (failpoint->hits_ < config.trigger_hit) return Status::OK();
      if (config.fire_count != kFailpointFireForever &&
          failpoint->fired_ >= config.fire_count) {
        return Status::OK();  // Firing window exhausted; keep counting.
      }
      ++failpoint->fired_;
      action = config.action;
      code = config.code;
      firing_hit = failpoint->hits_;
    }
    if (action == FailpointAction::kCrash) {
      // No destructors, no stream flushes: user-space buffers die with
      // the process, exactly like a kill -9 mid-write.
      ::_exit(kFailpointCrashExitCode);
    }
    return Status(code, "failpoint '" + std::string(failpoint->name()) +
                            "' fired at hit " + std::to_string(firing_hit));
  }

  /// Parses one "name=action[@hit]" clause into (*name, *config).
  static Status ParseSpecClause(const std::string& clause, std::string* name,
                                FailpointConfig* config) {
    const size_t equals = clause.find('=');
    if (equals == std::string::npos || equals == 0) {
      return Status::InvalidArgument("failpoint spec clause '" + clause +
                                     "' is not 'name=action[@hit]'");
    }
    *name = clause.substr(0, equals);
    std::string action_text = clause.substr(equals + 1);
    const size_t at = action_text.find('@');
    if (at != std::string::npos) {
      const std::string hit_text = action_text.substr(at + 1);
      action_text.resize(at);
      char* parse_end = nullptr;
      config->trigger_hit = std::strtoull(hit_text.c_str(), &parse_end, 10);
      if (hit_text.empty() || *parse_end != '\0' ||
          config->trigger_hit == 0) {
        return Status::InvalidArgument("failpoint spec clause '" + clause +
                                       "' has a bad hit number");
      }
    }
    if (action_text == "error") {
      config->action = FailpointAction::kError;
      config->code = StatusCode::kIoError;
    } else if (action_text == "unavailable") {
      config->action = FailpointAction::kError;
      config->code = StatusCode::kUnavailable;
    } else if (action_text == "crash") {
      config->action = FailpointAction::kCrash;
    } else {
      return Status::InvalidArgument(
          "failpoint spec clause '" + clause +
          "': action must be error, unavailable or crash");
    }
    return Status::OK();
  }

  /// Parses "name=action[@hit];..."; unknown names go into the pending
  /// map (the TU defining them may not have initialized yet) when
  /// `allow_pending`, and fail with NotFound otherwise. Strict: the
  /// first bad clause aborts the whole spec (the test-facing API).
  Status ArmFromSpec(const std::string& spec, bool allow_pending) {
    size_t begin = 0;
    while (begin <= spec.size()) {
      const size_t end = std::min(spec.find(';', begin), spec.size());
      const std::string clause = spec.substr(begin, end - begin);
      begin = end + 1;
      if (clause.empty()) continue;
      std::string name;
      FailpointConfig config;
      RR_RETURN_NOT_OK(ParseSpecClause(clause, &name, &config));
      Status armed = Arm(name, config);
      if (armed.code() == StatusCode::kNotFound && allow_pending) {
        std::lock_guard<std::mutex> lock(mutex_);
        pending_configs_[name] = config;
        armed = Status::OK();
      }
      RR_RETURN_NOT_OK(armed);
    }
    return Status::OK();
  }

  /// Lenient: each bad clause is warned about and skipped, the rest of
  /// the spec still arms (the environment path — a typo must not
  /// silently disarm every other clause). Returns clauses skipped.
  size_t ArmFromSpecLenient(const std::string& spec, bool allow_pending) {
    size_t warned = 0;
    size_t begin = 0;
    while (begin <= spec.size()) {
      const size_t end = std::min(spec.find(';', begin), spec.size());
      const std::string clause = spec.substr(begin, end - begin);
      begin = end + 1;
      if (clause.empty()) continue;
      std::string name;
      FailpointConfig config;
      Status armed = ParseSpecClause(clause, &name, &config);
      if (armed.ok()) armed = Arm(name, config);
      if (armed.code() == StatusCode::kNotFound && allow_pending) {
        // Not a typo yet: the TU registering this name may simply not
        // have initialized. If no registration ever claims it, the
        // atexit pass (WarnUnclaimedPendingFailpoints) reports it.
        std::lock_guard<std::mutex> lock(mutex_);
        pending_configs_[name] = config;
        continue;
      }
      if (!armed.ok()) {
        ++warned;
        RR_LOG(kWarning) << "RANDRECON_FAILPOINTS: " << armed.message()
                         << " — clause skipped";
      }
    }
    return warned;
  }

  std::vector<std::string> UnclaimedPending() {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    names.reserve(pending_configs_.size());
    for (const auto& entry : pending_configs_) names.push_back(entry.first);
    return names;  // std::map iterates sorted.
  }

  size_t WarnUnclaimedPending() {
    const std::vector<std::string> names = UnclaimedPending();
    for (const std::string& name : names) {
      RR_LOG(kWarning) << "RANDRECON_FAILPOINTS: failpoint '" << name
                       << "' is not registered by this binary (typo, or an "
                          "unlinked TU?) — its clause never fired";
    }
    return names.size();
  }

  const std::string& env_spec() const { return env_spec_; }

 private:
  FailpointRegistry() {
    const char* env = std::getenv("RANDRECON_FAILPOINTS");
    if (env != nullptr) env_spec_ = env;
    if (!env_spec_.empty()) {
      // Lenient: a malformed clause is warned about and skipped, never
      // allowed to silently discard the rest of the spec. Names no
      // registration ever claims (typos) are reported on exit — the
      // earliest point the "every TU has initialized" claim is true.
      ArmFromSpecLenient(env_spec_, /*allow_pending=*/true);
      std::atexit(+[] {
        FailpointRegistry::Instance().WarnUnclaimedPending();
      });
    }
  }

  static Status ValidateConfig(const std::string& name,
                               const FailpointConfig& config) {
    if (config.trigger_hit == 0) {
      return Status::InvalidArgument("failpoint '" + name +
                                     "': trigger_hit is 1-based, got 0");
    }
    if (config.fire_count == 0) {
      return Status::InvalidArgument("failpoint '" + name +
                                     "': fire_count must be >= 1");
    }
    if (config.action == FailpointAction::kError &&
        config.code == StatusCode::kOk) {
      return Status::InvalidArgument(
          "failpoint '" + name + "': an error action needs a non-OK code");
    }
    return Status::OK();
  }

  void ArmLocked(Failpoint* failpoint, const FailpointConfig& config) {
    failpoint->config_ = config;
    failpoint->hits_ = 0;
    failpoint->fired_ = 0;
    failpoint->armed_.store(true, std::memory_order_relaxed);
  }

  void DisarmLocked(Failpoint* failpoint) {
    failpoint->armed_.store(false, std::memory_order_relaxed);
    failpoint->hits_ = 0;
    failpoint->fired_ = 0;
  }

  std::mutex mutex_;
  std::map<std::string, Failpoint*> by_name_;
  std::map<std::string, FailpointConfig> pending_configs_;
  std::string env_spec_;
};

Failpoint::Failpoint(const char* name) : name_(name) {
  FailpointRegistry::Instance().Register(this);
}

Status Failpoint::Fire() { return FailpointRegistry::Instance().Fire(this); }

Status ArmFailpoint(const std::string& name, const FailpointConfig& config) {
  return FailpointRegistry::Instance().Arm(name, config);
}

Status ArmFailpoint(const std::string& name, FailpointAction action,
                    uint64_t trigger_hit) {
  FailpointConfig config;
  config.action = action;
  config.trigger_hit = trigger_hit;
  return FailpointRegistry::Instance().Arm(name, config);
}

bool DisarmFailpoint(const std::string& name) {
  return FailpointRegistry::Instance().Disarm(name);
}

void DisarmAllFailpoints() { FailpointRegistry::Instance().DisarmAll(); }

std::vector<std::string> ListFailpoints() {
  return FailpointRegistry::Instance().List();
}

std::vector<std::string> ListArmedFailpoints() {
  return FailpointRegistry::Instance().ListArmed();
}

uint64_t FailpointHitCount(const std::string& name) {
  return FailpointRegistry::Instance().HitCount(name);
}

Status ArmFailpointsFromSpec(const std::string& spec) {
  return FailpointRegistry::Instance().ArmFromSpec(spec,
                                                   /*allow_pending=*/false);
}

size_t ArmFailpointsFromSpecLenient(const std::string& spec,
                                    bool allow_pending) {
  return FailpointRegistry::Instance().ArmFromSpecLenient(spec,
                                                          allow_pending);
}

std::vector<std::string> UnclaimedPendingFailpoints() {
  return FailpointRegistry::Instance().UnclaimedPending();
}

size_t WarnUnclaimedPendingFailpoints() {
  return FailpointRegistry::Instance().WarnUnclaimedPending();
}

const std::string& FailpointEnvSpec() {
  return FailpointRegistry::Instance().env_spec();
}

}  // namespace randrecon
