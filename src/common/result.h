// Result<T>: a value-or-Status holder, the return type for fallible
// constructors and factory functions (e.g. Cholesky of a non-PSD matrix,
// CSV parsing). Mirrors arrow::Result / absl::StatusOr.

#ifndef RANDRECON_COMMON_RESULT_H_
#define RANDRECON_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace randrecon {

/// Holds either a successfully computed T or the Status explaining why the
/// computation failed. Accessing the value of a failed Result is a
/// programmer error and aborts via RR_CHECK.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    RR_CHECK(!status_.ok()) << "Result constructed from OK status without a value";
  }

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present.
  const Status& status() const { return status_; }

  /// The contained value. Requires ok().
  const T& value() const& {
    RR_CHECK(ok()) << "Result::value() on failed result: " << status_.ToString();
    return *value_;
  }

  /// Moves the contained value out. Requires ok().
  T&& value() && {
    RR_CHECK(ok()) << "Result::value() on failed result: " << status_.ToString();
    return std::move(*value_);
  }

  /// Returns the value or aborts with the failure message.
  const T& ValueOrDie() const { return value(); }

  /// Returns the contained value if ok, otherwise `fallback`.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ present.
};

/// Propagates the error of a Result-returning expression; on success binds
/// the value to `lhs`. Use inside functions returning Status or Result.
#define RR_ASSIGN_OR_RETURN(lhs, expr)          \
  auto RR_CONCAT_(_res_, __LINE__) = (expr);    \
  if (!RR_CONCAT_(_res_, __LINE__).ok())        \
    return RR_CONCAT_(_res_, __LINE__).status();\
  lhs = std::move(RR_CONCAT_(_res_, __LINE__)).value()

#define RR_CONCAT_INNER_(a, b) a##b
#define RR_CONCAT_(a, b) RR_CONCAT_INNER_(a, b)

}  // namespace randrecon

#endif  // RANDRECON_COMMON_RESULT_H_
