// Deterministic fault injection: named failpoints threaded through the
// storage and pipeline IO paths.
//
// A Failpoint is a named hook compiled into production code at the exact
// call sites where the process talks to the outside world (block writes,
// fsyncs, renames, block reads, chunk fetches). Disarmed — the only
// state production ever sees — a check is ONE relaxed atomic load and a
// predictable branch, so the ~2.2 GB/s ingest paths keep their numbers.
// Armed (by a test, or by the RANDRECON_FAILPOINTS environment variable)
// a failpoint counts its hits and, on the configured hit, either returns
// an error Status through the normal Status plumbing or kills the
// process with _Exit (no destructors, no buffer flushes — the closest
// portable stand-in for a power cut), which is what the crash-recovery
// torture tests in tests/data/store_recovery_test.cc are built on.
//
// Registration is by construction: defining a `Failpoint` object (at
// namespace scope in the .cc that uses it) registers its name in a
// process-wide registry, so tests and tools can enumerate every
// injection point the binary actually links (ListFailpoints) and arm
// each in turn. Names are dotted "<layer>.<operation>" strings, e.g.
// "shard.write", "store.fsync", "manifest.rename", "store.read_block".
//
// Environment arming: RANDRECON_FAILPOINTS="name=action[@hit];..." is
// parsed once, lazily, when the registry first materializes — no main()
// cooperation needed, which is what lets CI drive the fault-injection
// matrix through unmodified example binaries. Actions: "error" (returns
// IoError), "unavailable" (returns Unavailable, the retryable-transient
// code), "crash" (_Exit(kFailpointCrashExitCode)). "@hit" is the
// 1-based armed-hit number that fires (default 1); a fired error action
// stays armed but fires only `fire_count` times (default once), so a
// retry can observe the fault clearing.

#ifndef RANDRECON_COMMON_FAILPOINT_H_
#define RANDRECON_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace randrecon {

/// What an armed failpoint does on its trigger hit.
enum class FailpointAction {
  /// Return a Status with the configured code through the call site.
  kError,
  /// _Exit(kFailpointCrashExitCode): no destructors, no stream flushes —
  /// a simulated power cut for crash-recovery tests.
  kCrash,
};

/// The exit code a kCrash failpoint terminates with — distinguishable by
/// a torture test's waitpid from both clean exits and real aborts.
constexpr int kFailpointCrashExitCode = 42;

/// Fires on every armed hit from the trigger onward.
constexpr uint64_t kFailpointFireForever = ~uint64_t{0};

/// Arming configuration (see ArmFailpoint).
struct FailpointConfig {
  FailpointAction action = FailpointAction::kError;
  /// Status code a kError action returns (kIoError or kUnavailable make
  /// sense at IO seams; anything non-OK is accepted).
  StatusCode code = StatusCode::kIoError;
  /// 1-based armed-hit number of the first firing.
  uint64_t trigger_hit = 1;
  /// How many consecutive hits fire, starting at trigger_hit
  /// (kFailpointFireForever = never stop). Irrelevant for kCrash.
  uint64_t fire_count = 1;
};

/// One named injection point. Define at namespace scope in the .cc that
/// checks it; construction registers the name for the process lifetime.
/// Checks are safe from any thread; arming/disarming is serialized by
/// the registry and may race benignly with in-flight checks (a check
/// concurrent with Arm may or may not count — tests arm before running).
class Failpoint {
 public:
  /// `name` must be a string literal (or otherwise outlive the process);
  /// registering two failpoints with one name is a fatal programmer
  /// error.
  explicit Failpoint(const char* name);

  const char* name() const { return name_; }

  /// True iff armed — the disarmed fast path is this single relaxed
  /// load. Call through RR_FAILPOINT so the slow path stays out of line.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Slow path: counts the hit and applies the armed action. OK when the
  /// hit is outside the configured firing window.
  Status Fire();

 private:
  friend class FailpointRegistry;

  const char* name_;
  std::atomic<bool> armed_{false};
  // Guarded by the registry mutex (slow path only).
  FailpointConfig config_;
  uint64_t hits_ = 0;   ///< Checks observed while armed.
  uint64_t fired_ = 0;  ///< Error firings so far.
};

/// Checks `failpoint` inside a function returning Status or Result<T>:
/// disarmed this is one relaxed load; armed it may return the injected
/// error or _Exit.
#define RR_FAILPOINT(failpoint)                          \
  do {                                                   \
    if ((failpoint).armed()) {                           \
      ::randrecon::Status _fp_status = (failpoint).Fire(); \
      if (!_fp_status.ok()) return _fp_status;           \
    }                                                    \
  } while (false)

/// Arms the failpoint registered as `name` (hit/fired counters reset).
/// NotFound if no such failpoint is registered in this binary,
/// InvalidArgument on a nonsensical config (OK error code, zero
/// trigger_hit or fire_count).
Status ArmFailpoint(const std::string& name, const FailpointConfig& config);

/// Convenience: error action with the given code, firing once at
/// `trigger_hit`.
Status ArmFailpoint(const std::string& name, FailpointAction action,
                    uint64_t trigger_hit = 1);

/// Disarms `name`; true iff it was registered (armed or not).
bool DisarmFailpoint(const std::string& name);

/// Disarms every registered failpoint and zeroes its counters.
void DisarmAllFailpoints();

/// Every registered failpoint name, sorted.
std::vector<std::string> ListFailpoints();

/// The subset of registered names currently armed, sorted — what the
/// stats server's /statusz reports so an operator can tell at a glance
/// whether a live daemon is running under injected faults.
std::vector<std::string> ListArmedFailpoints();

/// Armed-hit count of `name` since it was last armed (0 if unregistered
/// or never armed).
uint64_t FailpointHitCount(const std::string& name);

/// Parses and arms "name=action[@hit];name=action[@hit];..." where
/// action is "error", "unavailable" or "crash". Empty spec is OK.
/// InvalidArgument names the offending clause; NotFound names an
/// unregistered failpoint.
Status ArmFailpointsFromSpec(const std::string& spec);

/// The lenient variant the RANDRECON_FAILPOINTS environment path uses:
/// a malformed clause or unknown name is RR_LOG(kWarning)-ed and
/// SKIPPED instead of aborting the whole spec, so one typo cannot
/// silently disarm every other clause. Returns the number of clauses
/// skipped with a warning (0 = every clause armed).
///
/// With `allow_pending` (the environment path — the TU defining a name
/// may not have initialized yet) an unknown name is deferred rather
/// than warned here; a deferred name no registration ever claims is
/// reported by WarnUnclaimedPendingFailpoints(), which the registry
/// runs automatically at process exit when the environment armed
/// anything.
size_t ArmFailpointsFromSpecLenient(const std::string& spec,
                                    bool allow_pending = false);

/// Environment-armed failpoint names still waiting for a registration
/// that never came — i.e. names that will NEVER fire (a typo, or a TU
/// this binary does not link). Sorted.
std::vector<std::string> UnclaimedPendingFailpoints();

/// RR_LOG(kWarning) for every unclaimed pending name (see above);
/// returns how many were reported. Registered with atexit by the
/// environment arming path; exposed so the warning is unit-testable.
size_t WarnUnclaimedPendingFailpoints();

/// The spec the RANDRECON_FAILPOINTS environment variable held when the
/// registry first materialized ("" when unset) — exposed so tools can
/// report what was armed under them.
const std::string& FailpointEnvSpec();

}  // namespace randrecon

#endif  // RANDRECON_COMMON_FAILPOINT_H_
