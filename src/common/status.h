// Status: RocksDB-style recoverable error model.
//
// Functions that can fail for reasons outside the programmer's control
// (I/O, singular matrices, invalid configuration supplied by a caller)
// return a Status or a Result<T> instead of throwing. Programmer errors
// are handled by the RR_CHECK macros in common/check.h.

#ifndef RANDRECON_COMMON_STATUS_H_
#define RANDRECON_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace randrecon {

/// Machine-readable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,    ///< Caller-supplied value violates a documented contract.
  kNotFound,           ///< A named entity (file, attribute, column) is missing.
  kIoError,            ///< Filesystem or parsing failure.
  kNumericalError,     ///< Singular matrix, non-convergence, non-PSD input.
  kFailedPrecondition, ///< Object is not in a state where the call is legal.
  kUnavailable,        ///< Transient resource failure; retrying may succeed.
  kDeadlineExceeded    ///< A per-operation time budget ran out.
};

/// Returns a short stable name for a code, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// The transient-vs-permanent taxonomy the retrying pipeline runner
/// (pipeline::RetryPolicy) schedules by. Retryable codes are the ones a
/// fresh attempt could plausibly clear without anything else changing:
///   kUnavailable — declared transient by whoever raised it;
///   kIoError     — filesystem flakiness (NFS hiccup, EINTR, a shard
///                  mid-repair) is indistinguishable from permanent
///                  damage at raise time, so IO is retried and permanent
///                  damage simply fails again and exhausts its attempts.
/// Everything else is deterministic — the same inputs will fail the same
/// way — so retrying only wastes the batch's time:
///   kInvalidArgument / kFailedPrecondition / kNotFound — contract bugs
///     or missing inputs; kNumericalError — the math is a pure function
///     of the data; kDeadlineExceeded — the budget is already spent.
bool IsRetryableStatusCode(StatusCode code);

/// Result of an operation that can fail. Cheap to copy on the OK path.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given non-OK code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors, Arrow/RocksDB idiom.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NumericalError(std::string msg) {
    return Status(StatusCode::kNumericalError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// True iff a fresh attempt could plausibly succeed — see
  /// IsRetryableStatusCode. Always false for an OK status.
  bool IsRetryable() const { return IsRetryableStatusCode(code_); }

  /// The failure category (kOk when ok()).
  StatusCode code() const { return code_; }

  /// Human-readable failure detail; empty when ok().
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK Status to the caller. Use inside functions that
/// themselves return Status.
#define RR_RETURN_NOT_OK(expr)                 \
  do {                                         \
    ::randrecon::Status _st = (expr);          \
    if (!_st.ok()) return _st;                 \
  } while (false)

}  // namespace randrecon

#endif  // RANDRECON_COMMON_STATUS_H_
