#include "common/build_info.h"

#include <cstdlib>

#include "common/logging.h"
#include "common/run_report.h"

// CMake stamps these three onto this translation unit only (see the
// set_source_files_properties block in CMakeLists.txt). Fallbacks keep
// non-CMake builds (e.g. IDE single-file checks) compiling.
#ifndef RANDRECON_GIT_DESCRIBE
#define RANDRECON_GIT_DESCRIBE "unknown"
#endif
#ifndef RANDRECON_BUILD_FLAGS
#define RANDRECON_BUILD_FLAGS "unknown"
#endif
#ifndef RANDRECON_BUILD_TYPE
#define RANDRECON_BUILD_TYPE "unknown"
#endif

namespace randrecon {
namespace {

// Widest SIMD ISA this translation unit was compiled for. The kernels
// are built with the same global flags, so this matches their tile
// width (linalg/kernels.h picks its RR_SIMD_BYTES from the same macros).
const char* CompiledSimd() {
#if defined(__AVX512F__)
  return "avx512";
#elif defined(__AVX2__)
  return "avx2";
#elif defined(__SSE2__) || defined(__x86_64__)
  return "sse2";
#else
  return "scalar";
#endif
}

// Mirrors the Philox engine selection in stats/philox.cc exactly
// (including the RANDRECON_NO_SIMD escape hatch). Duplicated here
// rather than calling stats::philox_internal::ActiveEngine() because
// common/ sits below stats/ in the layer map; the agreement is pinned
// by tests/common/build_info_test.cc so the two cannot drift silently.
const char* DispatchSimd() {
#if defined(__x86_64__) || defined(__i386__)
  const char* no_simd = std::getenv("RANDRECON_NO_SIMD");
  if (no_simd == nullptr || no_simd[0] == '\0' || no_simd[0] == '0') {
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512dq")) {
      return "avx512";
    }
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
      return "avx2";
    }
  }
#endif
  return "scalar";
}

}  // namespace

const BuildInfo& GetBuildInfo() {
  static const BuildInfo info = [] {
    BuildInfo built;
    built.git_describe = RANDRECON_GIT_DESCRIBE;
    built.compiler = __VERSION__;
    built.flags = RANDRECON_BUILD_FLAGS;
    built.build_type = RANDRECON_BUILD_TYPE;
    built.simd_compiled = CompiledSimd();
    built.simd_dispatch = DispatchSimd();
#ifdef RANDRECON_DISABLE_METRICS
    built.metrics_disabled = true;
#else
    built.metrics_disabled = false;
#endif
    return built;
  }();
  return info;
}

std::string BuildInfoJson() {
  const BuildInfo& info = GetBuildInfo();
  std::string json = "{";
  json.append("\"git_describe\":\"" + report::JsonEscape(info.git_describe) +
              "\"");
  json.append(",\"compiler\":\"" + report::JsonEscape(info.compiler) + "\"");
  json.append(",\"flags\":\"" + report::JsonEscape(info.flags) + "\"");
  json.append(",\"build_type\":\"" + report::JsonEscape(info.build_type) +
              "\"");
  json.append(",\"simd_compiled\":\"" +
              report::JsonEscape(info.simd_compiled) + "\"");
  json.append(",\"simd_dispatch\":\"" +
              report::JsonEscape(info.simd_dispatch) + "\"");
  json.append(",\"metrics_disabled\":");
  json.append(info.metrics_disabled ? "true" : "false");
  json.append("}");
  return json;
}

void LogBuildInfoBanner() {
  const BuildInfo& info = GetBuildInfo();
  RR_LOG(kInfo) << "randrecon " << info.git_describe << " [" << info.build_type
                << "] compiler=" << info.compiler
                << " simd=" << info.simd_compiled << "/" << info.simd_dispatch
                << (info.metrics_disabled ? " metrics=off" : " metrics=on");
}

}  // namespace randrecon
