// RR_CHECK: fatal assertion macros for programmer errors (contract
// violations that no caller should be able to trigger with valid input).
// They are active in all build types; the cost is negligible next to the
// dense linear algebra this library performs.

#ifndef RANDRECON_COMMON_CHECK_H_
#define RANDRECON_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace randrecon {
namespace internal {

/// Collects a streamed message and aborts the process on destruction.
/// Instantiated only on the failure path of RR_CHECK.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition) {
    stream_ << "RR_CHECK failed at " << file << ":" << line << ": " << condition;
  }

  [[noreturn]] ~FatalLogMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  FatalLogMessage& operator<<(const T& value) {
    stream_ << " " << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Turns the streamed FatalLogMessage expression into void so both arms of
/// the RR_CHECK ternary have the same type (glog "voidify" idiom).
struct Voidify {
  void operator&(FatalLogMessage&) const {}
  void operator&(FatalLogMessage&&) const {}
};

}  // namespace internal
}  // namespace randrecon

/// Aborts with a diagnostic if `condition` is false. Streams extra context:
///   RR_CHECK(rows > 0) << "got" << rows;
#define RR_CHECK(condition)                                            \
  (condition) ? (void)0                                                \
              : ::randrecon::internal::Voidify() &                     \
                    ::randrecon::internal::FatalLogMessage(            \
                        __FILE__, __LINE__, #condition)

#define RR_CHECK_EQ(a, b) RR_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ")"
#define RR_CHECK_NE(a, b) RR_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ")"
#define RR_CHECK_LT(a, b) RR_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ")"
#define RR_CHECK_LE(a, b) RR_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ")"
#define RR_CHECK_GT(a, b) RR_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ")"
#define RR_CHECK_GE(a, b) RR_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ")"

#endif  // RANDRECON_COMMON_CHECK_H_
