// Monotonic stopwatch used by the benchmark harness and example programs.

#ifndef RANDRECON_COMMON_STOPWATCH_H_
#define RANDRECON_COMMON_STOPWATCH_H_

#include <chrono>

namespace randrecon {

/// Measures wall-clock time from construction (or the last Restart()).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction/Restart.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction/Restart.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace randrecon

#endif  // RANDRECON_COMMON_STOPWATCH_H_
