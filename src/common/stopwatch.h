// Monotonic stopwatch used by the benchmark harness, the pipeline
// runner's retry deadlines, and the example programs.
//
// Reads the injectable process clock of the span machinery
// (trace::NowNanos) rather than steady_clock directly, so a test that
// installs trace::FakeClockGuard drives Stopwatch-based deadlines and
// latency histograms deterministically — no real sleeps in tier-1.

#ifndef RANDRECON_COMMON_STOPWATCH_H_
#define RANDRECON_COMMON_STOPWATCH_H_

#include <cstdint>

#include "common/trace.h"

namespace randrecon {

/// Measures wall-clock time from construction (or the last Restart()).
class Stopwatch {
 public:
  Stopwatch() : start_nanos_(trace::NowNanos()) {}

  /// Resets the start point to now.
  void Restart() { start_nanos_ = trace::NowNanos(); }

  /// Nanoseconds elapsed since construction/Restart (0 if the clock was
  /// swapped out from under a running watch — never negative).
  uint64_t ElapsedNanos() const {
    const uint64_t now = trace::NowNanos();
    return now >= start_nanos_ ? now - start_nanos_ : 0;
  }

  /// Seconds elapsed since construction/Restart.
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

  /// Milliseconds elapsed since construction/Restart.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  uint64_t start_nanos_;
};

}  // namespace randrecon

#endif  // RANDRECON_COMMON_STOPWATCH_H_
