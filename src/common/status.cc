#include "common/status.h"

namespace randrecon {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kNumericalError:
      return "NumericalError";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

bool IsRetryableStatusCode(StatusCode code) {
  return code == StatusCode::kUnavailable || code == StatusCode::kIoError;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace randrecon
