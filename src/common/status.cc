#include "common/status.h"

namespace randrecon {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kNumericalError:
      return "NumericalError";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace randrecon
