// Process-global metrics: named counters, gauges and log-bucketed
// latency histograms threaded through the store and pipeline hot paths.
//
// The registry follows the failpoint discipline (common/failpoint.h):
// a metric is a namespace-scope object in the .cc that uses it, so
// construction registers its name for the process lifetime and tools
// can enumerate every instrument the binary actually links. On the hot
// path a counter increment is ONE relaxed atomic add — no branch, no
// lock, no allocation — so the ~2.2 GB/s ingest paths keep their
// numbers (gated <= 2% of a block flush in bench/micro_io.cc, next to
// the disarmed-failpoint gate it mirrors).
//
// Determinism contract (docs/ARCHITECTURE.md, observability section):
// metrics OBSERVE, they never perturb. No instrumented code path reads
// a metric to make a decision, so attack reports are bitwise identical
// with instrumentation on or off (pinned in micro_io/micro_pipeline and
// tests/pipeline/streaming_attack_test.cc), and counter values for
// single-threaded runs are exact and pinned by tests.
//
// Snapshots: metrics::Snapshot() returns every registered instrument's
// current value (sorted by name, so output is deterministic);
// SnapshotJson() renders the same data as the "counters" / "gauges" /
// "histograms" sections of the versioned run report
// (docs/REPORT_SCHEMA.md, common/run_report.h).
//
// Compile-out: building with -DRANDRECON_DISABLE_METRICS turns every
// increment into a no-op (registration and snapshots still work, all
// values read zero) — the baseline the bench gate's per-op measurement
// is compared against.

#ifndef RANDRECON_COMMON_METRICS_H_
#define RANDRECON_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace randrecon {
namespace metrics {

/// Monotonic event count. Define at namespace scope:
///   metrics::Counter m_blocks_written("store.blocks_written");
/// Thread-safe: Add is a relaxed atomic add (totals are exact — integer
/// adds commute — but carry no ordering; read them quiescent or accept
/// a momentarily stale view).
class Counter {
 public:
  /// `name` must be a string literal (or otherwise outlive the
  /// process); duplicate names are a fatal programmer error.
  explicit Counter(const char* name);

  void Add(uint64_t delta = 1) {
#ifndef RANDRECON_DISABLE_METRICS
    value_.fetch_add(delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }

  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  const char* name() const { return name_; }

 private:
  friend class MetricsRegistry;
  const char* name_;
  std::atomic<uint64_t> value_{0};
};

/// Last-written level (queue depths, open shard count, ...). Same
/// registration and threading rules as Counter.
class Gauge {
 public:
  explicit Gauge(const char* name);

  void Set(int64_t value) {
#ifndef RANDRECON_DISABLE_METRICS
    value_.store(value, std::memory_order_relaxed);
#else
    (void)value;
#endif
  }

  void Add(int64_t delta) {
#ifndef RANDRECON_DISABLE_METRICS
    value_.fetch_add(delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }

  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  const char* name() const { return name_; }

 private:
  friend class MetricsRegistry;
  const char* name_;
  std::atomic<int64_t> value_{0};
};

/// Number of histogram buckets: bucket 0 holds the value 0, bucket i
/// (1..63) holds values in [2^(i-1), 2^i), and the last bucket is
/// unbounded above. Log-spaced buckets cover nanoseconds to hours in 64
/// fixed slots with <= 2x relative error, which is what latency
/// percentiles need.
constexpr size_t kHistogramBuckets = 64;

struct HistogramSnapshot;

/// Log-bucketed histogram of non-negative integer samples (typically
/// nanoseconds). Record is a handful of relaxed atomic ops; count and
/// sum are EXACT under any concurrency (integer adds commute — pinned
/// by the hammering test), percentiles are bucket-resolution
/// approximations clamped to the exact observed [min, max]:
///   * empty histogram            -> every percentile reads 0;
///   * a single sample v          -> every percentile reads exactly v;
///   * all samples in one bucket  -> every percentile reads the max.
class Histogram {
 public:
  explicit Histogram(const char* name);

  /// Folds `value` in. Relaxed atomics only; safe from any thread.
  void Record(uint64_t value);

  /// Bucket that holds `value` (see kHistogramBuckets).
  static size_t BucketIndex(uint64_t value);

  /// Largest value bucket `bucket` can hold (inclusive; UINT64_MAX for
  /// the last bucket).
  static uint64_t BucketUpperBound(size_t bucket);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Smallest / largest recorded sample (0 when empty).
  uint64_t Min() const;
  uint64_t Max() const;
  uint64_t BucketCount(size_t bucket) const;

  /// The value at `percentile` (in [0, 100]): the upper bound of the
  /// bucket holding the ceil(percentile/100 * count)-th smallest
  /// sample, clamped to [Min(), Max()]. 0 when empty.
  uint64_t ValueAtPercentile(double percentile) const;

  /// A self-consistent snapshot: count, sum, min, max and the full
  /// bucket array are captured together, with the capture retried
  /// (bounded) until two successive count reads agree, and the
  /// percentiles computed from the CAPTURED buckets — not from live
  /// re-reads like the individual accessors. Under a sustained
  /// concurrent Record storm the bounded retry can still give up with a
  /// small tear, but the residual slack is monotone: every field of a
  /// later snapshot is >= (count/sum/max, buckets per-entry) or <=
  /// (min, once nonzero) the same field of an earlier one, which is
  /// exactly the tolerance tools/check_timeseries.py validates and
  /// tests/common/metrics_test.cc pins (|sum - count| bounded by the
  /// number of in-flight recorders for an all-ones workload). At
  /// quiesce the snapshot is exact.
  HistogramSnapshot ConsistentSnapshot() const;

  const char* name() const { return name_; }

 private:
  friend class MetricsRegistry;
  const char* name_;
  std::atomic<uint64_t> buckets_[kHistogramBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{~uint64_t{0}};
  std::atomic<uint64_t> max_{0};
};

/// One instrument's snapshot value.
struct CounterSnapshot {
  std::string name;
  uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  int64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  uint64_t p50 = 0;
  uint64_t p95 = 0;
  uint64_t p99 = 0;
  /// Per-bucket counts captured with the scalars (see kHistogramBuckets
  /// for the bucket geometry). Run-report JSON omits these; the stats
  /// server's /metricsz renders them as cumulative Prometheus
  /// `le` buckets.
  std::array<uint64_t, kHistogramBuckets> buckets{};
};

/// Every registered instrument's current value, sorted by name.
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;
};

MetricsSnapshot Snapshot();

/// Snapshot() rendered as one JSON object:
///   {"counters": {"store.blocks_written": 12, ...},
///    "gauges": {...},
///    "histograms": {"pipeline.job_wall_nanos":
///        {"count":3,"sum":...,"min":...,"max":...,
///         "p50":...,"p95":...,"p99":...}, ...}}
/// — the metrics sections of the run report (docs/REPORT_SCHEMA.md).
std::string SnapshotJson();

/// Zeroes every registered instrument. For tests and report runs that
/// want counters scoped to one workload; NOT safe concurrent with hot
/// paths that are mid-increment (quiesce first).
void ResetAllMetrics();

/// Every registered instrument name, sorted — the enumeration tools use
/// to keep docs and validators honest.
std::vector<std::string> ListMetricNames();

}  // namespace metrics
}  // namespace randrecon

#endif  // RANDRECON_COMMON_METRICS_H_
