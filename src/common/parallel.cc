#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.h"

namespace randrecon {
namespace {

/// True while this thread is executing a pool task: a nested parallel
/// call from inside a task runs inline instead of re-entering the pool
/// (re-entering would self-deadlock on the single-job mutex).
thread_local bool t_inside_pool_task = false;

/// Persistent pool of workers executing indexed tasks. A parallel call
/// publishes one job (a function over task indices), wakes the workers,
/// takes part in the work itself, and waits for completion. Workers are
/// spawned lazily up to the largest count any call has asked for.
///
/// Tasks are coarse (one per contiguous chunk, at most a few dozen per
/// job), so indices are claimed under the mutex; the lock cost is
/// invisible next to the chunk work, and holding the claim and the
/// generation check together closes the stale-worker race: a worker that
/// wakes up late sees a generation mismatch and goes back to sleep
/// instead of touching a finished job's function object.
class ThreadPool {
 public:
  static ThreadPool& Instance() {
    static ThreadPool* pool = new ThreadPool();  // Leaked deliberately:
    return *pool;  // workers must never race static destruction order.
  }

  /// Runs task(t) for every t in [0, num_tasks), using up to
  /// `num_workers` threads (including the caller). Blocks until done.
  void Run(size_t num_tasks, size_t num_workers,
           const std::function<void(size_t)>& task) {
    if (num_tasks == 0) return;
    if (num_workers <= 1 || num_tasks == 1 || t_inside_pool_task) {
      for (size_t t = 0; t < num_tasks; ++t) task(t);
      return;
    }
    std::lock_guard<std::mutex> run_lock(run_mutex_);  // One job at a time.
    EnsureWorkers(num_workers - 1);
    uint64_t generation;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      task_ = &task;
      num_tasks_ = num_tasks;
      next_task_ = 0;
      pending_ = num_tasks;
      generation = ++generation_;
    }
    work_cv_.notify_all();
    RunTasks(generation);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      done_cv_.wait(lock, [&] { return pending_ == 0; });
      task_ = nullptr;
    }
  }

 private:
  ThreadPool() = default;

  void EnsureWorkers(size_t count) {
    std::lock_guard<std::mutex> lock(mutex_);
    while (workers_.size() < count) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  void WorkerLoop() {
    uint64_t seen_generation = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_cv_.wait(lock, [&] { return generation_ != seen_generation; });
        seen_generation = generation_;
      }
      RunTasks(seen_generation);
    }
  }

  /// Claims and executes task indices of job `generation` until that job
  /// has none left (or has already been retired).
  void RunTasks(uint64_t generation) {
    for (;;) {
      const std::function<void(size_t)>* task;
      size_t t;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (generation_ != generation || task_ == nullptr) return;
        if (next_task_ >= num_tasks_) return;
        t = next_task_++;
        task = task_;
      }
      t_inside_pool_task = true;
      try {
        (*task)(t);
      } catch (...) {
        // A task that throws (e.g. bad_alloc in a kernel's pack buffer)
        // would otherwise leave pending_ stuck and task_ dangling for
        // concurrent workers. This library treats failures as fatal
        // (see common/check.h), so fail fast instead of unwinding.
        std::abort();
      }
      t_inside_pool_task = false;
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }

  std::mutex run_mutex_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  const std::function<void(size_t)>* task_ = nullptr;
  size_t num_tasks_ = 0;
  size_t next_task_ = 0;
  size_t pending_ = 0;
  uint64_t generation_ = 0;
};

size_t AutoThreadCount() {
  if (const char* env = std::getenv("RANDRECON_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) return static_cast<size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

}  // namespace

size_t EffectiveThreadCount(const ParallelOptions& options, size_t items) {
  if (items <= 1) return 1;
  size_t threads = options.num_threads > 0
                       ? static_cast<size_t>(options.num_threads)
                       : AutoThreadCount();
  if (items < options.min_parallel_items) threads = 1;
  return threads < items ? (threads == 0 ? 1 : threads) : items;
}

void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t, size_t)>& body,
                 const ParallelOptions& options) {
  RR_CHECK_LE(begin, end);
  const size_t items = end - begin;
  if (items == 0) return;
  const size_t threads = EffectiveThreadCount(options, items);
  if (threads == 1) {
    body(begin, end);
    return;
  }
  // Even contiguous partition: each chunk's work is self-contained and
  // writes to disjoint data, so any assignment of chunks to workers (and
  // any chunk count) produces identical results.
  const size_t base = items / threads;
  const size_t extra = items % threads;
  ThreadPool::Instance().Run(threads, threads, [&](size_t t) {
    const size_t chunk_begin = begin + t * base + (t < extra ? t : extra);
    const size_t chunk_size = base + (t < extra ? 1 : 0);
    if (chunk_size > 0) body(chunk_begin, chunk_begin + chunk_size);
  });
}

void ParallelForEach(size_t begin, size_t end,
                     const std::function<void(size_t)>& body,
                     const ParallelOptions& options) {
  RR_CHECK_LE(begin, end);
  const size_t items = end - begin;
  if (items == 0) return;
  const size_t threads = EffectiveThreadCount(options, items);
  ThreadPool::Instance().Run(items, threads,
                             [&](size_t t) { body(begin + t); });
}

double ParallelReduceSum(size_t begin, size_t end, size_t chunk_size,
                         const std::function<double(size_t, size_t)>& chunk_sum,
                         const ParallelOptions& options) {
  RR_CHECK_LE(begin, end);
  RR_CHECK_GT(chunk_size, 0u);
  const size_t items = end - begin;
  if (items == 0) return 0.0;
  // Chunk boundaries are a pure function of chunk_size — NOT of the thread
  // count — and the partials are combined in chunk order below, so the
  // floating-point result is bitwise stable across thread counts.
  const size_t num_chunks = (items + chunk_size - 1) / chunk_size;
  std::vector<double> partials(num_chunks);
  // min_parallel_items is a contract on the *item* count; the chunk count
  // only caps how many workers can be useful.
  const size_t threads =
      std::min(EffectiveThreadCount(options, items), num_chunks);
  ThreadPool::Instance().Run(num_chunks, threads, [&](size_t chunk) {
    const size_t chunk_begin = begin + chunk * chunk_size;
    const size_t chunk_end =
        chunk_begin + chunk_size < end ? chunk_begin + chunk_size : end;
    partials[chunk] = chunk_sum(chunk_begin, chunk_end);
  });
  double total = 0.0;
  for (double partial : partials) total += partial;
  return total;
}

}  // namespace randrecon
