// Leveled logging for the experiment harness and the long-running
// pipeline tools. Defaults to kInfo; tests lower it to kWarning to keep
// ctest output clean.
//
// Each emitted line is prefixed
//   [2026-08-07T12:34:56.789Z INFO T0 file.cc:42]
// — an ISO-8601 UTC timestamp with milliseconds, the level, a dense
// per-process thread ordinal (T0 is the first thread that logged), and
// the call site. The format is pinned by tests/common/logging_test.cc
// so log scrapers can rely on it.
//
// The RANDRECON_LOG_LEVEL environment variable ("debug", "info",
// "warning"/"warn", "error" — case-insensitive) overrides the initial
// level, parsed once when the level is first read (mirroring
// RANDRECON_FAILPOINTS: no main() cooperation needed, so CI can turn a
// crashing example binary verbose without rebuilding it). An
// unparseable value is reported to stderr and ignored.

#ifndef RANDRECON_COMMON_LOGGING_H_
#define RANDRECON_COMMON_LOGGING_H_

#include <atomic>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>

#include "common/result.h"

namespace randrecon {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level; messages below it are discarded. The first
/// read applies the RANDRECON_LOG_LEVEL override, if any.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Parses a RANDRECON_LOG_LEVEL spelling ("debug", "info", "warning",
/// "warn", "error", any case). InvalidArgument naming the bad value
/// otherwise — exposed so the env parsing is unit-testable.
Result<LogLevel> ParseLogLevel(const std::string& text);

/// This thread's dense log ordinal (the "T0" of the prefix): 0 for the
/// first thread that logged (or asked), then 1, 2, ... in first-use
/// order. Stable for the thread's lifetime.
int LogThreadId();

namespace internal {

/// One log statement: buffers the streamed message, emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace randrecon

#define RR_LOG(level)                                           \
  ::randrecon::internal::LogMessage(::randrecon::LogLevel::level, __FILE__, \
                                    __LINE__)

// ---------------------------------------------------------------------------
// Rate-limited logging for hot paths (shed/retry sites that can fire
// thousands of times per second under overload). Each STATEMENT gets its
// own relaxed-atomic occurrence counter, so the limit is per call site,
// shared across all threads hitting it, and costs one uncontended
// fetch_add when suppressed — cheap enough for the ingest shed path.
//
//   RR_LOG_EVERY_N(kWarning, 64) << "batch shed";  // occurrences 1, 65, ...
//   RR_LOG_FIRST_N(kWarning, 4) << "stale latest"; // occurrences 1..4 only
//
// Emitted lines carry an "[occurrence K]" prefix so a reader (or a test)
// can recover how many events the suppressed gaps hide. Like glog's
// LOG_EVERY_N, these expand to multiple statements: inside an if/else or
// loop body they need braces.
// ---------------------------------------------------------------------------

#define RR_LOG_RATE_CONCAT_INNER(a, b) a##b
#define RR_LOG_RATE_CONCAT(a, b) RR_LOG_RATE_CONCAT_INNER(a, b)
#define RR_LOG_RATE_COUNTER RR_LOG_RATE_CONCAT(rr_log_occurrences_, __LINE__)

/// Logs the 1st, (n+1)th, (2n+1)th, ... execution of this statement.
#define RR_LOG_EVERY_N(level, n)                                          \
  static ::std::atomic<uint64_t> RR_LOG_RATE_COUNTER{0};                  \
  if (const uint64_t rr_log_occurrence =                                  \
          RR_LOG_RATE_COUNTER.fetch_add(1, ::std::memory_order_relaxed) + \
          1;                                                              \
      (rr_log_occurrence - 1) % static_cast<uint64_t>(n) == 0)            \
  RR_LOG(level) << "[occurrence " << rr_log_occurrence << "] "

/// Logs only the first n executions of this statement, then goes silent.
#define RR_LOG_FIRST_N(level, n)                                          \
  static ::std::atomic<uint64_t> RR_LOG_RATE_COUNTER{0};                  \
  if (const uint64_t rr_log_occurrence =                                  \
          RR_LOG_RATE_COUNTER.fetch_add(1, ::std::memory_order_relaxed) + \
          1;                                                              \
      rr_log_occurrence <= static_cast<uint64_t>(n))                      \
  RR_LOG(level) << "[occurrence " << rr_log_occurrence << "] "

#endif  // RANDRECON_COMMON_LOGGING_H_
