// Minimal leveled logging for the experiment harness. Defaults to kInfo;
// tests lower it to kWarning to keep ctest output clean.

#ifndef RANDRECON_COMMON_LOGGING_H_
#define RANDRECON_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace randrecon {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level; messages below it are discarded.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// One log statement: buffers the streamed message, emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace randrecon

#define RR_LOG(level)                                           \
  ::randrecon::internal::LogMessage(::randrecon::LogLevel::level, __FILE__, \
                                    __LINE__)

#endif  // RANDRECON_COMMON_LOGGING_H_
