// Leveled logging for the experiment harness and the long-running
// pipeline tools. Defaults to kInfo; tests lower it to kWarning to keep
// ctest output clean.
//
// Each emitted line is prefixed
//   [2026-08-07T12:34:56.789Z INFO T0 file.cc:42]
// — an ISO-8601 UTC timestamp with milliseconds, the level, a dense
// per-process thread ordinal (T0 is the first thread that logged), and
// the call site. The format is pinned by tests/common/logging_test.cc
// so log scrapers can rely on it.
//
// The RANDRECON_LOG_LEVEL environment variable ("debug", "info",
// "warning"/"warn", "error" — case-insensitive) overrides the initial
// level, parsed once when the level is first read (mirroring
// RANDRECON_FAILPOINTS: no main() cooperation needed, so CI can turn a
// crashing example binary verbose without rebuilding it). An
// unparseable value is reported to stderr and ignored.

#ifndef RANDRECON_COMMON_LOGGING_H_
#define RANDRECON_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

#include "common/result.h"

namespace randrecon {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level; messages below it are discarded. The first
/// read applies the RANDRECON_LOG_LEVEL override, if any.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Parses a RANDRECON_LOG_LEVEL spelling ("debug", "info", "warning",
/// "warn", "error", any case). InvalidArgument naming the bad value
/// otherwise — exposed so the env parsing is unit-testable.
Result<LogLevel> ParseLogLevel(const std::string& text);

/// This thread's dense log ordinal (the "T0" of the prefix): 0 for the
/// first thread that logged (or asked), then 1, 2, ... in first-use
/// order. Stable for the thread's lifetime.
int LogThreadId();

namespace internal {

/// One log statement: buffers the streamed message, emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace randrecon

#define RR_LOG(level)                                           \
  ::randrecon::internal::LogMessage(::randrecon::LogLevel::level, __FILE__, \
                                    __LINE__)

#endif  // RANDRECON_COMMON_LOGGING_H_
