// Versioned machine-readable run reports: the telemetry artifact a tool
// (sweep_attack, convert_csv, the future attack-service daemon) writes
// at the end of a run — every counter, every latency histogram, the
// span tree, and tool-specific sections — as one JSON document whose
// schema is specified in docs/REPORT_SCHEMA.md and validated in CI by
// tools/check_report.py.
//
// The builder renders JSON with a deliberately tiny feature set (string
// / integer / double / bool scalars, pre-rendered raw sections for
// arrays) so the document layout is deterministic: top-level keys in a
// fixed order, config keys and sections in insertion order, metrics
// sorted by name. Two runs over the same inputs differ only in clock
// readings.

#ifndef RANDRECON_COMMON_RUN_REPORT_H_
#define RANDRECON_COMMON_RUN_REPORT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/trace.h"

namespace randrecon {
namespace report {

/// Bumped whenever the report layout changes incompatibly
/// (docs/REPORT_SCHEMA.md records the history; v2 added the
/// "build_info" provenance block).
constexpr int kRunReportSchemaVersion = 2;

/// JSON-escapes `text` (quotes, backslashes, control characters) —
/// shared by everything that renders user-controlled strings (paths,
/// Status messages) into a report.
std::string JsonEscape(const std::string& text);

/// Assembles one report document. Typical use:
///   report::RunReportBuilder builder("sweep_attack");
///   builder.AddConfig("attack", attack_name);
///   builder.AddConfigInt("jobs_total", results.size());
///   builder.AddRawSection("jobs", jobs_json);  // a rendered array
///   builder.SetSpans(trace::StopTracing());
///   RR_RETURN_NOT_OK(builder.WriteFile(report_path));
/// The metrics sections are captured from the process-global registry
/// at ToJson() time — snapshot AFTER the instrumented work finishes.
class RunReportBuilder {
 public:
  explicit RunReportBuilder(std::string tool);

  /// Scalar config/result fields, rendered under "config" in insertion
  /// order.
  void AddConfig(const std::string& key, const std::string& value);
  void AddConfigInt(const std::string& key, int64_t value);
  void AddConfigDouble(const std::string& key, double value);
  void AddConfigBool(const std::string& key, bool value);

  /// A pre-rendered JSON value (array/object) emitted as a top-level
  /// section. `json` must be well-formed; the builder splices it
  /// verbatim.
  void AddRawSection(const std::string& key, std::string json);

  /// The capture to embed as "spans" (default: empty array).
  void SetSpans(std::vector<trace::Span> spans);

  /// The full document (see docs/REPORT_SCHEMA.md):
  ///   {"schema_version":2,"tool":"...","build_info":{...},
  ///    "config":{...},
  ///    "counters":{...},"gauges":{...},"histograms":{...},
  ///    "spans":[...], <sections...>}
  std::string ToJson() const;

  /// ToJson() to `path` via write-temp + rename (a crashed tool must
  /// not leave a truncated report that parses as valid JSON prefix).
  Status WriteFile(const std::string& path) const;

 private:
  std::string tool_;
  std::vector<std::pair<std::string, std::string>> config_;  ///< key, rendered.
  std::vector<std::pair<std::string, std::string>> sections_;
  std::vector<trace::Span> spans_;
};

}  // namespace report
}  // namespace randrecon

#endif  // RANDRECON_COMMON_RUN_REPORT_H_
