// Minimal persistent thread pool and data-parallel loop helpers for the
// kernel layer (linalg/kernels.h) and any other hot path that wants
// row-range parallelism.
//
// Design constraints, in priority order:
//   1. Determinism: results must be bitwise identical for any thread
//      count. ParallelFor guarantees this only when each index's work is
//      self-contained (writes to disjoint data, no cross-chunk
//      accumulation) — its chunk boundaries DO depend on the thread
//      count. For floating-point reductions use ParallelReduceSum, whose
//      chunk boundaries are a pure function of chunk_size and whose
//      partials combine in index order on the calling thread.
//   2. Zero cost when serial: below `min_parallel_items` (or with one
//      thread) the body runs inline with no pool interaction.
//   3. One pool per process: workers are started lazily on first
//      parallel call and reused for the lifetime of the process.
//      Nested parallel calls (a ParallelFor body that itself calls
//      ParallelFor, directly or through a kernel) are safe: the inner
//      call detects it is inside a pool task and runs inline.

#ifndef RANDRECON_COMMON_PARALLEL_H_
#define RANDRECON_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace randrecon {

/// Tuning knobs for ParallelFor / ParallelReduceSum.
struct ParallelOptions {
  /// Worker count. 0 = auto: the RANDRECON_THREADS environment variable if
  /// set, else std::thread::hardware_concurrency(). 1 forces serial.
  int num_threads = 0;
  /// Ranges smaller than this run inline on the calling thread.
  size_t min_parallel_items = 2;
};

/// Worker count that `options` resolves to for a range of `items` items
/// (always >= 1, and never more than `items`).
size_t EffectiveThreadCount(const ParallelOptions& options, size_t items);

/// Invokes `body(chunk_begin, chunk_end)` over disjoint contiguous chunks
/// covering [begin, end). Each index is visited exactly once. Bodies run
/// concurrently, so they must only write to disjoint data. Chunk
/// boundaries depend on the resolved thread count: results are
/// thread-count-independent only if each index's computation is
/// self-contained (no cross-index floating-point accumulation — use
/// ParallelReduceSum for that). Blocks until every chunk has finished.
void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t, size_t)>& body,
                 const ParallelOptions& options = {});

/// Invokes `body(i)` once per index in [begin, end), with indices claimed
/// dynamically by whichever worker frees up first — for coarse,
/// unevenly-sized tasks (one task per index, e.g. whole pipeline jobs).
/// Unlike ParallelFor there is no contiguous pre-partition, so one
/// expensive index never serializes the indices behind it. Bodies run
/// concurrently and must only write to disjoint data.
void ParallelForEach(size_t begin, size_t end,
                     const std::function<void(size_t)>& body,
                     const ParallelOptions& options = {});

/// Deterministic parallel sum: [begin, end) is split into fixed chunks of
/// `chunk_size` (boundaries independent of thread count),
/// `chunk_sum(chunk_begin, chunk_end)` produces each partial, and the
/// partials are added left-to-right on the calling thread. The result is
/// bitwise identical for any thread count.
double ParallelReduceSum(size_t begin, size_t end, size_t chunk_size,
                         const std::function<double(size_t, size_t)>& chunk_sum,
                         const ParallelOptions& options = {});

}  // namespace randrecon

#endif  // RANDRECON_COMMON_PARALLEL_H_
