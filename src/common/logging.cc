#include "common/logging.h"

#include <atomic>
#include <cstring>

namespace randrecon {
namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogLevel GetLogLevel() { return g_log_level.load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) {
  g_log_level.store(level, std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel()), level_(level) {
  if (enabled_) {
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::ostream& out = level_ >= LogLevel::kWarning ? std::cerr : std::clog;
    out << stream_.str() << std::endl;
  }
}

}  // namespace internal
}  // namespace randrecon
