#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

#include <chrono>

namespace randrecon {
namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

/// The level the process starts with: kInfo, unless RANDRECON_LOG_LEVEL
/// overrides it. Runs once, at the first GetLogLevel/SetLogLevel.
LogLevel InitialLogLevel() {
  const char* env = std::getenv("RANDRECON_LOG_LEVEL");
  if (env == nullptr || env[0] == '\0') return LogLevel::kInfo;
  const Result<LogLevel> parsed = ParseLogLevel(env);
  if (!parsed.ok()) {
    std::fprintf(stderr, "RANDRECON_LOG_LEVEL ignored: %s\n",
                 parsed.status().ToString().c_str());
    return LogLevel::kInfo;
  }
  return parsed.value();
}

std::atomic<LogLevel>& LevelVar() {
  // Function-local so the env override applies whatever static-init
  // order TUs run in (a constructor may log before main()).
  static std::atomic<LogLevel> level{InitialLogLevel()};
  return level;
}

/// "2026-08-07T12:34:56.789Z" — UTC wall clock with milliseconds.
std::string FormatTimestamp() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const int millis = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count() %
      1000);
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer),
                "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ", utc.tm_year + 1900,
                utc.tm_mon + 1, utc.tm_mday, utc.tm_hour, utc.tm_min,
                utc.tm_sec, millis);
  return buffer;
}

}  // namespace

LogLevel GetLogLevel() { return LevelVar().load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) {
  LevelVar().store(level, std::memory_order_relaxed);
}

Result<LogLevel> ParseLogLevel(const std::string& text) {
  std::string lowered;
  lowered.reserve(text.size());
  for (const char c : text) {
    lowered.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lowered == "debug") return LogLevel::kDebug;
  if (lowered == "info") return LogLevel::kInfo;
  if (lowered == "warning" || lowered == "warn") return LogLevel::kWarning;
  if (lowered == "error") return LogLevel::kError;
  return Status::InvalidArgument(
      "log level '" + text +
      "' is not one of debug, info, warning, error");
}

int LogThreadId() {
  static std::atomic<int> next_id{0};
  thread_local const int id = next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel()), level_(level) {
  if (enabled_) {
    stream_ << "[" << FormatTimestamp() << " " << LevelName(level) << " T"
            << LogThreadId() << " " << Basename(file) << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::ostream& out = level_ >= LogLevel::kWarning ? std::cerr : std::clog;
    out << stream_.str() << std::endl;
  }
}

}  // namespace internal
}  // namespace randrecon
